//! Umbrella crate for the `sordf` workspace.
//!
//! This crate exists so that repository-level integration tests (`tests/`)
//! and runnable examples (`examples/`) can depend on every workspace crate.
//! The actual library code lives in `crates/*`; start with the [`sordf`]
//! facade crate.
