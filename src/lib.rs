//! Umbrella crate for the `sordf` workspace.
//!
//! This crate exists so that repository-level integration tests (`tests/`)
//! and runnable examples (`examples/`) can depend on every workspace crate.
//! The actual library code lives in `crates/*`; start with the [`sordf`]
//! facade crate.

pub use sordf;
pub use sordf_columnar;
pub use sordf_datagen;
pub use sordf_engine;
pub use sordf_model;
pub use sordf_rdfh;
pub use sordf_schema;
pub use sordf_sparql;
pub use sordf_sql;
pub use sordf_storage;
