//! Minimal offline shim for the `rand` crate (0.9-style API).
//!
//! Implements exactly the surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{random_range, random_bool}` over integer and float ranges.
//!
//! The generator is SplitMix64 — deterministic for a given seed, with
//! distinct seeds producing distinct streams, which is all the RDF-H and
//! dirty-data generators rely on. It is **not** a cryptographic RNG and its
//! streams differ from the real `rand::rngs::StdRng`.

use std::ops::Range;

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` from the 53 high bits of `next_u64`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-scramble so that small consecutive seeds produce unrelated
            // streams from the very first draw.
            let mut rng = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            let _ = super::Rng::next_u64(&mut rng);
            rng
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Types that can be sampled uniformly from a `Range` by the shim.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // start + u * span can round up to exactly `end`; reject those draws
        // to keep the half-open contract (expected iterations ≈ 1).
        loop {
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        loop {
            let v = self.start + rng.next_f64() as f32 * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.random_range(0..1000u64)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.random_range(0..1000u64)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..32).map(|_| c.random_range(0..1000u64)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(5..10i64);
            assert!((5..10).contains(&v));
            let f = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn random_bool_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..64).any(|_| rng.random_bool(0.0)));
        assert!((0..64).all(|_| rng.random_bool(1.0)));
    }
}
