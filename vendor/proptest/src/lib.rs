//! Minimal offline shim for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] and [`prop_oneof!`] macros, `prop_assert*!`, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! a regex-lite string strategy (`"[class]{m,n}"` patterns only),
//! [`any`]`::<bool>()`, and [`collection::vec`].
//!
//! Inputs are generated deterministically (seeded per test from the test's
//! module path), and there is **no shrinking**: a failing case panics via the
//! std assert macros, and the runner reports the failing case index on the
//! way out — with the fixed seed, re-running reproduces that case exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// String strategy from a regex-lite pattern: a single character class
    /// with a repetition count, e.g. `"[a-zA-Z0-9 ]{0,12}"`. Anything more
    /// exotic is rejected at generation time.
    impl Strategy for str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported regex-lite pattern: {self:?}"));
            let len = rng.random_range(lo..hi + 1);
            (0..len)
                .map(|_| alphabet[rng.random_range(0..alphabet.len())])
                .collect()
        }
    }

    /// Parse `[chars]{m,n}` / `[chars]{n}` into (alphabet, min, max).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i], chars[i + 2]);
                if a > b {
                    return None;
                }
                alphabet.extend(a..=b);
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

    /// Uniform choice between boxed alternatives (built by [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].generate(rng)
        }
    }

    pub fn union_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }

    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    /// `any::<T>()` support; only the types the workspace needs.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random_bool(0.5)
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub fn any<T>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range in collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Number of generated cases per test (shrinking is not implemented).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Names the failing case when a property panics (dropped during unwind).
#[doc(hidden)]
pub struct CaseGuard {
    test: &'static str,
    case: u32,
}

impl CaseGuard {
    pub fn new(test: &'static str, case: u32) -> Self {
        CaseGuard { test, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: {} failed on case {} (deterministic; re-run reproduces it)",
                self.test, self.case
            );
        }
    }
}

/// Deterministic per-test RNG: seeded from the test's fully qualified name.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed)
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::union_of(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __proptest_rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..__proptest_cfg.cases {
                    let __proptest_guard =
                        $crate::CaseGuard::new(stringify!($name), __proptest_case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strategy,
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                    drop(__proptest_guard);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn string_pattern_respects_class_and_len() {
        let mut rng = crate::rng_for("string_pattern");
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 ]{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_loops(x in 0u32..10, (a, b) in (0i64..5, 5i64..10)) {
            prop_assert!(x < 10);
            prop_assert!(a < b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn oneof_and_vec(v in crate::collection::vec(prop_oneof![
            (0u32..3).prop_map(|i| format!("i{i}")),
            "[xy]{1,2}".prop_map(|s| s),
        ], 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }
    }
}
