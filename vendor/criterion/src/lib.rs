//! Minimal offline shim for the `criterion` crate.
//!
//! Provides a real — if statistically naive — wall-clock timing harness with
//! the API surface this workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, warm_up_time, measurement_time, throughput,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints the per-iteration mean/min/max (plus throughput when configured).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.run(name.to_string(), &mut f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id().label, &mut f);
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::WarmUp(self.warm_up_time),
            samples: Vec::new(),
        };
        f(&mut bencher);

        let per_sample = self.measurement_time.div_f64(self.sample_size as f64);
        bencher.mode = Mode::Measure {
            per_sample,
            samples: self.sample_size,
        };
        bencher.samples.clear();
        f(&mut bencher);

        let samples = &bencher.samples;
        if samples.is_empty() {
            eprintln!("{}/{label}: no samples collected", self.name);
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut line = format!(
            "{}/{label}: mean {} (min {}, max {}) over {} samples",
            self.name,
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            samples.len(),
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                line.push_str(&format!(", {:.0} elem/s", n as f64 / (mean * 1e-9)));
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                line.push_str(&format!(", {:.0} B/s", n as f64 / (mean * 1e-9)));
            }
            _ => {}
        }
        eprintln!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

enum Mode {
    WarmUp(Duration),
    Measure {
        per_sample: Duration,
        samples: usize,
    },
}

pub struct Bencher {
    mode: Mode,
    /// Mean nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::WarmUp(budget) => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    black_box(f());
                }
            }
            Mode::Measure {
                per_sample,
                samples,
            } => {
                for _ in 0..samples {
                    let sample_start = Instant::now();
                    let mut iters = 0u64;
                    while sample_start.elapsed() < per_sample || iters == 0 {
                        black_box(f());
                        iters += 1;
                    }
                    let elapsed = sample_start.elapsed();
                    self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                }
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(3));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }
}
