//! Minimal offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching the
//! `parking_lot` API surface this workspace uses (`Mutex::lock` returning a
//! guard directly, not a `Result`).
//!
//! # Lock-order checking (`--features lock_order_check`)
//!
//! With the `lock_order_check` cargo feature enabled, every blocking
//! acquisition through this shim is recorded in a global acquisition-order
//! graph (one node per lock *instance*, one edge per observed
//! held-before-acquired pair). An acquisition that would close a cycle in
//! that graph — i.e. that inverts an order some other code path has already
//! established, the classic two-lock deadlock recipe — panics immediately
//! with both lock ids, instead of deadlocking some unlucky future run.
//! Re-locking a lock the same thread already holds also panics (except
//! shared `read()` re-acquisition, which `std::sync::RwLock` permits and the
//! store's pin model relies on). `try_*` acquisitions never block, hence
//! can never deadlock; they only register the held lock so that *later*
//! blocking acquisitions see it.
//!
//! The feature is compiled into the stress/CI builds only; the default
//! build keeps the zero-cost type aliases below.

use std::sync::PoisonError;

#[cfg(feature = "lock_order_check")]
use std::sync::atomic::AtomicU64;

#[cfg(feature = "lock_order_check")]
pub mod lock_order {
    //! The global acquisition-order graph behind `lock_order_check`.

    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    /// How a lock is held; shared read re-acquisition is tolerated.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub(crate) enum Kind {
        Read,
        Excl,
    }

    // ordering: Relaxed everywhere in this module — the counters only need
    // atomicity (unique ids, monotone edge count); the graph itself is
    // synchronized by `GRAPH`'s own mutex.
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    static EDGE_COUNT: AtomicUsize = AtomicUsize::new(0);

    /// `held-id -> {acquired-while-held ids}`, global across threads. Guarded
    /// by a raw std mutex on purpose: the checker must not recurse into the
    /// instrumented shim types.
    static GRAPH: StdMutex<BTreeMap<u64, BTreeSet<u64>>> = StdMutex::new(BTreeMap::new());

    thread_local! {
        /// Locks the current thread holds, in acquisition order.
        static HELD: RefCell<Vec<(u64, Kind)>> = const { RefCell::new(Vec::new()) };
    }

    /// Number of distinct ordered pairs observed so far. Stress tests assert
    /// this is non-zero to prove the detector was actually armed.
    pub fn edge_count() -> usize {
        EDGE_COUNT.load(Ordering::Relaxed)
    }

    /// Lazily assign a process-unique id to a lock instance (slot starts 0;
    /// losing a racing first acquisition keeps the winner's id).
    pub(crate) fn lock_id(slot: &AtomicU64) -> u64 {
        let cur = slot.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let new = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match slot.compare_exchange(0, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => new,
            Err(existing) => existing,
        }
    }

    /// Record a blocking acquisition *before* it blocks: panic if the thread
    /// already holds the lock (non-shared) or if the new held→acquired edges
    /// would close a cycle in the global graph.
    pub(crate) fn acquire_blocking(id: u64, kind: Kind) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            for &(hid, hkind) in held.iter() {
                if hid == id {
                    if hkind == Kind::Read && kind == Kind::Read {
                        continue;
                    }
                    panic!(
                        "lock-order violation: thread re-locks lock #{id} it already holds \
                         ({hkind:?} held, {kind:?} requested)"
                    );
                }
                record_edge(hid, id);
            }
            held.push((id, kind));
        });
    }

    /// Register a successful `try_*` acquisition: it can never deadlock (it
    /// never blocked), so it only joins the held set.
    pub(crate) fn register_try(id: u64, kind: Kind) {
        HELD.with(|h| h.borrow_mut().push((id, kind)));
    }

    /// A guard dropped: release the most recent held entry for `id`.
    pub(crate) fn release(id: u64) {
        // try_with: a guard dropped during thread teardown must not panic.
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(hid, _)| hid == id) {
                held.remove(pos);
            }
        });
    }

    fn record_edge(from: u64, to: u64) {
        let mut g = GRAPH.lock().unwrap_or_else(PoisonedGraph::recover);
        if g.get(&from).is_some_and(|s| s.contains(&to)) {
            return;
        }
        // Inserting from→to closes a cycle iff `from` is already reachable
        // from `to`.
        if reachable(&g, to, from) {
            panic!(
                "lock-order violation: acquiring lock #{to} while holding lock #{from} \
                 inverts an acquisition order established elsewhere (cycle in the \
                 global lock-order graph)"
            );
        }
        g.entry(from).or_default().insert(to);
        EDGE_COUNT.fetch_add(1, Ordering::Relaxed);
    }

    fn reachable(g: &BTreeMap<u64, BTreeSet<u64>>, from: u64, to: u64) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = g.get(&n) {
                for &m in next {
                    if m == to {
                        return true;
                    }
                    stack.push(m);
                }
            }
        }
        false
    }

    /// The graph mutex may be poisoned by a deliberate violation panic
    /// (tests catch those); the map itself is always left consistent.
    struct PoisonedGraph;
    impl PoisonedGraph {
        fn recover<T>(p: std::sync::PoisonError<T>) -> T {
            p.into_inner()
        }
    }
}

pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock_order_check")]
    order_id: AtomicU64,
    inner: std::sync::Mutex<T>,
}

#[cfg(not(feature = "lock_order_check"))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

#[cfg(feature = "lock_order_check")]
pub struct MutexGuard<'a, T: ?Sized> {
    order_id: u64,
    inner: std::sync::MutexGuard<'a, T>,
}

#[cfg(feature = "lock_order_check")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::release(self.order_id);
    }
}

#[cfg(feature = "lock_order_check")]
impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lock_order_check")]
impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock_order_check")]
            order_id: AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock_order_check")]
        {
            let id = lock_order::lock_id(&self.order_id);
            lock_order::acquire_blocking(id, lock_order::Kind::Excl);
            MutexGuard {
                order_id: id,
                inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            }
        }
        #[cfg(not(feature = "lock_order_check"))]
        {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lock_order_check")]
        {
            g.map(|g| {
                let id = lock_order::lock_id(&self.order_id);
                lock_order::register_try(id, lock_order::Kind::Excl);
                MutexGuard {
                    order_id: id,
                    inner: g,
                }
            })
        }
        #[cfg(not(feature = "lock_order_check"))]
        {
            g
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock_order_check")]
    order_id: AtomicU64,
    inner: std::sync::RwLock<T>,
}

#[cfg(not(feature = "lock_order_check"))]
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
#[cfg(not(feature = "lock_order_check"))]
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[cfg(feature = "lock_order_check")]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    order_id: u64,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

#[cfg(feature = "lock_order_check")]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    order_id: u64,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

#[cfg(feature = "lock_order_check")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::release(self.order_id);
    }
}

#[cfg(feature = "lock_order_check")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::release(self.order_id);
    }
}

#[cfg(feature = "lock_order_check")]
impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lock_order_check")]
impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lock_order_check")]
impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock_order_check")]
            order_id: AtomicU64::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock_order_check")]
        {
            let id = lock_order::lock_id(&self.order_id);
            lock_order::acquire_blocking(id, lock_order::Kind::Read);
            RwLockReadGuard {
                order_id: id,
                inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            }
        }
        #[cfg(not(feature = "lock_order_check"))]
        {
            self.inner.read().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock_order_check")]
        {
            let id = lock_order::lock_id(&self.order_id);
            lock_order::acquire_blocking(id, lock_order::Kind::Excl);
            RwLockWriteGuard {
                order_id: id,
                inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            }
        }
        #[cfg(not(feature = "lock_order_check"))]
        {
            self.inner.write().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let g = match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lock_order_check")]
        {
            g.map(|g| {
                let id = lock_order::lock_id(&self.order_id);
                lock_order::register_try(id, lock_order::Kind::Read);
                RwLockReadGuard {
                    order_id: id,
                    inner: g,
                }
            })
        }
        #[cfg(not(feature = "lock_order_check"))]
        {
            g
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let g = match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lock_order_check")]
        {
            g.map(|g| {
                let id = lock_order::lock_id(&self.order_id);
                lock_order::register_try(id, lock_order::Kind::Excl);
                RwLockWriteGuard {
                    order_id: id,
                    inner: g,
                }
            })
        }
        #[cfg(not(feature = "lock_order_check"))]
        {
            g
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(all(test, feature = "lock_order_check"))]
mod lock_order_tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn consistent_order_is_quiet_and_counted() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let before = lock_order::edge_count();
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(
            lock_order::edge_count() > before,
            "ordered acquisition must record at least one edge"
        );
    }

    #[test]
    fn inversion_panics() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let _gb = b.lock();
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ga = a.lock();
        }));
        let msg = *r
            .expect_err("a→b then b→a must panic")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("lock-order violation"), "got: {msg}");
    }

    #[test]
    fn relocking_a_held_mutex_panics() {
        let m = Mutex::new(0u32);
        let _g = m.lock();
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g2 = m.lock();
        }));
        assert!(r.is_err(), "self-relock must be reported, not deadlock");
    }

    #[test]
    fn shared_read_reacquisition_is_allowed() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn write_after_read_on_same_lock_panics() {
        let l = RwLock::new(0u32);
        let _r = l.read();
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _w = l.write();
        }));
        assert!(r.is_err());
    }

    #[test]
    fn try_lock_never_panics_on_inversion() {
        let a = RwLock::new(0u32);
        let b = RwLock::new(0u32);
        {
            let _ga = a.write();
            let _gb = b.write();
        }
        // Reverse order via try_*: cannot deadlock, must not panic.
        let _gb = b.write();
        let got = a.try_write();
        assert!(got.is_some());
    }
}
