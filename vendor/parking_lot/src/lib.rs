//! Minimal offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching the
//! `parking_lot` API surface this workspace uses (`Mutex::lock` returning a
//! guard directly, not a `Result`).

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
