//! Incremental characteristic-set assignment and drift tracking.
//!
//! Bulk discovery ([`crate::discover`]) sees the whole dataset at once; a
//! *living* store sees one insert batch at a time. This module routes each
//! newly inserted subject against the already-discovered schema using the
//! same admissibility rule the generalization stage uses for merging CSs
//! ([`crate::merge`]): a subject joins a class when its property set is
//! (mostly) contained in the class's property union, or the two sets are
//! similar overall (Jaccard). Subjects that match no class are *drift* —
//! their triples stay irregular until the next reorganization re-discovers
//! the schema over the full data.
//!
//! Routing is advisory: the physical class segments are immutable, so a
//! routed subject is **not** queried through its class — queries read delta
//! triples through the merged-scan paths regardless. What routing buys is
//! (a) per-class fill statistics (how much schema-conforming data is waiting
//! to be clustered in) and (b) the matched/unmatched split that an adaptive
//! reorganization policy thresholds on: a high unmatched ratio means the
//! emergent schema itself has drifted and discovery must re-run.

use crate::config::SchemaConfig;
use crate::types::{ClassId, EmergentSchema};
use sordf_model::Oid;

/// Routes inserted subjects to existing classes by property-set similarity.
/// Built once per discovered schema; cheap to query per subject.
#[derive(Debug, Clone)]
pub struct IncrementalAssigner {
    /// Per class: kept properties (single-valued + multi-valued), ascending.
    class_props: Vec<Vec<Oid>>,
}

impl IncrementalAssigner {
    pub fn new(schema: &EmergentSchema) -> IncrementalAssigner {
        let class_props = schema
            .classes
            .iter()
            .map(|c| {
                let mut props: Vec<Oid> = c
                    .columns
                    .iter()
                    .map(|col| col.pred)
                    .chain(c.multi_props.iter().map(|m| m.pred))
                    .collect();
                props.sort_unstable();
                props.dedup();
                props
            })
            .collect();
        IncrementalAssigner { class_props }
    }

    /// Route one subject's property set (sorted, deduplicated) to the best
    /// admissible class, `None` when no class qualifies. Admissibility and
    /// tie-breaking mirror [`crate::merge::generalize`]: containment of the
    /// subject's properties in the class union, or overall Jaccard
    /// similarity, against the same config thresholds; the best score wins,
    /// larger classes break ties.
    pub fn route(&self, props: &[Oid], cfg: &SchemaConfig) -> Option<ClassId> {
        if props.is_empty() {
            return None;
        }
        debug_assert!(
            props.windows(2).all(|w| w[0] < w[1]),
            "props must be sorted+dedup"
        );
        let mut best: Option<(usize, f64, usize)> = None; // (class, score, class size)
        for (ci, cprops) in self.class_props.iter().enumerate() {
            let inter = sorted_intersection_len(props, cprops);
            let containment = inter as f64 / props.len() as f64;
            let union_size = props.len() + cprops.len() - inter;
            let jaccard = if union_size == 0 {
                0.0
            } else {
                inter as f64 / union_size as f64
            };
            let score = containment.max(jaccard);
            let admissible =
                containment + 1e-9 >= cfg.merge_overlap || jaccard + 1e-9 >= cfg.merge_jaccard;
            if !admissible {
                continue;
            }
            let size = cprops.len();
            let better = match best {
                None => true,
                Some((_, bs, bn)) => score > bs + 1e-9 || ((score - bs).abs() <= 1e-9 && size > bn),
            };
            if better {
                best = Some((ci, score, size));
            }
        }
        best.map(|(ci, _, _)| ClassId(ci as u32))
    }

    pub fn n_classes(&self) -> usize {
        self.class_props.len()
    }
}

fn sorted_intersection_len(a: &[Oid], b: &[Oid]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Write-path drift statistics: how far the live data has diverged from the
/// organized generation. Computed by the facade from the delta store and the
/// incremental routing decisions; thresholds on these drive adaptive
/// reorganization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriftStats {
    /// Triples in the organized base generation.
    pub n_base_triples: u64,
    /// Base triples living in the irregular (exhaustive-index) remainder.
    pub n_base_irregular: u64,
    /// Visible delta-inserted triples (physically unorganized).
    pub n_delta_inserts: u64,
    /// Tombstones recorded against base/delta triples.
    pub n_tombstones: u64,
    /// Delta subjects routed to an existing class by property-set match.
    pub matched_subjects: u64,
    /// Delta subjects matching no class (schema drift).
    pub unmatched_subjects: u64,
    /// Pending delta triples per class (indexed by `ClassId`), for subjects
    /// already assigned to that class or routed to it.
    pub per_class_fill: Vec<u64>,
}

impl DriftStats {
    /// Write volume relative to the base: (inserts + tombstones) / base.
    pub fn delta_ratio(&self) -> f64 {
        if self.n_base_triples == 0 {
            return if self.n_delta_inserts + self.n_tombstones > 0 {
                1.0
            } else {
                0.0
            };
        }
        (self.n_delta_inserts + self.n_tombstones) as f64 / self.n_base_triples as f64
    }

    /// Fraction of visible triples *not* stored in aligned class columns.
    /// Delta inserts count as irregular wholesale — physically they are:
    /// until a reorganization clusters them in, every one is answered
    /// through the merged-scan exception paths.
    pub fn irregular_ratio(&self) -> f64 {
        let total = self.n_base_triples + self.n_delta_inserts;
        if total == 0 {
            return 0.0;
        }
        (self.n_base_irregular + self.n_delta_inserts) as f64 / total as f64
    }

    /// Fraction of delta subjects the incremental assigner could not route.
    pub fn unmatched_ratio(&self) -> f64 {
        let n = self.matched_subjects + self.unmatched_subjects;
        if n == 0 {
            return 0.0;
        }
        self.unmatched_subjects as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClassDef, ColStats, ColumnDef, MultiPropDef};
    use sordf_model::{FxHashMap, TypeTag};

    fn class(id: u32, cols: &[u64], multi: &[u64]) -> ClassDef {
        let mut c = ClassDef {
            id: ClassId(id),
            name: format!("c{id}"),
            columns: cols
                .iter()
                .map(|&p| ColumnDef {
                    pred: Oid::iri(p),
                    name: format!("p{p}"),
                    ty: TypeTag::Int,
                    presence: 1.0,
                    nullable: false,
                    fk: None,
                    stats: ColStats::default(),
                })
                .collect(),
            multi_props: multi
                .iter()
                .map(|&p| MultiPropDef {
                    pred: Oid::iri(p),
                    name: format!("m{p}"),
                    ty: TypeTag::Iri,
                    mean_multiplicity: 2.0,
                    fk: None,
                    stats: ColStats::default(),
                })
                .collect(),
            n_subjects: 10,
            indirect_support: 0,
            col_index: FxHashMap::default(),
            multi_index: FxHashMap::default(),
        };
        c.reindex();
        c
    }

    fn schema() -> EmergentSchema {
        EmergentSchema {
            classes: vec![class(0, &[1, 2, 3], &[4]), class(1, &[10, 11], &[])],
            assignment: FxHashMap::default(),
            type_pred: None,
            coverage: 1.0,
            n_triples: 0,
        }
    }

    fn oids(ps: &[u64]) -> Vec<Oid> {
        ps.iter().map(|&p| Oid::iri(p)).collect()
    }

    #[test]
    fn exact_match_routes() {
        let a = IncrementalAssigner::new(&schema());
        let cfg = SchemaConfig::default();
        assert_eq!(a.route(&oids(&[1, 2, 3, 4]), &cfg), Some(ClassId(0)));
        assert_eq!(a.route(&oids(&[10, 11]), &cfg), Some(ClassId(1)));
    }

    #[test]
    fn subset_routes_by_containment() {
        let a = IncrementalAssigner::new(&schema());
        let cfg = SchemaConfig::default();
        // {1,2,3} fully contained in class 0's union.
        assert_eq!(a.route(&oids(&[1, 2, 3]), &cfg), Some(ClassId(0)));
    }

    #[test]
    fn disjoint_set_is_unrouted() {
        let a = IncrementalAssigner::new(&schema());
        let cfg = SchemaConfig::default();
        assert_eq!(a.route(&oids(&[77, 78, 79]), &cfg), None);
        assert_eq!(a.route(&[], &cfg), None);
    }

    #[test]
    fn best_score_wins() {
        let a = IncrementalAssigner::new(&schema());
        let cfg = SchemaConfig {
            merge_overlap: 0.5,
            ..SchemaConfig::default()
        };
        // {2, 3, 4, 77}: containment 0.75 in class 0, 0 in class 1.
        assert_eq!(a.route(&oids(&[2, 3, 4, 77]), &cfg), Some(ClassId(0)));
        // {1, 2, 10, 11}: both classes score 0.5 (containment) — the tie
        // goes to the larger class (class 0 has 4 properties).
        assert_eq!(a.route(&oids(&[1, 2, 10, 11]), &cfg), Some(ClassId(0)));
    }

    #[test]
    fn drift_ratios() {
        let d = DriftStats {
            n_base_triples: 900,
            n_base_irregular: 50,
            n_delta_inserts: 100,
            n_tombstones: 20,
            matched_subjects: 30,
            unmatched_subjects: 10,
            per_class_fill: vec![60, 40],
        };
        assert!((d.delta_ratio() - 120.0 / 900.0).abs() < 1e-12);
        assert!((d.irregular_ratio() - 150.0 / 1000.0).abs() < 1e-12);
        assert!((d.unmatched_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(DriftStats::default().delta_ratio(), 0.0);
        assert_eq!(DriftStats::default().irregular_ratio(), 0.0);
        assert_eq!(DriftStats::default().unmatched_ratio(), 0.0);
    }
}
