//! Tunable thresholds of the schema-discovery pipeline.

/// Knobs for [`crate::discover`]. Defaults follow the heuristics sketched in
/// the paper (§II-A); the ablation benches sweep several of them.
#[derive(Debug, Clone)]
pub struct SchemaConfig {
    /// τ — minimum number of subjects a class needs to be kept. Classes below
    /// this are dropped (subjects become irregular) unless rescued by
    /// incoming foreign-key links ("indirect support").
    pub min_support: u64,
    /// ε — keep an attribute as a NULLABLE column if at least this fraction
    /// of the class's subjects have it ("a significant minority fraction").
    pub nullable_min_presence: f64,
    /// When merging a small CS into a larger one, at least this fraction of
    /// the small CS's properties must already occur in the large one.
    pub merge_overlap: f64,
    /// Alternative merge condition: Jaccard similarity of the property sets
    /// (admits CSs carrying a few extra properties over the anchor).
    pub merge_jaccard: f64,
    /// A column's declared type must cover at least this fraction of its
    /// non-null values; other-typed values become irregular exceptions.
    pub type_dominance: f64,
    /// A type-signature group must hold at least this fraction of a class's
    /// subjects to be split off as a CS *variant*.
    pub variant_min_frac: f64,
    /// Fraction of (non-null) references that must hit one target class for
    /// a column to become a foreign key.
    pub fk_threshold: f64,
    /// If more than this fraction of subjects have >1 value for a property,
    /// the property is split into a side table; otherwise extras are demoted
    /// to the irregular store and the column stays `0..1`.
    pub multi_split_frac: f64,
    /// Mean multiplicity above which a property is always split off
    /// (the paper: "in case the multiplicity is > 2").
    pub multi_split_mean: f64,
    /// Detect and annotate 1-1 linked class pairs (blank-node unification).
    pub unify_one_to_one: bool,
}

impl Default for SchemaConfig {
    fn default() -> SchemaConfig {
        SchemaConfig {
            min_support: 3,
            nullable_min_presence: 0.05,
            merge_overlap: 0.8,
            merge_jaccard: 0.6,
            type_dominance: 0.8,
            variant_min_frac: 0.15,
            fk_threshold: 0.8,
            multi_split_frac: 0.10,
            multi_split_mean: 2.0,
            unify_one_to_one: true,
        }
    }
}

impl SchemaConfig {
    /// A configuration that performs no generalization: every exact CS
    /// becomes its own class (the original Neumann-Moerkotte behaviour).
    /// Used by the schema ablation experiment.
    pub fn exact_cs() -> SchemaConfig {
        SchemaConfig {
            min_support: 1,
            nullable_min_presence: 1.0,
            merge_overlap: 1.01, // nothing merges
            merge_jaccard: 1.01,
            ..SchemaConfig::default()
        }
    }
}
