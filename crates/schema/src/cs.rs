//! Exact characteristic-set extraction (Neumann & Moerkotte, ICDE 2011).
//!
//! The characteristic set of a subject `s` is the set of distinct predicates
//! occurring with `s`. Subjects sharing a characteristic set form the raw
//! material from which classes are generalized.

use sordf_model::{FxHashMap, Oid, Triple};

/// One exact characteristic set with its member subjects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactCs {
    /// Distinct predicates, ascending.
    pub props: Vec<Oid>,
    /// Member subjects (in first-seen order).
    pub subjects: Vec<Oid>,
}

impl ExactCs {
    /// Number of subjects with exactly this property set.
    pub fn support(&self) -> u64 {
        self.subjects.len() as u64
    }
}

/// Extract all exact characteristic sets from SPO-sorted triples.
///
/// Returns the CS list (descending support, ties broken by property list)
/// and the subject → CS-index assignment.
pub fn extract(triples_spo: &[Triple]) -> (Vec<ExactCs>, FxHashMap<Oid, u32>) {
    debug_assert!(
        triples_spo
            .windows(2)
            .all(|w| w[0].key_spo() <= w[1].key_spo()),
        "input must be SPO-sorted"
    );
    let mut by_props: FxHashMap<Vec<Oid>, Vec<Oid>> = FxHashMap::default();
    let mut props = Vec::new();
    let mut i = 0;
    while i < triples_spo.len() {
        let s = triples_spo[i].s;
        props.clear();
        while i < triples_spo.len() && triples_spo[i].s == s {
            let p = triples_spo[i].p;
            if props.last() != Some(&p) {
                props.push(p);
            }
            i += 1;
        }
        by_props.entry(props.clone()).or_default().push(s);
    }
    let mut css: Vec<ExactCs> = by_props
        .into_iter()
        .map(|(props, subjects)| ExactCs { props, subjects })
        .collect();
    css.sort_by(|a, b| {
        b.support()
            .cmp(&a.support())
            .then_with(|| a.props.cmp(&b.props))
    });
    let mut assignment = FxHashMap::default();
    for (idx, cs) in css.iter().enumerate() {
        for &s in &cs.subjects {
            assignment.insert(s, idx as u32);
        }
    }
    (css, assignment)
}

/// Walk SPO-sorted triples as (subject, predicate, objects) groups.
/// `objects` is ascending (inherited from the sort order). Shared by the
/// typing / fine-tuning / FK / stats stages.
pub fn walk_sp_groups(triples_spo: &[Triple], mut f: impl FnMut(Oid, Oid, &[Oid])) {
    let mut i = 0;
    let mut objects: Vec<Oid> = Vec::new();
    while i < triples_spo.len() {
        let s = triples_spo[i].s;
        let p = triples_spo[i].p;
        objects.clear();
        while i < triples_spo.len() && triples_spo[i].s == s && triples_spo[i].p == p {
            objects.push(triples_spo[i].o);
            i += 1;
        }
        f(s, p, &objects);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Oid::iri(s), Oid::iri(p), Oid::iri(o))
    }

    fn sorted(mut v: Vec<Triple>) -> Vec<Triple> {
        v.sort_by_key(|t| t.key_spo());
        v
    }

    #[test]
    fn groups_subjects_by_property_set() {
        // s0, s1: {p1, p2}; s2: {p1}; s3: {p1, p2}
        let triples = sorted(vec![
            t(0, 1, 100),
            t(0, 2, 101),
            t(1, 1, 102),
            t(1, 2, 103),
            t(2, 1, 104),
            t(3, 1, 105),
            t(3, 2, 106),
        ]);
        let (css, assignment) = extract(&triples);
        assert_eq!(css.len(), 2);
        // Largest CS first.
        assert_eq!(css[0].props, vec![Oid::iri(1), Oid::iri(2)]);
        assert_eq!(css[0].support(), 3);
        assert_eq!(css[1].props, vec![Oid::iri(1)]);
        assert_eq!(css[1].support(), 1);
        assert_eq!(assignment[&Oid::iri(0)], 0);
        assert_eq!(assignment[&Oid::iri(2)], 1);
    }

    #[test]
    fn duplicate_predicates_count_once() {
        // s0 has p1 twice (multi-valued) -> CS is still {p1}.
        let triples = sorted(vec![t(0, 1, 100), t(0, 1, 101)]);
        let (css, _) = extract(&triples);
        assert_eq!(css.len(), 1);
        assert_eq!(css[0].props, vec![Oid::iri(1)]);
    }

    #[test]
    fn every_subject_assigned_exactly_once() {
        let triples = sorted(vec![
            t(0, 1, 9),
            t(1, 2, 9),
            t(2, 1, 9),
            t(2, 3, 9),
            t(3, 1, 9),
        ]);
        let (css, assignment) = extract(&triples);
        let total: u64 = css.iter().map(|c| c.support()).sum();
        assert_eq!(total, 4);
        assert_eq!(assignment.len(), 4);
    }

    #[test]
    fn empty_input() {
        let (css, assignment) = extract(&[]);
        assert!(css.is_empty());
        assert!(assignment.is_empty());
    }

    #[test]
    fn deterministic_order() {
        let triples = sorted(vec![t(0, 1, 9), t(1, 2, 9)]);
        let (a, _) = extract(&triples);
        let (b, _) = extract(&triples);
        assert_eq!(a, b);
    }
}
