//! Generalization: merging exact characteristic sets into classes.
//!
//! The original CS algorithm creates a different CS for each unique property
//! combination; real data therefore produces thousands of mostly-similar
//! CSs. Following the paper, we merge a CS into an existing class when a
//! large fraction of its properties already occur there, and keep an
//! attribute as a NULLABLE (`0..1`) column "if a significant minority
//! fraction of the subjects has at least one occurrence". Attributes below
//! that minority threshold are dropped from the class — their triples remain
//! in the irregular store.

use crate::config::SchemaConfig;
use crate::cs::ExactCs;
use sordf_model::{FxHashMap, FxHashSet, Oid};

/// A class produced by generalization: the union of one or more exact CSs.
#[derive(Debug, Clone)]
pub struct MergedClass {
    /// Kept properties, ascending.
    pub props: Vec<Oid>,
    /// For each kept property: number of member subjects having it.
    pub presence: Vec<u64>,
    /// All member subjects.
    pub subjects: Vec<Oid>,
}

impl MergedClass {
    pub fn support(&self) -> u64 {
        self.subjects.len() as u64
    }
}

struct Group {
    union: FxHashSet<Oid>,
    /// prop → number of subjects having it.
    counts: FxHashMap<Oid, u64>,
    subjects: Vec<Oid>,
}

/// Merge exact CSs (must be sorted by descending support, as produced by
/// [`crate::cs::extract`]) into generalized classes.
pub fn generalize(css: Vec<ExactCs>, cfg: &SchemaConfig) -> Vec<MergedClass> {
    let mut groups: Vec<Group> = Vec::new();
    for cs in css {
        let mut best: Option<(usize, f64, u64)> = None; // (group, score, size)
        for (gi, g) in groups.iter().enumerate() {
            let inter = cs.props.iter().filter(|p| g.union.contains(p)).count();
            // Two ways in: the CS is (mostly) contained in the group's
            // property union, or the two sets are similar overall (Jaccard) —
            // the latter admits CSs with a few *extra* properties, which
            // become low-presence columns or irregular triples.
            let containment = inter as f64 / cs.props.len() as f64;
            let union_size = cs.props.len() + g.union.len() - inter;
            let jaccard = inter as f64 / union_size as f64;
            let frac = containment.max(jaccard);
            let admissible =
                containment + 1e-9 >= cfg.merge_overlap || jaccard + 1e-9 >= cfg.merge_jaccard;
            if !admissible {
                continue;
            }
            let size = g.subjects.len() as u64;
            let better = match best {
                None => true,
                Some((_, bf, bs)) => frac > bf + 1e-9 || ((frac - bf).abs() <= 1e-9 && size > bs),
            };
            if better {
                best = Some((gi, frac, size));
            }
        }
        match best {
            Some((gi, _, _)) => {
                let g = &mut groups[gi];
                let support = cs.support();
                for &p in &cs.props {
                    g.union.insert(p);
                    *g.counts.entry(p).or_insert(0) += support;
                }
                g.subjects.extend_from_slice(&cs.subjects);
            }
            None => {
                let mut counts = FxHashMap::default();
                let support = cs.support();
                for &p in &cs.props {
                    counts.insert(p, support);
                }
                groups.push(Group {
                    union: cs.props.iter().copied().collect(),
                    counts,
                    subjects: cs.subjects,
                });
            }
        }
    }

    groups
        .into_iter()
        .map(|g| {
            let total = g.subjects.len() as u64;
            let mut kept: Vec<(Oid, u64)> = g
                .counts
                .into_iter()
                .filter(|&(_, n)| n as f64 / total as f64 + 1e-9 >= cfg.nullable_min_presence)
                .collect();
            kept.sort_by_key(|&(p, _)| p);
            MergedClass {
                props: kept.iter().map(|&(p, _)| p).collect(),
                presence: kept.iter().map(|&(_, n)| n).collect(),
                subjects: g.subjects,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(props: &[u64], n_subjects: u64, first_subject: u64) -> ExactCs {
        ExactCs {
            props: props.iter().map(|&p| Oid::iri(p)).collect(),
            subjects: (first_subject..first_subject + n_subjects)
                .map(Oid::iri)
                .collect(),
        }
    }

    #[test]
    fn subset_cs_merges_into_superset() {
        let css = vec![cs(&[1, 2, 3], 100, 0), cs(&[1, 2], 10, 100)];
        let merged = generalize(css, &SchemaConfig::default());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].support(), 110);
        // prop 3 present in 100/110 subjects -> kept as nullable.
        assert_eq!(merged[0].props.len(), 3);
    }

    #[test]
    fn disjoint_css_stay_separate() {
        let css = vec![cs(&[1, 2], 50, 0), cs(&[8, 9], 50, 100)];
        let merged = generalize(css, &SchemaConfig::default());
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn rare_extra_attribute_is_dropped() {
        // 1000 subjects {1,2}; 5 subjects {1,2,7}: prop 7 presence 5/1005 < 5%.
        let css = vec![cs(&[1, 2], 1000, 0), cs(&[1, 2, 7], 5, 2000)];
        let merged = generalize(css, &SchemaConfig::default());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].props, vec![Oid::iri(1), Oid::iri(2)]);
        assert_eq!(merged[0].support(), 1005);
    }

    #[test]
    fn significant_minority_attribute_is_kept_nullable() {
        // 100 subjects {1,2}; 30 subjects {1,2,7}: presence 30/130 ≈ 23%.
        let css = vec![cs(&[1, 2], 100, 0), cs(&[1, 2, 7], 30, 2000)];
        let merged = generalize(css, &SchemaConfig::default());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].props, vec![Oid::iri(1), Oid::iri(2), Oid::iri(7)]);
        let idx7 = merged[0]
            .props
            .iter()
            .position(|&p| p == Oid::iri(7))
            .unwrap();
        assert_eq!(merged[0].presence[idx7], 30);
    }

    #[test]
    fn below_overlap_threshold_does_not_merge() {
        // {1,2,3,4,5} vs {1,6,7,8,9}: overlap 1/5 = 0.2 < 0.8.
        let css = vec![cs(&[1, 2, 3, 4, 5], 100, 0), cs(&[1, 6, 7, 8, 9], 50, 500)];
        let merged = generalize(css, &SchemaConfig::default());
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn exact_cs_config_never_merges() {
        let css = vec![cs(&[1, 2, 3], 100, 0), cs(&[1, 2], 90, 500)];
        let merged = generalize(css, &SchemaConfig::exact_cs());
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn prefers_group_with_higher_overlap() {
        // {1,2,3,4} and {5,6,7,8} exist; {1,2,3,9} overlaps 3/4 with first.
        let cfg = SchemaConfig {
            merge_overlap: 0.7,
            ..SchemaConfig::default()
        };
        let css = vec![
            cs(&[1, 2, 3, 4], 100, 0),
            cs(&[5, 6, 7, 8], 100, 200),
            cs(&[1, 2, 3, 9], 10, 400),
        ];
        let merged = generalize(css, &cfg);
        assert_eq!(merged.len(), 2);
        let big = merged.iter().find(|m| m.support() == 110).unwrap();
        assert!(big.props.contains(&Oid::iri(1)));
    }
}
