//! The optimizer-facing statistics snapshot.
//!
//! The emergent schema already maintains everything a cost-based planner
//! needs — per-class cardinalities, per-column `n_distinct`/min/max, fill
//! factors — but scattered across [`crate::ClassDef`]/[`crate::ColumnDef`]
//! internals.
//! [`StatsView`] packages one coherent, cheap view of it for the engine's
//! optimizer, *drift-adjusted*: per-predicate pending-insert counts (the
//! delta the query's snapshot will merge) inflate the estimates, so a store
//! that has absorbed many writes since its last reorganization plans
//! accordingly instead of trusting stale base statistics.
//!
//! Construction is O(pending predicates); every lookup is a binary search
//! or a schema-index walk — no locks, no allocation beyond the pending
//! vector handed in.

use crate::types::{ColStats, EmergentSchema};
use sordf_model::Oid;

/// A borrowed statistics snapshot over a (possibly absent) emergent schema
/// plus the pending-write counts of the query's delta view.
#[derive(Debug, Clone)]
pub struct StatsView<'a> {
    schema: Option<&'a EmergentSchema>,
    /// `(predicate, visible pending inserts)`, sorted by predicate.
    pending: Vec<(Oid, u64)>,
    /// Relative CPU cost of touching one row during a scan, `1.0` for plain
    /// storage. Compressed page encodings trade CPU (decode work) for
    /// bandwidth, so scans over them charge slightly more per row while the
    /// cardinalities themselves are unchanged.
    scan_cpu_factor: f64,
}

impl Default for StatsView<'_> {
    fn default() -> StatsView<'static> {
        StatsView::new(None)
    }
}

impl<'a> StatsView<'a> {
    /// A view over base statistics only (no pending writes).
    pub fn new(schema: Option<&'a EmergentSchema>) -> StatsView<'a> {
        StatsView {
            schema,
            pending: Vec::new(),
            scan_cpu_factor: 1.0,
        }
    }

    /// Attach per-predicate pending-insert counts (sorted by predicate, as
    /// produced by `DeltaView::insert_counts_by_pred`).
    pub fn with_pending(mut self, pending: Vec<(Oid, u64)>) -> StatsView<'a> {
        debug_assert!(pending.windows(2).all(|w| w[0].0 <= w[1].0));
        self.pending = pending;
        self
    }

    /// Set the per-row scan CPU factor (see the field docs). The engine
    /// derives it from the storage generation's page-encoding scheme.
    pub fn with_scan_cpu_factor(mut self, factor: f64) -> StatsView<'a> {
        debug_assert!(factor >= 1.0);
        self.scan_cpu_factor = factor;
        self
    }

    /// Relative CPU cost of touching one row during a scan (`>= 1.0`).
    pub fn scan_cpu_factor(&self) -> f64 {
        self.scan_cpu_factor
    }

    /// Is a discovered schema backing this view?
    pub fn has_schema(&self) -> bool {
        self.schema.is_some()
    }

    pub fn schema(&self) -> Option<&'a EmergentSchema> {
        self.schema
    }

    /// Visible pending inserts for one predicate.
    pub fn pending_for(&self, pred: Oid) -> u64 {
        match self.pending.binary_search_by_key(&pred, |&(p, _)| p) {
            Ok(i) => self.pending[i].1,
            Err(_) => 0,
        }
    }

    /// Total visible pending inserts.
    pub fn n_pending(&self) -> u64 {
        self.pending.iter().map(|&(_, n)| n).sum()
    }

    /// Base (schema-resident) triples with this predicate: the summed
    /// non-null counts of every class column and multi-prop holding it.
    /// Excludes the irregular store and pending writes — storage-side
    /// counts live with the storage, not the schema.
    pub fn regular_pred_cardinality(&self, pred: Oid) -> u64 {
        let Some(schema) = self.schema else { return 0 };
        let mut n = 0u64;
        for (class, ci) in schema.classes_with_column(pred) {
            n += schema.class(class).columns[ci].stats.n_nonnull;
        }
        for (class, mi) in schema.classes_with_multi(pred) {
            n += schema.class(class).multi_props[mi].stats.n_nonnull;
        }
        n
    }

    /// Distinct values of this predicate's object column, summed over
    /// classes (an upper bound: classes may share values), inflated by the
    /// pending count — new writes may all carry new values.
    pub fn distinct_for_pred(&self, pred: Oid) -> u64 {
        let Some(schema) = self.schema else { return 0 };
        let mut d = 0u64;
        for (class, ci) in schema.classes_with_column(pred) {
            d += schema.class(class).columns[ci].stats.n_distinct;
        }
        for (class, mi) in schema.classes_with_multi(pred) {
            d += schema.class(class).multi_props[mi].stats.n_distinct;
        }
        d + self.pending_for(pred)
    }

    /// Column statistics for this predicate merged across every class that
    /// carries it: summed counts, summed distincts (an upper bound), merged
    /// min/max. `None` when no schema or no class has the predicate.
    pub fn merged_col_stats(&self, pred: Oid) -> Option<ColStats> {
        let schema = self.schema?;
        let mut out: Option<ColStats> = None;
        let mut merge = |s: &ColStats| {
            let acc = out.get_or_insert_with(ColStats::default);
            acc.n_nonnull += s.n_nonnull;
            acc.n_distinct += s.n_distinct;
            acc.min = match (acc.min, s.min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            acc.max = match (acc.max, s.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        };
        for (class, ci) in schema.classes_with_column(pred) {
            merge(&schema.class(class).columns[ci].stats);
        }
        for (class, mi) in schema.classes_with_multi(pred) {
            merge(&schema.class(class).multi_props[mi].stats);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_lookup_and_totals() {
        let sv = StatsView::new(None).with_pending(vec![
            (Oid::iri(3), 5),
            (Oid::iri(7), 2),
            (Oid::iri(9), 1),
        ]);
        assert!(!sv.has_schema());
        assert_eq!(sv.pending_for(Oid::iri(7)), 2);
        assert_eq!(sv.pending_for(Oid::iri(4)), 0);
        assert_eq!(sv.n_pending(), 8);
        assert_eq!(sv.regular_pred_cardinality(Oid::iri(3)), 0);
        assert!(sv.merged_col_stats(Oid::iri(3)).is_none());
        assert_eq!(sv.scan_cpu_factor(), 1.0);
        assert_eq!(sv.with_scan_cpu_factor(1.25).scan_cpu_factor(), 1.25);
    }
}
