//! Core data structures of the emergent schema.

use sordf_model::{FxHashMap, Oid, Triple, TypeTag};

/// Identifier of a discovered class (a merged/typed characteristic set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

/// Statistics of one column, used by cardinality estimation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColStats {
    /// Subjects with a value in this column.
    pub n_nonnull: u64,
    /// Estimated number of distinct values.
    pub n_distinct: u64,
    /// Minimum stored OID (raw), if any value exists.
    pub min: Option<u64>,
    /// Maximum stored OID (raw), if any value exists.
    pub max: Option<u64>,
}

/// A single-valued (`1` or `0..1`) column of a class.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// The predicate this column stores.
    pub pred: Oid,
    /// Human-readable, SQL-safe column name.
    pub name: String,
    /// Declared type: values with another tag are irregular exceptions.
    pub ty: TypeTag,
    /// Fraction of class subjects having this property.
    pub presence: f64,
    /// `false` only when presence is 1.0 (every subject has a value).
    pub nullable: bool,
    /// Foreign-key edge, if the column references one target class.
    pub fk: Option<ForeignKey>,
    /// Value statistics (filled by the stats stage).
    pub stats: ColStats,
}

/// A multi-valued property split off into a side table of (subject, object)
/// pairs — the paper's "splitting it off into a separate table (CS)".
#[derive(Debug, Clone)]
pub struct MultiPropDef {
    pub pred: Oid,
    pub name: String,
    pub ty: TypeTag,
    /// Mean number of values per subject that has the property.
    pub mean_multiplicity: f64,
    /// Foreign-key edge, if values reference one target class.
    pub fk: Option<ForeignKey>,
    /// Value statistics.
    pub stats: ColStats,
}

/// A foreign-key edge from a column to a class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForeignKey {
    pub target: ClassId,
    /// Fraction of non-null values that land in the target class.
    pub strength: f64,
    /// True when the link is 1-1 (candidate for blank-node unification:
    /// the SQL view may present source and target as one table).
    pub one_to_one: bool,
}

/// One discovered class: a table in the emergent relational schema.
#[derive(Debug, Clone)]
pub struct ClassDef {
    pub id: ClassId,
    /// Human-readable, SQL-safe table name.
    pub name: String,
    /// Single-valued columns, in a fixed order.
    pub columns: Vec<ColumnDef>,
    /// Multi-valued side tables.
    pub multi_props: Vec<MultiPropDef>,
    /// Number of subjects assigned to this class.
    pub n_subjects: u64,
    /// Direct support + references from kept classes (used for retention).
    pub indirect_support: u64,
    /// Lookup: predicate → index into `columns`.
    pub(crate) col_index: FxHashMap<Oid, usize>,
    /// Lookup: predicate → index into `multi_props`.
    pub(crate) multi_index: FxHashMap<Oid, usize>,
}

impl ClassDef {
    /// Index of the single-valued column storing `pred`, if any.
    pub fn column_of(&self, pred: Oid) -> Option<usize> {
        self.col_index.get(&pred).copied()
    }

    /// Index of the multi-valued side table storing `pred`, if any.
    pub fn multi_of(&self, pred: Oid) -> Option<usize> {
        self.multi_index.get(&pred).copied()
    }

    /// Rebuild the predicate lookup maps after column predicates change
    /// (e.g. after OID reorganization remaps predicate OIDs).
    pub fn reindex(&mut self) {
        self.col_index = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.pred, i))
            .collect();
        self.multi_index = self
            .multi_props
            .iter()
            .enumerate()
            .map(|(i, m)| (m.pred, i))
            .collect();
    }
}

/// Where one triple lives physically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripleHome {
    /// In class `class`, single-valued column `col`.
    Column { class: ClassId, col: usize },
    /// In class `class`, multi-value side table `mp`.
    Multi { class: ClassId, mp: usize },
    /// In the irregular PSO triple table.
    Irregular,
}

/// The discovered schema: the output of [`crate::discover`].
#[derive(Debug, Clone, Default)]
pub struct EmergentSchema {
    /// All kept classes. `ClassId(i)` indexes this vector.
    pub classes: Vec<ClassDef>,
    /// Subject → class assignment. Subjects absent here are irregular.
    pub assignment: FxHashMap<Oid, ClassId>,
    /// The OID of `rdf:type`, if the dataset uses it.
    pub type_pred: Option<Oid>,
    /// Fraction of input triples that are regular (stored in class columns
    /// or side tables). The paper reports ~85% on real data.
    pub coverage: f64,
    /// Total number of input triples the schema was discovered from.
    pub n_triples: u64,
}

impl EmergentSchema {
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// The class a subject belongs to, if it is regular.
    pub fn class_of(&self, s: Oid) -> Option<ClassId> {
        self.assignment.get(&s).copied()
    }

    /// All classes that have `pred` as a single-valued column.
    pub fn classes_with_column(&self, pred: Oid) -> impl Iterator<Item = (ClassId, usize)> + '_ {
        self.classes
            .iter()
            .filter_map(move |c| c.column_of(pred).map(|i| (c.id, i)))
    }

    /// All classes that have `pred` as a multi-valued side table.
    pub fn classes_with_multi(&self, pred: Oid) -> impl Iterator<Item = (ClassId, usize)> + '_ {
        self.classes
            .iter()
            .filter_map(move |c| c.multi_of(pred).map(|i| (c.id, i)))
    }

    /// Find a class by (case-insensitive) name.
    pub fn class_by_name(&self, name: &str) -> Option<&ClassDef> {
        self.classes
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Decide where each triple lives. `triples_spo` must be sorted by
    /// (s, p, o). For a single-valued column, the *smallest* matching-type
    /// object is the stored value; further values and type mismatches are
    /// irregular. Used by both the storage loader and coverage accounting,
    /// so the two can never disagree.
    pub fn place_triples(&self, triples_spo: &[Triple], mut f: impl FnMut(Triple, TripleHome)) {
        let mut i = 0;
        while i < triples_spo.len() {
            let s = triples_spo[i].s;
            let class = self.class_of(s);
            // Per (s, p) group.
            while i < triples_spo.len() && triples_spo[i].s == s {
                let p = triples_spo[i].p;
                let group_start = i;
                while i < triples_spo.len() && triples_spo[i].s == s && triples_spo[i].p == p {
                    i += 1;
                }
                let group = &triples_spo[group_start..i];
                let Some(cid) = class else {
                    for &t in group {
                        f(t, TripleHome::Irregular);
                    }
                    continue;
                };
                let cdef = self.class(cid);
                if let Some(col) = cdef.column_of(p) {
                    let ty = cdef.columns[col].ty;
                    // Objects are sorted ascending within the group; the first
                    // matching-type one is the stored value.
                    let mut stored = false;
                    for &t in group {
                        if !stored && !t.o.is_null() && t.o.tag() == ty {
                            f(t, TripleHome::Column { class: cid, col });
                            stored = true;
                        } else {
                            f(t, TripleHome::Irregular);
                        }
                    }
                } else if let Some(mp) = cdef.multi_of(p) {
                    let ty = cdef.multi_props[mp].ty;
                    for &t in group {
                        if !t.o.is_null() && t.o.tag() == ty {
                            f(t, TripleHome::Multi { class: cid, mp });
                        } else {
                            f(t, TripleHome::Irregular);
                        }
                    }
                } else {
                    for &t in group {
                        f(t, TripleHome::Irregular);
                    }
                }
            }
        }
    }

    /// Render the schema as readable DDL-style text (the "SQL view").
    pub fn render_ddl(&self, dict: &sordf_model::Dictionary) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for c in &self.classes {
            let _ = writeln!(
                out,
                "CREATE TABLE {} ( -- {} subjects",
                c.name, c.n_subjects
            );
            let _ = writeln!(out, "  subject IRI PRIMARY KEY,");
            for (i, col) in c.columns.iter().enumerate() {
                let null = if col.nullable { " NULL" } else { " NOT NULL" };
                let fk = match &col.fk {
                    Some(fk) => format!(
                        " REFERENCES {}{}",
                        self.class(fk.target).name,
                        if fk.one_to_one { " -- 1-1" } else { "" }
                    ),
                    None => String::new(),
                };
                let comma = if i + 1 < c.columns.len() || !c.multi_props.is_empty() {
                    ","
                } else {
                    ""
                };
                let pred = dict.iri_str(col.pred).unwrap_or("?");
                let _ = writeln!(
                    out,
                    "  {} {}{}{}{} -- <{}> presence {:.0}%",
                    col.name,
                    col.ty.name().to_uppercase(),
                    null,
                    fk,
                    comma,
                    pred,
                    col.presence * 100.0
                );
            }
            for (i, mp) in c.multi_props.iter().enumerate() {
                let comma = if i + 1 < c.multi_props.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "  {} SETOF {}{} -- side table, mean multiplicity {:.1}",
                    mp.name,
                    mp.ty.name().to_uppercase(),
                    comma,
                    mp.mean_multiplicity
                );
            }
            let _ = writeln!(out, ");");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_schema() -> EmergentSchema {
        let mut class = ClassDef {
            id: ClassId(0),
            name: "book".into(),
            columns: vec![
                ColumnDef {
                    pred: Oid::iri(10),
                    name: "title".into(),
                    ty: TypeTag::Str,
                    presence: 1.0,
                    nullable: false,
                    fk: None,
                    stats: ColStats::default(),
                },
                ColumnDef {
                    pred: Oid::iri(11),
                    name: "year".into(),
                    ty: TypeTag::Int,
                    presence: 0.5,
                    nullable: true,
                    fk: None,
                    stats: ColStats::default(),
                },
            ],
            multi_props: vec![MultiPropDef {
                pred: Oid::iri(12),
                name: "author".into(),
                ty: TypeTag::Iri,
                mean_multiplicity: 2.0,
                fk: None,
                stats: ColStats::default(),
            }],
            n_subjects: 2,
            indirect_support: 0,
            col_index: FxHashMap::default(),
            multi_index: FxHashMap::default(),
        };
        class.reindex();
        let mut assignment = FxHashMap::default();
        assignment.insert(Oid::iri(0), ClassId(0));
        assignment.insert(Oid::iri(1), ClassId(0));
        EmergentSchema {
            classes: vec![class],
            assignment,
            type_pred: None,
            coverage: 0.0,
            n_triples: 0,
        }
    }

    #[test]
    fn lookup_helpers() {
        let s = mini_schema();
        let c = s.class(ClassId(0));
        assert_eq!(c.column_of(Oid::iri(10)), Some(0));
        assert_eq!(c.column_of(Oid::iri(12)), None);
        assert_eq!(c.multi_of(Oid::iri(12)), Some(0));
        assert_eq!(s.class_of(Oid::iri(0)), Some(ClassId(0)));
        assert_eq!(s.class_of(Oid::iri(99)), None);
        assert_eq!(s.classes_with_column(Oid::iri(11)).count(), 1);
        assert!(s.class_by_name("BOOK").is_some());
    }

    #[test]
    fn placement_single_multi_and_irregular() {
        let s = mini_schema();
        let title = Oid::iri(10);
        let year = Oid::iri(11);
        let author = Oid::iri(12);
        let other = Oid::iri(13);
        let dict = sordf_model::Dictionary::new();
        let t_hello = dict
            .encode_value(&sordf_model::Value::str("hello"))
            .unwrap();
        let mut triples = vec![
            // subject 0: title (str, ok), year twice (first stored, second irregular),
            // author twice (both multi), unknown prop (irregular)
            Triple::new(Oid::iri(0), title, t_hello),
            Triple::new(Oid::iri(0), year, Oid::from_int(1996).unwrap()),
            Triple::new(Oid::iri(0), year, Oid::from_int(1997).unwrap()),
            Triple::new(Oid::iri(0), author, Oid::iri(50)),
            Triple::new(Oid::iri(0), author, Oid::iri(51)),
            Triple::new(Oid::iri(0), other, Oid::iri(52)),
            // subject 1: title with WRONG type (int) -> irregular
            Triple::new(Oid::iri(1), title, Oid::from_int(7).unwrap()),
            // subject 99: unassigned -> irregular
            Triple::new(Oid::iri(99), title, t_hello),
        ];
        triples.sort_by_key(|t| (t.s, t.p, t.o));
        let mut homes = Vec::new();
        s.place_triples(&triples, |t, h| homes.push((t, h)));
        assert_eq!(homes.len(), triples.len());
        let count = |want: TripleHome| homes.iter().filter(|(_, h)| *h == want).count();
        assert_eq!(
            count(TripleHome::Column {
                class: ClassId(0),
                col: 0
            }),
            1
        );
        assert_eq!(
            count(TripleHome::Column {
                class: ClassId(0),
                col: 1
            }),
            1
        );
        assert_eq!(
            count(TripleHome::Multi {
                class: ClassId(0),
                mp: 0
            }),
            2
        );
        assert_eq!(count(TripleHome::Irregular), 4);
        // The stored year is the first (smallest) one.
        let stored_year = homes
            .iter()
            .find(|(t, h)| matches!(h, TripleHome::Column { col: 1, .. }) && t.p == year)
            .unwrap();
        assert_eq!(stored_year.0.o, Oid::from_int(1996).unwrap());
    }
}
