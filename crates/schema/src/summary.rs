//! Schema summarization for query sessions.
//!
//! "The schema generated … may still be quite large. Thus, we envision
//! methods to reduce the schema size during a query session … by reducing
//! the support thresholds, but a more advanced form is to use keyword search
//! to identify relevant CS's. In both cases we will show a schema consisting
//! of these selected CS's plus other CS's reachable from them over foreign
//! key links."

use crate::types::{ClassId, EmergentSchema};
use sordf_model::FxHashSet;

/// A reduced view of the schema: seed classes matching the filters plus the
/// FK-reachable closure.
#[derive(Debug, Clone)]
pub struct SchemaSummary {
    /// Selected classes, in schema order.
    pub selected: Vec<ClassId>,
    /// Which of the selected classes were seeds (vs. pulled in via FKs).
    pub seeds: Vec<ClassId>,
}

/// Build a summary. A class seeds the summary when its support reaches
/// `min_support` *and*, if `keywords` is non-empty, its table name or one of
/// its column names contains a keyword (case-insensitive).
pub fn summarize(schema: &EmergentSchema, min_support: u64, keywords: &[&str]) -> SchemaSummary {
    let lowered: Vec<String> = keywords.iter().map(|k| k.to_ascii_lowercase()).collect();
    let matches_keyword = |c: &crate::types::ClassDef| {
        if lowered.is_empty() {
            return true;
        }
        let name = c.name.to_ascii_lowercase();
        lowered.iter().any(|k| {
            name.contains(k)
                || c.columns
                    .iter()
                    .any(|col| col.name.to_ascii_lowercase().contains(k))
                || c.multi_props
                    .iter()
                    .any(|m| m.name.to_ascii_lowercase().contains(k))
        })
    };

    let seeds: Vec<ClassId> = schema
        .classes
        .iter()
        .filter(|c| c.n_subjects >= min_support && matches_keyword(c))
        .map(|c| c.id)
        .collect();

    // FK-closure from the seeds.
    let mut selected: FxHashSet<ClassId> = seeds.iter().copied().collect();
    let mut frontier: Vec<ClassId> = seeds.clone();
    while let Some(cid) = frontier.pop() {
        let c = schema.class(cid);
        let targets = c
            .columns
            .iter()
            .filter_map(|col| col.fk.as_ref())
            .chain(c.multi_props.iter().filter_map(|m| m.fk.as_ref()))
            .map(|fk| fk.target);
        for t in targets {
            if selected.insert(t) {
                frontier.push(t);
            }
        }
    }

    let mut selected: Vec<ClassId> = selected.into_iter().collect();
    selected.sort();
    SchemaSummary { selected, seeds }
}

impl SchemaSummary {
    /// Render the summary as DDL text restricted to the selected classes.
    pub fn render(&self, schema: &EmergentSchema, dict: &sordf_model::Dictionary) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let keep: FxHashSet<ClassId> = self.selected.iter().copied().collect();
        for c in &schema.classes {
            if !keep.contains(&c.id) {
                continue;
            }
            let seed = if self.seeds.contains(&c.id) {
                ""
            } else {
                " (via FK)"
            };
            let _ = writeln!(out, "TABLE {}{} -- {} subjects", c.name, seed, c.n_subjects);
            for col in &c.columns {
                let fk = col
                    .fk
                    .as_ref()
                    .map(|fk| format!(" -> {}", schema.class(fk.target).name))
                    .unwrap_or_default();
                let _ = writeln!(out, "  {} {}{}", col.name, col.ty.name(), fk);
            }
            for m in &c.multi_props {
                let _ = writeln!(out, "  {} setof {}", m.name, m.ty.name());
            }
        }
        let _ = dict; // dict currently unused; kept for future IRI footnotes
        out
    }
}
