//! The end-to-end schema discovery pipeline.

use crate::config::SchemaConfig;
use crate::types::{ClassDef, ClassId, ColumnDef, EmergentSchema, ForeignKey, MultiPropDef};
use crate::{cs, finetune, fk, merge, naming, stats, typing};
use sordf_model::{Dictionary, FxHashMap, Triple};

/// Discover the emergent relational schema of a dataset.
///
/// `triples_spo` must be sorted by (subject, predicate, object); the storage
/// loader keeps an SPO permutation anyway, so discovery costs no extra sort.
pub fn discover(triples_spo: &[Triple], dict: &Dictionary, cfg: &SchemaConfig) -> EmergentSchema {
    debug_assert!(
        triples_spo
            .windows(2)
            .all(|w| w[0].key_spo() <= w[1].key_spo()),
        "discover() requires SPO-sorted triples"
    );

    // Stages 1-5.
    let (css, _) = cs::extract(triples_spo);
    let merged = merge::generalize(css, cfg);
    let typed = typing::type_classes(triples_spo, merged, cfg);
    let shaped = finetune::shape_multiplicity(triples_spo, typed, cfg);
    let (edges, _, ref_stats) = fk::discover_fks(triples_spo, &shaped, cfg);

    // Stage 6: retention with indirect support. A class is kept if its own
    // support reaches the threshold, or if references *from kept classes*
    // push it over ("we add incoming links to the CS to the tally").
    let n = shaped.len();
    let mut kept: Vec<bool> = shaped
        .iter()
        .map(|c| !c.props.is_empty() && c.support() >= cfg.min_support)
        .collect();
    loop {
        let mut incoming = vec![0u64; n];
        for ci in 0..n {
            if !kept[ci] {
                continue;
            }
            for st in &ref_stats[ci] {
                for (&target, &n_refs) in &st.per_target {
                    incoming[target as usize] += n_refs;
                }
            }
        }
        let mut changed = false;
        for ci in 0..n {
            if !kept[ci]
                && !shaped[ci].props.is_empty()
                && shaped[ci].support() + incoming[ci] >= cfg.min_support
            {
                kept[ci] = true;
                changed = true;
            }
        }
        if !changed {
            // Record the final tally for reporting.
            let mut schema_classes = build_classes(&shaped, &edges, &kept, &incoming, cfg);
            let mut assignment = FxHashMap::default();
            for (new_id, class) in schema_classes.iter().enumerate() {
                let old = class.id.0 as usize; // temporarily holds the old index
                for &s in &shaped[old].subjects {
                    assignment.insert(s, ClassId(new_id as u32));
                }
            }
            for (new_id, class) in schema_classes.iter_mut().enumerate() {
                class.id = ClassId(new_id as u32);
            }
            let mut schema = EmergentSchema {
                classes: schema_classes,
                assignment,
                type_pred: None,
                coverage: 0.0,
                n_triples: triples_spo.len() as u64,
            };
            naming::assign_names(&mut schema, triples_spo, dict);
            stats::compute_stats(&mut schema, triples_spo);
            schema.coverage = stats::coverage(&schema, triples_spo);
            return schema;
        }
    }
}

/// Materialize [`ClassDef`]s for kept classes. The returned defs carry the
/// *old* class index in `id` (remapped by the caller); FK targets are
/// rewritten to new ids, edges to dropped classes removed.
fn build_classes(
    shaped: &[finetune::ShapedClass],
    edges: &[Vec<Option<fk::FkEdge>>],
    kept: &[bool],
    incoming: &[u64],
    cfg: &SchemaConfig,
) -> Vec<ClassDef> {
    // Old index -> new id, in descending-support order for stable output.
    let mut order: Vec<usize> = (0..shaped.len()).filter(|&i| kept[i]).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(shaped[i].support()), i));
    let mut new_of_old: FxHashMap<usize, u32> = FxHashMap::default();
    for (new_id, &old) in order.iter().enumerate() {
        new_of_old.insert(old, new_id as u32);
    }

    order
        .iter()
        .map(|&old| {
            let c = &shaped[old];
            let support = c.support().max(1);
            let map_fk = |e: &Option<fk::FkEdge>| -> Option<ForeignKey> {
                e.as_ref().and_then(|e| {
                    new_of_old.get(&(e.target as usize)).map(|&t| ForeignKey {
                        target: ClassId(t),
                        strength: e.strength,
                        one_to_one: e.one_to_one && cfg.unify_one_to_one,
                    })
                })
            };
            let mut columns = Vec::new();
            let mut multi_props = Vec::new();
            for (pi, prop) in c.props.iter().enumerate() {
                let presence = prop.n_with as f64 / support as f64;
                if prop.multi {
                    multi_props.push(MultiPropDef {
                        pred: prop.pred,
                        name: String::new(),
                        ty: prop.ty,
                        mean_multiplicity: prop.mean_mult,
                        fk: map_fk(&edges[old][pi]),
                        stats: Default::default(),
                    });
                } else {
                    columns.push(ColumnDef {
                        pred: prop.pred,
                        name: String::new(),
                        ty: prop.ty,
                        presence,
                        nullable: presence < 1.0 - 1e-9,
                        fk: map_fk(&edges[old][pi]),
                        stats: Default::default(),
                    });
                }
            }
            let mut def = ClassDef {
                id: ClassId(old as u32), // old index; caller remaps
                name: String::new(),
                columns,
                multi_props,
                n_subjects: c.support(),
                indirect_support: incoming[old],
                col_index: FxHashMap::default(),
                multi_index: FxHashMap::default(),
            };
            def.reindex();
            def
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::{Oid, Term, TypeTag, Value};

    /// Build the paper's Fig. 2 DBLP-like dataset: inproceedings with
    /// type/creator/title/partOf, conferences with type/title/issued, plus
    /// irregularities.
    fn dblp_like() -> (Vec<Triple>, Dictionary) {
        let mut dict = Dictionary::new();
        let mut triples = Vec::new();
        let ex = |s: &str| format!("http://example.org/{s}");
        let mut add = |dict: &mut Dictionary, s: &str, p: &str, o: Term| {
            let s = dict.encode_iri(&ex(s));
            let p = if p == "type" {
                dict.encode_iri(sordf_model::vocab::RDF_TYPE)
            } else {
                dict.encode_iri(&ex(p))
            };
            let o = dict.encode_term(&o).unwrap();
            triples.push(Triple::new(s, p, o));
        };
        for i in 0..12 {
            let s = format!("inproc{i}");
            add(&mut dict, &s, "type", Term::iri(ex("inproceeding")));
            add(
                &mut dict,
                &s,
                "creator",
                Term::iri(ex(&format!("author{}", i % 5))),
            );
            add(&mut dict, &s, "title", Term::str(format!("Paper {i}")));
            add(
                &mut dict,
                &s,
                "partOf",
                Term::iri(ex(&format!("conf{}", i % 3))),
            );
        }
        // Multi-valued creator on one paper (Fig. 2's {author3, author4}).
        add(&mut dict, "inproc0", "creator", Term::iri(ex("author4")));
        for c in 0..3 {
            let s = format!("conf{c}");
            add(&mut dict, &s, "type", Term::iri(ex("Conference")));
            add(&mut dict, &s, "title", Term::str(format!("conference{c}")));
            add(&mut dict, &s, "issued", Term::int(2010 + c as i64));
        }
        // Irregularities: a stray webpage and a dangling property.
        add(&mut dict, "webpage1", "url", Term::str("index.php"));
        add(&mut dict, "conf2", "homepage", Term::iri(ex("webpage1")));
        triples.sort_by_key(|t| t.key_spo());
        (triples, dict)
    }

    #[test]
    fn discovers_fig2_structure() {
        let (triples, dict) = dblp_like();
        let schema = discover(&triples, &dict, &SchemaConfig::default());
        // Two main classes: inproceeding and conference.
        assert!(
            schema.classes.len() >= 2,
            "classes: {:?}",
            schema.classes.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
        let inproc = schema
            .class_by_name("inproceeding")
            .expect("inproceeding table");
        let conf = schema
            .class_by_name("conference")
            .expect("conference table");
        assert_eq!(inproc.n_subjects, 12);
        assert_eq!(conf.n_subjects, 3);
        // partOf is an FK from inproceeding to conference.
        let part_of = inproc
            .columns
            .iter()
            .find(|c| c.name == "partof")
            .expect("partOf column");
        let fk = part_of.fk.expect("partOf should be a foreign key");
        assert_eq!(schema.class(fk.target).name, "conference");
        // issued is an int column on conference.
        let issued = conf.columns.iter().find(|c| c.name == "issued").unwrap();
        assert_eq!(issued.ty, TypeTag::Int);
        // Coverage is high but below 1.0 (irregular webpage/homepage triples).
        assert!(
            schema.coverage > 0.8 && schema.coverage < 1.0,
            "coverage {}",
            schema.coverage
        );
    }

    #[test]
    fn ddl_renders_names_and_fks() {
        let (triples, dict) = dblp_like();
        let schema = discover(&triples, &dict, &SchemaConfig::default());
        let ddl = schema.render_ddl(&dict);
        assert!(ddl.contains("CREATE TABLE inproceeding"), "{ddl}");
        assert!(ddl.contains("REFERENCES conference"), "{ddl}");
    }

    #[test]
    fn small_referenced_class_rescued_by_indirect_support() {
        let dict = Dictionary::new();
        let mut triples = Vec::new();
        let p_ref = dict.encode_iri("http://e/ref");
        let p_a = dict.encode_iri("http://e/a");
        let p_b = dict.encode_iri("http://e/b");
        // 20 sources all referencing the same 2 targets; targets' own support
        // (2) is below min_support=3, but 20 incoming links rescue them.
        for s in 0..20u64 {
            let subj = dict.encode_iri(&format!("http://e/s{s}"));
            let target = dict.encode_iri(&format!("http://e/t{}", s % 2));
            triples.push(Triple::new(subj, p_ref, target));
            triples.push(Triple::new(subj, p_a, Oid::from_int(s as i64).unwrap()));
        }
        for t in 0..2u64 {
            let subj = dict.encode_iri(&format!("http://e/t{t}"));
            let o = dict
                .encode_value(&Value::str(format!("target{t}")))
                .unwrap();
            triples.push(Triple::new(subj, p_b, o));
        }
        triples.sort_by_key(|t| t.key_spo());
        let schema = discover(&triples, &dict, &SchemaConfig::default());
        assert_eq!(schema.classes.len(), 2, "target class must be rescued");
        let target_class = schema.classes.iter().find(|c| c.n_subjects == 2).unwrap();
        assert!(target_class.indirect_support >= 20);
        // And without references it would be dropped:
        let alone: Vec<Triple> = triples.iter().copied().filter(|t| t.p == p_b).collect();
        let schema2 = discover(&alone, &dict, &SchemaConfig::default());
        assert!(schema2.classes.is_empty());
    }

    #[test]
    fn fully_regular_data_has_full_coverage() {
        let dict = Dictionary::new();
        let p1 = dict.encode_iri("http://e/p1");
        let p2 = dict.encode_iri("http://e/p2");
        let mut triples = Vec::new();
        for s in 0..100u64 {
            let subj = dict.encode_iri(&format!("http://e/s{s}"));
            triples.push(Triple::new(subj, p1, Oid::from_int(s as i64).unwrap()));
            triples.push(Triple::new(
                subj,
                p2,
                Oid::from_date_days(s as i64).unwrap(),
            ));
        }
        triples.sort_by_key(|t| t.key_spo());
        let schema = discover(&triples, &dict, &SchemaConfig::default());
        assert_eq!(schema.classes.len(), 1);
        assert_eq!(schema.coverage, 1.0);
        assert_eq!(schema.classes[0].columns.len(), 2);
        assert!(!schema.classes[0].columns[0].nullable);
    }

    #[test]
    fn stats_are_populated() {
        let (triples, dict) = dblp_like();
        let schema = discover(&triples, &dict, &SchemaConfig::default());
        let conf = schema.class_by_name("conference").unwrap();
        let issued = conf.columns.iter().find(|c| c.name == "issued").unwrap();
        assert_eq!(issued.stats.n_nonnull, 3);
        assert_eq!(issued.stats.n_distinct, 3);
        assert_eq!(issued.stats.min, Some(Oid::from_int(2010).unwrap().raw()));
        assert_eq!(issued.stats.max, Some(Oid::from_int(2012).unwrap().raw()));
    }

    #[test]
    fn summary_selects_keyword_plus_fk_closure() {
        let (triples, dict) = dblp_like();
        let schema = discover(&triples, &dict, &SchemaConfig::default());
        let summary = crate::summary::summarize(&schema, 1, &["inproceeding"]);
        // inproceeding seeds; conference pulled in via partOf FK.
        let names: Vec<&str> = summary
            .selected
            .iter()
            .map(|&c| schema.class(c).name.as_str())
            .collect();
        assert!(names.contains(&"inproceeding"));
        assert!(names.contains(&"conference"));
        let rendered = summary.render(&schema, &dict);
        assert!(rendered.contains("via FK"), "{rendered}");
    }
}
