//! Multiplicity fine-tuning: `0..n` attributes become `0..1` columns or are
//! split off into side tables (the paper's "schema fine-tuning").

use crate::config::SchemaConfig;
use crate::cs::walk_sp_groups;
use crate::typing::TypedClass;
use sordf_model::{FxHashMap, Oid, Triple, TypeTag};

/// A property's final storage shape within a class.
#[derive(Debug, Clone)]
pub struct ShapedProp {
    pub pred: Oid,
    pub ty: TypeTag,
    /// Subjects having ≥1 matching-type value.
    pub n_with: u64,
    /// Mean matching values per subject that has the property.
    pub mean_mult: f64,
    /// True → side table of (s, o) pairs; false → single-valued column.
    pub multi: bool,
}

/// A class with multiplicity-resolved properties.
#[derive(Debug, Clone)]
pub struct ShapedClass {
    pub props: Vec<ShapedProp>,
    pub subjects: Vec<Oid>,
}

impl ShapedClass {
    pub fn support(&self) -> u64 {
        self.subjects.len() as u64
    }
}

/// Decide, for every (class, property), between a `0..1` column (extra
/// values demoted to the irregular store) and a multi-value side table.
pub fn shape_multiplicity(
    triples_spo: &[Triple],
    typed: Vec<TypedClass>,
    cfg: &SchemaConfig,
) -> Vec<ShapedClass> {
    let mut assign: FxHashMap<Oid, u32> = FxHashMap::default();
    for (ci, c) in typed.iter().enumerate() {
        for &s in &c.subjects {
            assign.insert(s, ci as u32);
        }
    }
    let prop_idx: Vec<FxHashMap<Oid, usize>> = typed
        .iter()
        .map(|c| c.props.iter().enumerate().map(|(i, &p)| (p, i)).collect())
        .collect();

    #[derive(Default, Clone, Copy)]
    struct MultStats {
        n_with: u64,
        n_multi: u64,
        n_matching: u64,
    }
    let mut stats: Vec<Vec<MultStats>> = typed
        .iter()
        .map(|c| vec![MultStats::default(); c.props.len()])
        .collect();

    walk_sp_groups(triples_spo, |s, p, objects| {
        let Some(&ci) = assign.get(&s) else { return };
        let Some(&pi) = prop_idx[ci as usize].get(&p) else {
            return;
        };
        let ty = typed[ci as usize].col_types[pi];
        let matching = objects
            .iter()
            .filter(|o| !o.is_null() && o.tag() == ty)
            .count() as u64;
        if matching > 0 {
            let st = &mut stats[ci as usize][pi];
            st.n_with += 1;
            st.n_matching += matching;
            if matching > 1 {
                st.n_multi += 1;
            }
        }
    });

    typed
        .into_iter()
        .enumerate()
        .map(|(ci, c)| {
            let props = c
                .props
                .iter()
                .enumerate()
                .map(|(pi, &pred)| {
                    let st = stats[ci][pi];
                    let mean = if st.n_with == 0 {
                        0.0
                    } else {
                        st.n_matching as f64 / st.n_with as f64
                    };
                    let frac_multi = if st.n_with == 0 {
                        0.0
                    } else {
                        st.n_multi as f64 / st.n_with as f64
                    };
                    ShapedProp {
                        pred,
                        ty: c.col_types[pi],
                        n_with: st.n_with,
                        mean_mult: mean,
                        multi: frac_multi > cfg.multi_split_frac || mean > cfg.multi_split_mean,
                    }
                })
                .collect();
            ShapedClass {
                props,
                subjects: c.subjects,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::extract;
    use crate::merge::generalize;
    use crate::typing::type_classes;

    fn run(triples: &mut [Triple], cfg: &SchemaConfig) -> Vec<ShapedClass> {
        triples.sort_by_key(|t| t.key_spo());
        let (css, _) = extract(triples);
        let merged = generalize(css, cfg);
        let typed = type_classes(triples, merged, cfg);
        shape_multiplicity(triples, typed, cfg)
    }

    #[test]
    fn single_valued_stays_single() {
        let p = Oid::iri(100);
        let mut triples: Vec<Triple> = (0..50)
            .map(|s| Triple::new(Oid::iri(s), p, Oid::from_int(s as i64).unwrap()))
            .collect();
        let shaped = run(&mut triples, &SchemaConfig::default());
        assert_eq!(shaped.len(), 1);
        assert!(!shaped[0].props[0].multi);
        assert_eq!(shaped[0].props[0].n_with, 50);
        assert_eq!(shaped[0].props[0].mean_mult, 1.0);
    }

    #[test]
    fn widely_multivalued_splits_off() {
        // Every subject has 3 authors -> side table.
        let p = Oid::iri(100);
        let mut triples = Vec::new();
        for s in 0..50u64 {
            for a in 0..3u64 {
                triples.push(Triple::new(Oid::iri(s), p, Oid::iri(1000 + s * 3 + a)));
            }
        }
        let shaped = run(&mut triples, &SchemaConfig::default());
        assert!(shaped[0].props[0].multi);
        assert_eq!(shaped[0].props[0].mean_mult, 3.0);
    }

    #[test]
    fn rare_duplicates_stay_single_valued() {
        // 2% of subjects have a second value: frac_multi 0.02 <= 0.10.
        let p = Oid::iri(100);
        let mut triples = Vec::new();
        for s in 0..100u64 {
            triples.push(Triple::new(Oid::iri(s), p, Oid::from_int(1).unwrap()));
        }
        triples.push(Triple::new(Oid::iri(7), p, Oid::from_int(2).unwrap()));
        triples.push(Triple::new(Oid::iri(8), p, Oid::from_int(2).unwrap()));
        let shaped = run(&mut triples, &SchemaConfig::default());
        assert!(!shaped[0].props[0].multi);
    }

    #[test]
    fn mismatched_types_do_not_count_toward_multiplicity() {
        // Every subject has one int + one string for p; declared type int
        // (strings are exceptions) -> still single-valued.
        let p = Oid::iri(100);
        let q = Oid::iri(101);
        let mut triples = Vec::new();
        for s in 0..100u64 {
            triples.push(Triple::new(
                Oid::iri(s),
                p,
                Oid::from_int(s as i64).unwrap(),
            ));
            triples.push(Triple::new(Oid::iri(s), q, Oid::from_int(0).unwrap()));
        }
        // minority string noise on p for 10 subjects
        for s in 0..10u64 {
            triples.push(Triple::new(Oid::iri(s), p, Oid::string(s)));
        }
        let shaped = run(&mut triples, &SchemaConfig::default());
        let prop = shaped[0].props.iter().find(|pr| pr.pred == p).unwrap();
        assert_eq!(prop.ty, TypeTag::Int);
        assert!(!prop.multi, "string noise must not force a side table");
    }
}
