//! # sordf-schema
//!
//! Emergent relational schema discovery for RDF data — the paper's core
//! contribution (§II-A "Schema exploration and Summarization").
//!
//! Starting from dictionary-encoded triples, the pipeline in [`discover`]
//! recovers the implicit class structure:
//!
//! 1. **Characteristic sets** ([`cs`]) — the exact property set of every
//!    subject, following Neumann & Moerkotte (ICDE 2011).
//! 2. **Generalization** ([`merge`]) — exact CSs are merged into fewer
//!    classes; attributes present in only a significant minority of subjects
//!    become NULLABLE (`0..1`) columns instead of spawning new CSs.
//! 3. **Typed properties** ([`typing`]) — object-type histograms give every
//!    column a declared type; classes whose subjects disagree on types are
//!    split into per-type-signature *variants*.
//! 4. **Multiplicity fine-tuning** ([`finetune`]) — rarely multi-valued
//!    properties are reduced to `0..1` (extras become irregular), genuinely
//!    multi-valued ones are split off into side tables.
//! 5. **Foreign keys** ([`fk`]) — IRI columns whose values concentrate in one
//!    target class become FK edges; incoming links add *indirect support*
//!    that rescues small-but-referenced classes from being dropped.
//! 6. **Naming** ([`naming`]) — human-readable SQL identifiers from
//!    `rdf:type` objects and predicate local names.
//! 7. **Statistics** ([`stats`]) — per-class / per-column counts, null
//!    fractions and distinct sketches for the engine's cardinality estimator.
//!
//! The result, [`EmergentSchema`], tells the storage layer which triples are
//! *regular* (stored in CS-clustered columns) and which remain *irregular*
//! (kept in the PSO triple table), and backs the SQL view exposed to users.

pub mod config;
pub mod cs;
pub mod finetune;
pub mod fk;
pub mod incremental;
pub mod merge;
pub mod naming;
pub mod stats;
pub mod statsview;
pub mod summary;
pub mod types;
pub mod typing;

mod pipeline;

pub use config::SchemaConfig;
pub use incremental::{DriftStats, IncrementalAssigner};
pub use pipeline::discover;
pub use statsview::StatsView;
pub use summary::{summarize, SchemaSummary};
pub use types::{
    ClassDef, ClassId, ColStats, ColumnDef, EmergentSchema, ForeignKey, MultiPropDef, TripleHome,
};
