//! Human-readable schema naming.
//!
//! Research question (ii) of the paper asks for "shapes and names that can be
//! easily understood and used". Class names come from the majority
//! `rdf:type` object of the class's subjects; classes without type triples
//! fall back to their most characteristic property. Column names are the
//! predicate's local name. Everything is sanitized into unique SQL
//! identifiers so the schema can be exported to the SQL toolchain unmodified.

use crate::types::EmergentSchema;
use sordf_model::{vocab, Dictionary, FxHashMap, FxHashSet, Oid, Term, Triple};

/// Turn an arbitrary string into a SQL-safe identifier (lowercase,
/// `[a-z0-9_]`, starts with a letter, non-empty).
pub fn sanitize_identifier(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_underscore = false;
    for c in s.chars() {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_alphanumeric() {
            out.push(c);
            last_underscore = false;
        } else if !last_underscore && !out.is_empty() {
            out.push('_');
            last_underscore = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    if out.is_empty() {
        out.push_str("unnamed");
    }
    if out.as_bytes()[0].is_ascii_digit() {
        out.insert_str(0, "t_");
    }
    out
}

/// Make `name` unique w.r.t. `used`, appending `_2`, `_3`, … as needed.
fn uniquify(name: String, used: &mut FxHashSet<String>) -> String {
    if used.insert(name.clone()) {
        return name;
    }
    for i in 2.. {
        let candidate = format!("{name}_{i}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
    }
    unreachable!()
}

/// Fill in class and column names. `triples_spo` must be SPO-sorted.
pub fn assign_names(schema: &mut EmergentSchema, triples_spo: &[Triple], dict: &Dictionary) {
    let type_pred = dict.iri_oid(vocab::RDF_TYPE);
    schema.type_pred = type_pred;

    // Majority rdf:type object per class.
    let mut type_counts: Vec<FxHashMap<Oid, u64>> = schema
        .classes
        .iter()
        .map(|_| FxHashMap::default())
        .collect();
    if let Some(tp) = type_pred {
        for t in triples_spo {
            if t.p == tp && t.o.is_iri() {
                if let Some(cid) = schema.class_of(t.s) {
                    *type_counts[cid.0 as usize].entry(t.o).or_insert(0) += 1;
                }
            }
        }
    }

    let mut used_tables = FxHashSet::default();
    for (ci, counts) in type_counts.iter().enumerate() {
        // Candidate from rdf:type.
        let from_type = counts
            .iter()
            .max_by_key(|&(o, &n)| (n, u64::MAX - o.raw()))
            .and_then(|(&o, _)| dict.iri_str(o).ok())
            .map(|iri| Term::local_name(iri).to_string());
        // Fallback: most-present non-type property.
        let fallback = {
            let c = &schema.classes[ci];
            c.columns
                .iter()
                .filter(|col| Some(col.pred) != type_pred)
                .max_by(|a, b| a.presence.partial_cmp(&b.presence).unwrap())
                .map(|col| col.pred)
                .or_else(|| c.multi_props.first().map(|m| m.pred))
                .and_then(|p| dict.iri_str(p).ok())
                .map(|iri| format!("cs_{}", Term::local_name(iri)))
        };
        let raw = from_type.or(fallback).unwrap_or_else(|| format!("cs{ci}"));
        schema.classes[ci].name = uniquify(sanitize_identifier(&raw), &mut used_tables);

        // Column names.
        let mut used_cols: FxHashSet<String> = FxHashSet::default();
        used_cols.insert("subject".to_string()); // reserved implicit column
        let class = &mut schema.classes[ci];
        for col in class.columns.iter_mut() {
            let raw = if Some(col.pred) == type_pred {
                "type".to_string()
            } else {
                dict.iri_str(col.pred)
                    .map(|iri| Term::local_name(iri).to_string())
                    .unwrap_or_default()
            };
            col.name = uniquify(sanitize_identifier(&raw), &mut used_cols);
        }
        for mp in class.multi_props.iter_mut() {
            let raw = dict
                .iri_str(mp.pred)
                .map(|iri| Term::local_name(iri).to_string())
                .unwrap_or_default();
            mp.name = uniquify(sanitize_identifier(&raw), &mut used_cols);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitization() {
        assert_eq!(sanitize_identifier("InProceeding"), "inproceeding");
        assert_eq!(sanitize_identifier("has-author!"), "has_author");
        assert_eq!(sanitize_identifier("2010data"), "t_2010data");
        assert_eq!(sanitize_identifier("--"), "unnamed");
        assert_eq!(sanitize_identifier("a  b"), "a_b");
    }

    #[test]
    fn uniquify_appends_counters() {
        let mut used = FxHashSet::default();
        assert_eq!(uniquify("x".into(), &mut used), "x");
        assert_eq!(uniquify("x".into(), &mut used), "x_2");
        assert_eq!(uniquify("x".into(), &mut used), "x_3");
    }
}
