//! Foreign-key discovery between classes.
//!
//! "As a URI property of one CS always refers in the object field to members
//! of one other CS, this is a foreign key between these two CS's." We count,
//! per IRI-typed column, which class its (placed) object values belong to;
//! a single target class covering enough of the references becomes an FK
//! edge. Reference counts also feed *indirect support* — the paper's trick
//! of adding incoming links to a CS's tally so that small-but-referenced
//! classes survive retention.

use crate::config::SchemaConfig;
use crate::cs::walk_sp_groups;
use crate::finetune::ShapedClass;
use sordf_model::{FxHashMap, FxHashSet, Oid, Triple, TypeTag};

/// Raw per-property reference statistics.
#[derive(Debug, Clone, Default)]
pub struct RefStats {
    /// Placed IRI references, total.
    pub n_refs: u64,
    /// References per target class index.
    pub per_target: FxHashMap<u32, u64>,
    /// Distinct placed object values.
    pub n_distinct: u64,
}

/// A discovered FK edge candidate on (class, prop index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FkEdge {
    pub target: u32,
    pub strength: f64,
    pub one_to_one: bool,
}

/// Result of [`discover_fks`]: per-class per-prop optional FK edges, the
/// per-class incoming-reference tally used for retention, and the raw
/// per-class per-prop reference statistics.
pub type FkDiscovery = (Vec<Vec<Option<FkEdge>>>, Vec<u64>, Vec<Vec<RefStats>>);

/// Compute reference statistics and FK edges for every IRI-typed property.
/// Returns per-class per-prop optional edges, plus the per-class incoming
/// reference tally used for retention.
pub fn discover_fks(
    triples_spo: &[Triple],
    classes: &[ShapedClass],
    cfg: &SchemaConfig,
) -> FkDiscovery {
    let mut assign: FxHashMap<Oid, u32> = FxHashMap::default();
    for (ci, c) in classes.iter().enumerate() {
        for &s in &c.subjects {
            assign.insert(s, ci as u32);
        }
    }
    let prop_idx: Vec<FxHashMap<Oid, usize>> = classes
        .iter()
        .map(|c| {
            c.props
                .iter()
                .enumerate()
                .map(|(i, p)| (p.pred, i))
                .collect()
        })
        .collect();

    let mut stats: Vec<Vec<RefStats>> = classes
        .iter()
        .map(|c| vec![RefStats::default(); c.props.len()])
        .collect();
    let mut distinct: Vec<Vec<FxHashSet<Oid>>> = classes
        .iter()
        .map(|c| vec![FxHashSet::default(); c.props.len()])
        .collect();

    walk_sp_groups(triples_spo, |s, p, objects| {
        let Some(&ci) = assign.get(&s) else { return };
        let Some(&pi) = prop_idx[ci as usize].get(&p) else {
            return;
        };
        let prop = &classes[ci as usize].props[pi];
        if prop.ty != TypeTag::Iri {
            return;
        }
        // Placement rule: single-valued -> first (smallest) matching object;
        // multi-valued -> all matching objects.
        let matching = objects
            .iter()
            .copied()
            .filter(|o| !o.is_null() && o.tag() == TypeTag::Iri);
        let placed: Vec<Oid> = if prop.multi {
            matching.collect()
        } else {
            matching.take(1).collect()
        };
        let st = &mut stats[ci as usize][pi];
        for o in placed {
            st.n_refs += 1;
            if let Some(&target) = assign.get(&o) {
                *st.per_target.entry(target).or_insert(0) += 1;
            }
            distinct[ci as usize][pi].insert(o);
        }
    });

    let mut incoming = vec![0u64; classes.len()];
    let mut edges: Vec<Vec<Option<FkEdge>>> =
        classes.iter().map(|c| vec![None; c.props.len()]).collect();
    for (ci, class) in classes.iter().enumerate() {
        for pi in 0..class.props.len() {
            let st = &mut stats[ci][pi];
            st.n_distinct = distinct[ci][pi].len() as u64;
            if st.n_refs == 0 {
                continue;
            }
            let Some((&target, &n)) = st
                .per_target
                .iter()
                .max_by_key(|&(t, &n)| (n, u32::MAX - *t))
            else {
                continue;
            };
            for (&t, &n_refs) in st.per_target.iter() {
                incoming[t as usize] += n_refs;
            }
            let strength = n as f64 / st.n_refs as f64;
            if strength + 1e-9 < cfg.fk_threshold {
                continue;
            }
            // 1-1: every source has exactly one distinct target, all refs hit
            // the target class, and they saturate it.
            let one_to_one = cfg.unify_one_to_one
                && !class.props[pi].multi
                && n == st.n_refs
                && st.n_distinct == st.n_refs
                && st.n_refs == classes[target as usize].subjects.len() as u64;
            edges[ci][pi] = Some(FkEdge {
                target,
                strength,
                one_to_one,
            });
        }
    }
    (edges, incoming, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::extract;
    use crate::finetune::shape_multiplicity;
    use crate::merge::generalize;
    use crate::typing::type_classes;

    fn pipeline(
        triples: &mut [Triple],
        cfg: &SchemaConfig,
    ) -> (Vec<ShapedClass>, Vec<Vec<Option<FkEdge>>>, Vec<u64>) {
        triples.sort_by_key(|t| t.key_spo());
        let (css, _) = extract(triples);
        let merged = generalize(css, cfg);
        let typed = type_classes(triples, merged, cfg);
        let shaped = shape_multiplicity(triples, typed, cfg);
        let (edges, incoming, _) = discover_fks(triples, &shaped, cfg);
        (shaped, edges, incoming)
    }

    /// Orders (subjects 0..N) reference customers (subjects 1000..1000+M)
    /// via p_cust; customers have p_name.
    fn orders_customers(n_orders: u64, n_cust: u64) -> Vec<Triple> {
        let p_cust = Oid::iri(5000);
        let p_date = Oid::iri(5001);
        let p_name = Oid::iri(5002);
        let mut triples = Vec::new();
        for s in 0..n_orders {
            triples.push(Triple::new(
                Oid::iri(s),
                p_cust,
                Oid::iri(1000 + s % n_cust),
            ));
            triples.push(Triple::new(
                Oid::iri(s),
                p_date,
                Oid::from_date_days(s as i64).unwrap(),
            ));
        }
        for c in 0..n_cust {
            triples.push(Triple::new(Oid::iri(1000 + c), p_name, Oid::string(c)));
        }
        triples
    }

    #[test]
    fn fk_detected_between_classes() {
        let mut triples = orders_customers(100, 10);
        let (shaped, edges, incoming) = pipeline(&mut triples, &SchemaConfig::default());
        assert_eq!(shaped.len(), 2);
        let (oi, _) = shaped
            .iter()
            .enumerate()
            .find(|(_, c)| c.subjects.len() == 100)
            .expect("orders class");
        let pi = shaped[oi]
            .props
            .iter()
            .position(|p| p.pred == Oid::iri(5000))
            .unwrap();
        let edge = edges[oi][pi].expect("fk edge");
        assert_eq!(edge.strength, 1.0);
        assert!(!edge.one_to_one, "10 customers shared by 100 orders is N:1");
        assert_eq!(incoming[edge.target as usize], 100);
    }

    #[test]
    fn one_to_one_link_flagged() {
        let mut triples = orders_customers(50, 50); // each order -> its own customer
        let (shaped, edges, _) = pipeline(&mut triples, &SchemaConfig::default());
        let (oi, _) = shaped
            .iter()
            .enumerate()
            .find(|(_, c)| c.props.iter().any(|p| p.pred == Oid::iri(5000)))
            .unwrap();
        let pi = shaped[oi]
            .props
            .iter()
            .position(|p| p.pred == Oid::iri(5000))
            .unwrap();
        assert!(edges[oi][pi].unwrap().one_to_one);
    }

    #[test]
    fn scattered_references_are_not_fks() {
        // p_ref points half to class B, half to class C -> no 0.8-dominant target.
        let p_ref = Oid::iri(5000);
        let p_b = Oid::iri(5001);
        let p_c = Oid::iri(5002);
        let mut triples = Vec::new();
        for s in 0..40u64 {
            let target = if s % 2 == 0 { 1000 + s } else { 2000 + s };
            triples.push(Triple::new(Oid::iri(s), p_ref, Oid::iri(target)));
            triples.push(Triple::new(
                Oid::iri(s),
                Oid::iri(5009),
                Oid::from_int(1).unwrap(),
            ));
        }
        for s in 0..40u64 {
            if s % 2 == 0 {
                triples.push(Triple::new(Oid::iri(1000 + s), p_b, Oid::string(s)));
            } else {
                triples.push(Triple::new(
                    Oid::iri(2000 + s),
                    p_c,
                    Oid::from_int(2).unwrap(),
                ));
            }
        }
        let (shaped, edges, _) = pipeline(&mut triples, &SchemaConfig::default());
        let (oi, _) = shaped
            .iter()
            .enumerate()
            .find(|(_, c)| c.props.iter().any(|p| p.pred == p_ref))
            .unwrap();
        let pi = shaped[oi]
            .props
            .iter()
            .position(|p| p.pred == p_ref)
            .unwrap();
        assert_eq!(edges[oi][pi], None);
    }

    #[test]
    fn references_to_literals_are_ignored() {
        let p = Oid::iri(5000);
        let mut triples: Vec<Triple> = (0..20)
            .map(|s| Triple::new(Oid::iri(s), p, Oid::from_int(s as i64).unwrap()))
            .collect();
        let (_, edges, incoming) = pipeline(&mut triples, &SchemaConfig::default());
        assert!(edges[0].iter().all(|e| e.is_none()));
        assert!(incoming.iter().all(|&n| n == 0));
    }
}
