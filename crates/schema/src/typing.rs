//! Typed properties: declare a type per column, split CS variants.
//!
//! After generalization, each class column gets a *declared type* from the
//! object-type histogram of its property. "For literal objects, we look at
//! the atomic type. In case of URI objects, we type them using initial CS
//! membership" — the FK stage handles the URI-target part; here we settle the
//! atomic tag. When a property's dominant tag is not dominant enough, the
//! class is split into **variants**, one per frequent type signature, "the
//! advantage being in faster processing of each CS variant, as the types of
//! the columns are known and homogeneous".

use crate::config::SchemaConfig;
use crate::cs::walk_sp_groups;
use crate::merge::MergedClass;
use sordf_model::{FxHashMap, Oid, Triple, TypeTag};

/// A class whose columns carry declared types. May be a variant of a merged
/// class (several `TypedClass`es can share an origin).
#[derive(Debug, Clone)]
pub struct TypedClass {
    /// Kept properties, ascending.
    pub props: Vec<Oid>,
    /// Declared type per property.
    pub col_types: Vec<TypeTag>,
    /// Subjects having each property (within this variant).
    pub presence: Vec<u64>,
    /// Member subjects.
    pub subjects: Vec<Oid>,
}

impl TypedClass {
    pub fn support(&self) -> u64 {
        self.subjects.len() as u64
    }
}

/// Per-property tag histogram.
#[derive(Default, Clone)]
struct TagHist {
    counts: [u64; 8],
}

impl TagHist {
    fn add(&mut self, tag: TypeTag, n: u64) {
        self.counts[tag as usize] += n;
    }

    fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// (dominant tag, its fraction of all counted triples).
    fn dominant(&self) -> (TypeTag, f64) {
        let (best, &n) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
            .unwrap();
        let total = self.total().max(1);
        (
            TypeTag::from_u8(best as u8).unwrap(),
            n as f64 / total as f64,
        )
    }
}

/// Majority tag within one (s, p) object group (ties → smaller tag).
fn group_majority_tag(objects: &[Oid]) -> Option<TypeTag> {
    let mut counts = [0u32; 8];
    for &o in objects {
        if !o.is_null() {
            counts[o.tag() as usize] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
        .map(|(i, _)| TypeTag::from_u8(i as u8).unwrap())
}

/// Assign declared column types and split type-incoherent classes into
/// variants. `triples_spo` must be SPO-sorted.
pub fn type_classes(
    triples_spo: &[Triple],
    merged: Vec<MergedClass>,
    cfg: &SchemaConfig,
) -> Vec<TypedClass> {
    // subject -> merged class index
    let mut assign: FxHashMap<Oid, u32> = FxHashMap::default();
    for (ci, c) in merged.iter().enumerate() {
        for &s in &c.subjects {
            assign.insert(s, ci as u32);
        }
    }
    // prop index lookup per class
    let prop_idx: Vec<FxHashMap<Oid, usize>> = merged
        .iter()
        .map(|c| c.props.iter().enumerate().map(|(i, &p)| (p, i)).collect())
        .collect();

    // Pass A: per (class, prop) tag histogram over triples.
    let mut hists: Vec<Vec<TagHist>> = merged
        .iter()
        .map(|c| vec![TagHist::default(); c.props.len()])
        .collect();
    walk_sp_groups(triples_spo, |s, p, objects| {
        let Some(&ci) = assign.get(&s) else { return };
        let Some(&pi) = prop_idx[ci as usize].get(&p) else {
            return;
        };
        for &o in objects {
            if !o.is_null() {
                hists[ci as usize][pi].add(o.tag(), 1);
            }
        }
    });

    // Dominant tag and conflict detection per class.
    let mut out: Vec<TypedClass> = Vec::new();
    for (ci, class) in merged.into_iter().enumerate() {
        let doms: Vec<(TypeTag, f64)> = hists[ci].iter().map(|h| h.dominant()).collect();
        let conflicted: Vec<usize> = doms
            .iter()
            .enumerate()
            .filter(|(_, &(_, frac))| frac + 1e-9 < cfg.type_dominance)
            .map(|(i, _)| i)
            .collect();
        if conflicted.is_empty() {
            out.push(TypedClass {
                col_types: doms.iter().map(|&(t, _)| t).collect(),
                presence: class.presence,
                props: class.props,
                subjects: class.subjects,
            });
            continue;
        }
        out.extend(split_variants(triples_spo, class, &doms, &conflicted, cfg));
    }
    out
}

/// Split one class into per-type-signature variants.
fn split_variants(
    triples_spo: &[Triple],
    class: MergedClass,
    doms: &[(TypeTag, f64)],
    conflicted: &[usize],
    cfg: &SchemaConfig,
) -> Vec<TypedClass> {
    let members: FxHashMap<Oid, ()> = class.subjects.iter().map(|&s| (s, ())).collect();
    let prop_idx: FxHashMap<Oid, usize> = class
        .props
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i))
        .collect();
    let conflict_slot: FxHashMap<usize, usize> = conflicted
        .iter()
        .enumerate()
        .map(|(slot, &pi)| (pi, slot))
        .collect();

    // Pass B: per-subject signature over conflicted props. Missing props
    // default to the dominant tag, so sparse subjects join the main variant.
    let default_sig: Vec<u8> = conflicted.iter().map(|&pi| doms[pi].0 as u8).collect();
    let mut sig_of: FxHashMap<Oid, Vec<u8>> = FxHashMap::default();
    walk_sp_groups(triples_spo, |s, p, objects| {
        if !members.contains_key(&s) {
            return;
        }
        let Some(&pi) = prop_idx.get(&p) else { return };
        let Some(&slot) = conflict_slot.get(&pi) else {
            return;
        };
        if let Some(tag) = group_majority_tag(objects) {
            sig_of.entry(s).or_insert_with(|| default_sig.clone())[slot] = tag as u8;
        }
    });

    // Group subjects by signature.
    let mut groups: FxHashMap<Vec<u8>, Vec<Oid>> = FxHashMap::default();
    for &s in &class.subjects {
        let sig = sig_of
            .get(&s)
            .cloned()
            .unwrap_or_else(|| default_sig.clone());
        groups.entry(sig).or_default().push(s);
    }
    let mut groups: Vec<(Vec<u8>, Vec<Oid>)> = groups.into_iter().collect();
    // Deterministic: biggest first, then signature bytes.
    groups.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(&b.0)));

    let min_variant = ((class.subjects.len() as f64 * cfg.variant_min_frac).ceil() as usize).max(2);
    let mut variants: Vec<(Vec<u8>, Vec<Oid>)> = Vec::new();
    let mut leftovers: Vec<Oid> = Vec::new();
    for (sig, subjects) in groups {
        if variants.is_empty() || subjects.len() >= min_variant {
            variants.push((sig, subjects));
        } else {
            leftovers.extend(subjects);
        }
    }
    // Small groups fold into the largest variant; their mismatching triples
    // become irregular exceptions at placement time.
    variants[0].1.extend(leftovers);

    // Pass C: presence per variant.
    let mut variant_of: FxHashMap<Oid, u32> = FxHashMap::default();
    for (vi, (_, subjects)) in variants.iter().enumerate() {
        for &s in subjects {
            variant_of.insert(s, vi as u32);
        }
    }
    let mut presence: Vec<Vec<u64>> = variants
        .iter()
        .map(|_| vec![0u64; class.props.len()])
        .collect();
    walk_sp_groups(triples_spo, |s, p, _objects| {
        let Some(&vi) = variant_of.get(&s) else {
            return;
        };
        if let Some(&pi) = prop_idx.get(&p) {
            presence[vi as usize][pi] += 1;
        }
    });

    variants
        .into_iter()
        .enumerate()
        .map(|(vi, (sig, subjects))| {
            let col_types = (0..class.props.len())
                .map(|pi| match conflict_slot.get(&pi) {
                    Some(&slot) => TypeTag::from_u8(sig[slot]).unwrap(),
                    None => doms[pi].0,
                })
                .collect();
            TypedClass {
                props: class.props.clone(),
                col_types,
                presence: presence[vi].clone(),
                subjects,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs::extract;
    use crate::merge::generalize;

    fn run(triples: &mut [Triple], cfg: &SchemaConfig) -> Vec<TypedClass> {
        triples.sort_by_key(|t| t.key_spo());
        let (css, _) = extract(triples);
        let merged = generalize(css, cfg);
        type_classes(triples, merged, cfg)
    }

    fn str_oid(n: u64) -> Oid {
        Oid::string(n)
    }

    #[test]
    fn homogeneous_types_pass_through() {
        let p_name = Oid::iri(100);
        let p_age = Oid::iri(101);
        let mut triples = Vec::new();
        for s in 0..20 {
            triples.push(Triple::new(Oid::iri(s), p_name, str_oid(s)));
            triples.push(Triple::new(
                Oid::iri(s),
                p_age,
                Oid::from_int(s as i64).unwrap(),
            ));
        }
        let typed = run(&mut triples, &SchemaConfig::default());
        assert_eq!(typed.len(), 1);
        assert_eq!(typed[0].col_types, vec![TypeTag::Str, TypeTag::Int]);
        assert_eq!(typed[0].presence, vec![20, 20]);
    }

    #[test]
    fn minority_type_noise_does_not_split() {
        // 95 subjects with int age, 5 with string age: dominance 0.95 >= 0.8.
        let p = Oid::iri(100);
        let mut triples = Vec::new();
        for s in 0..95 {
            triples.push(Triple::new(
                Oid::iri(s),
                p,
                Oid::from_int(s as i64).unwrap(),
            ));
        }
        for s in 95..100 {
            triples.push(Triple::new(Oid::iri(s), p, str_oid(s)));
        }
        let typed = run(&mut triples, &SchemaConfig::default());
        assert_eq!(typed.len(), 1);
        assert_eq!(typed[0].col_types, vec![TypeTag::Int]);
        assert_eq!(typed[0].support(), 100);
    }

    #[test]
    fn balanced_types_split_into_variants() {
        // 60 subjects with a date `issued`, 40 with a string `issued`.
        let p = Oid::iri(100);
        let q = Oid::iri(101); // common prop keeps them in one merged class
        let mut triples = Vec::new();
        for s in 0..60 {
            triples.push(Triple::new(
                Oid::iri(s),
                p,
                Oid::from_date_days(s as i64).unwrap(),
            ));
            triples.push(Triple::new(Oid::iri(s), q, str_oid(s)));
        }
        for s in 60..100 {
            triples.push(Triple::new(Oid::iri(s), p, str_oid(s)));
            triples.push(Triple::new(Oid::iri(s), q, str_oid(s)));
        }
        let typed = run(&mut triples, &SchemaConfig::default());
        assert_eq!(typed.len(), 2, "should split into two variants");
        let date_variant = typed
            .iter()
            .find(|t| t.col_types[0] == TypeTag::Date)
            .unwrap();
        let str_variant = typed
            .iter()
            .find(|t| t.col_types[0] == TypeTag::Str)
            .unwrap();
        assert_eq!(date_variant.support(), 60);
        assert_eq!(str_variant.support(), 40);
        // The non-conflicted column keeps its type in both variants.
        assert_eq!(date_variant.col_types[1], TypeTag::Str);
        assert_eq!(str_variant.col_types[1], TypeTag::Str);
    }

    #[test]
    fn tiny_variant_folds_into_main() {
        // 97 int vs 3 string at dominance threshold 0.99 -> conflicted, but
        // the string group (3 < 15% of 100) folds into the main variant.
        let p = Oid::iri(100);
        let mut triples = Vec::new();
        for s in 0..97 {
            triples.push(Triple::new(Oid::iri(s), p, Oid::from_int(1).unwrap()));
        }
        for s in 97..100 {
            triples.push(Triple::new(Oid::iri(s), p, str_oid(s)));
        }
        let cfg = SchemaConfig {
            type_dominance: 0.99,
            ..SchemaConfig::default()
        };
        let typed = run(&mut triples, &cfg);
        assert_eq!(typed.len(), 1);
        assert_eq!(typed[0].support(), 100);
        assert_eq!(typed[0].col_types, vec![TypeTag::Int]);
    }

    #[test]
    fn subjects_missing_conflicted_prop_join_dominant_variant() {
        let p = Oid::iri(100); // conflicted prop (only on some subjects)
        let q = Oid::iri(101);
        let mut triples = Vec::new();
        for s in 0..50 {
            triples.push(Triple::new(Oid::iri(s), p, Oid::from_int(1).unwrap()));
            triples.push(Triple::new(Oid::iri(s), q, str_oid(s)));
        }
        for s in 50..80 {
            triples.push(Triple::new(Oid::iri(s), p, str_oid(s)));
            triples.push(Triple::new(Oid::iri(s), q, str_oid(s)));
        }
        // 20 subjects with only q (missing p): should join the int variant.
        for s in 80..100 {
            triples.push(Triple::new(Oid::iri(s), q, str_oid(s)));
        }
        let cfg = SchemaConfig {
            nullable_min_presence: 0.05,
            ..SchemaConfig::default()
        };
        let typed = run(&mut triples, &cfg);
        let int_variant = typed
            .iter()
            .find(|t| t.col_types[0] == TypeTag::Int)
            .unwrap();
        assert_eq!(int_variant.support(), 70); // 50 int + 20 missing
    }
}
