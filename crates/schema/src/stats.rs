//! Per-column statistics: counts, min/max, distinct-value sketches.
//!
//! These back the engine's CS-based cardinality estimation (the paper's
//! "being unaware of structural correlations … makes it difficult to
//! estimate the join hit ratio between triple patterns").

use crate::cs::walk_sp_groups;
use crate::types::{EmergentSchema, TripleHome};
use sordf_model::{Oid, Triple};
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};

/// K-minimum-values distinct-count sketch. Inserting hashed values keeps the
/// k smallest hashes; the estimate extrapolates from the k-th smallest.
#[derive(Debug, Clone)]
pub struct KmvSketch {
    k: usize,
    /// Max-heap of the k smallest hashes seen.
    heap: BinaryHeap<u64>,
    n_inserted: u64,
    exact: std::collections::BTreeSet<u64>,
}

impl KmvSketch {
    pub fn new(k: usize) -> KmvSketch {
        KmvSketch {
            k,
            heap: BinaryHeap::new(),
            n_inserted: 0,
            exact: Default::default(),
        }
    }

    /// Insert one value.
    pub fn insert(&mut self, v: u64) {
        self.n_inserted += 1;
        // Keep an exact set while small — estimates for low cardinalities
        // must be exact for the planner's 1-1 join detection.
        if self.exact.len() <= self.k {
            self.exact.insert(v);
        }
        let mut h = sordf_model::fxhash::FxHasher::default();
        v.hash(&mut h);
        let hv = h.finish();
        if self.heap.len() < self.k {
            self.heap.push(hv);
        } else if let Some(&top) = self.heap.peek() {
            if hv < top {
                self.heap.pop();
                self.heap.push(hv);
            }
        }
    }

    /// Estimated number of distinct inserted values.
    pub fn estimate(&self) -> u64 {
        if self.exact.len() <= self.k {
            return self.exact.len() as u64;
        }
        let kth = *self.heap.peek().expect("k > 0");
        if kth == 0 {
            return self.heap.len() as u64;
        }
        // E[distinct] ≈ (k-1) * 2^64 / kth
        let est = (self.heap.len() as f64 - 1.0) * (u64::MAX as f64) / kth as f64;
        (est.round() as u64).max(self.heap.len() as u64)
    }
}

/// Fill `stats` on every column and side table of the schema.
/// `triples_spo` must be SPO-sorted.
pub fn compute_stats(schema: &mut EmergentSchema, triples_spo: &[Triple]) {
    const K: usize = 256;
    struct Acc {
        n: u64,
        min: u64,
        max: u64,
        sketch: KmvSketch,
    }
    impl Acc {
        fn new() -> Acc {
            Acc {
                n: 0,
                min: u64::MAX,
                max: 0,
                sketch: KmvSketch::new(K),
            }
        }
        fn add(&mut self, o: Oid) {
            self.n += 1;
            self.min = self.min.min(o.raw());
            self.max = self.max.max(o.raw());
            self.sketch.insert(o.raw());
        }
        fn finish(self) -> crate::types::ColStats {
            crate::types::ColStats {
                n_nonnull: self.n,
                n_distinct: self.sketch.estimate(),
                min: if self.n > 0 { Some(self.min) } else { None },
                max: if self.n > 0 { Some(self.max) } else { None },
            }
        }
    }

    let mut col_acc: Vec<Vec<Acc>> = schema
        .classes
        .iter()
        .map(|c| c.columns.iter().map(|_| Acc::new()).collect())
        .collect();
    let mut multi_acc: Vec<Vec<Acc>> = schema
        .classes
        .iter()
        .map(|c| c.multi_props.iter().map(|_| Acc::new()).collect())
        .collect();

    schema.place_triples(triples_spo, |t, home| match home {
        TripleHome::Column { class, col } => col_acc[class.0 as usize][col].add(t.o),
        TripleHome::Multi { class, mp } => multi_acc[class.0 as usize][mp].add(t.o),
        TripleHome::Irregular => {}
    });

    for (ci, accs) in col_acc.into_iter().enumerate() {
        for (coli, acc) in accs.into_iter().enumerate() {
            schema.classes[ci].columns[coli].stats = acc.finish();
        }
    }
    for (ci, accs) in multi_acc.into_iter().enumerate() {
        for (mi, acc) in accs.into_iter().enumerate() {
            schema.classes[ci].multi_props[mi].stats = acc.finish();
        }
    }
}

/// Count regular vs. total triples (the schema *coverage* metric).
pub fn coverage(schema: &EmergentSchema, triples_spo: &[Triple]) -> f64 {
    if triples_spo.is_empty() {
        return 1.0;
    }
    let mut regular = 0u64;
    schema.place_triples(triples_spo, |_, home| {
        if home != TripleHome::Irregular {
            regular += 1;
        }
    });
    regular as f64 / triples_spo.len() as f64
}

/// (Used in tests and the estimator) count subject-property groups.
pub fn n_subject_prop_groups(triples_spo: &[Triple]) -> u64 {
    let mut n = 0;
    walk_sp_groups(triples_spo, |_, _, _| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmv_exact_for_small_sets() {
        let mut sk = KmvSketch::new(64);
        for v in 0..50u64 {
            sk.insert(v);
            sk.insert(v); // duplicates
        }
        assert_eq!(sk.estimate(), 50);
    }

    #[test]
    fn kmv_approximates_large_sets() {
        let mut sk = KmvSketch::new(256);
        let n = 100_000u64;
        for v in 0..n {
            sk.insert(v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let est = sk.estimate();
        let err = (est as f64 - n as f64).abs() / n as f64;
        assert!(err < 0.2, "estimate {est} too far from {n} (err {err:.2})");
    }

    #[test]
    fn kmv_handles_empty() {
        let sk = KmvSketch::new(16);
        assert_eq!(sk.estimate(), 0);
    }
}
