//! Error type shared by model-layer operations.

use std::fmt;

/// Errors raised while parsing or encoding RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An N-Triples line could not be parsed. Carries (line number, message).
    Parse { line: usize, msg: String },
    /// A literal value falls outside the range an inlined OID can represent.
    ValueOutOfRange(String),
    /// An OID was decoded against a dictionary that does not contain it.
    UnknownOid(u64),
    /// A malformed date / dateTime lexical form.
    BadDate(String),
    /// A storage page could not be read (after retries). Carries the page
    /// number and the underlying I/O message.
    PageRead { page: u64, msg: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            ModelError::ValueOutOfRange(v) => write!(f, "value out of inlinable range: {v}"),
            ModelError::UnknownOid(o) => write!(f, "unknown OID {o:#x}"),
            ModelError::BadDate(s) => write!(f, "malformed date: {s:?}"),
            ModelError::PageRead { page, msg } => {
                write!(f, "page {page} read failed: {msg}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
