//! Dictionary encoding between RDF terms and [`Oid`]s.
//!
//! Three pools are kept: IRIs, blank nodes and string literals. All other
//! literal types inline their value into the OID payload and never touch the
//! dictionary. Pools assign indices in order of first appearance — the
//! "ParseOrder" OID assignment the paper starts from. Subject clustering
//! later *remaps* IRI indices (grouping subjects by characteristic set) and
//! sorts the string pool so that string OID order equals lexicographic
//! order; [`Dictionary::apply_iri_permutation`] and
//! [`Dictionary::sort_strings`] implement those reorganizations.

use crate::error::ModelError;
use crate::fxhash::FxHashMap;
use crate::oid::{Oid, TypeTag};
use crate::term::{Literal, Term, Value};

/// One interning pool: values are indices into `entries`.
#[derive(Debug, Default, Clone)]
struct Pool {
    entries: Vec<String>,
    index: FxHashMap<String, u64>,
}

impl Pool {
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.entries.len() as u64;
        self.entries.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }

    fn lookup(&self, s: &str) -> Option<u64> {
        self.index.get(s).copied()
    }

    fn get(&self, i: u64) -> Option<&str> {
        self.entries.get(i as usize).map(|s| s.as_str())
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Reorder entries so entry `old` moves to position `new_of_old[old]`.
    fn permute(&mut self, new_of_old: &[u64]) {
        assert_eq!(
            new_of_old.len(),
            self.entries.len(),
            "permutation size mismatch"
        );
        let mut reordered = vec![String::new(); self.entries.len()];
        for (old, s) in self.entries.drain(..).enumerate() {
            reordered[new_of_old[old] as usize] = s;
        }
        self.entries = reordered;
        self.index.clear();
        for (i, s) in self.entries.iter().enumerate() {
            self.index.insert(s.clone(), i as u64);
        }
    }
}

/// A language-tagged string literal as stored in the string pool.
/// The pool key encodes the language tag (if any) after a `\u{0}` separator,
/// which cannot occur in either component.
fn str_key(lexical: &str, lang: Option<&str>) -> String {
    match lang {
        None => lexical.to_string(),
        Some(l) => format!("{lexical}\u{0}{l}"),
    }
}

fn split_str_key(key: &str) -> (&str, Option<&str>) {
    match key.split_once('\u{0}') {
        Some((lex, lang)) => (lex, Some(lang)),
        None => (key, None),
    }
}

/// Bidirectional term ↔ OID mapping. See the [module docs](self).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    iris: Pool,
    blanks: Pool,
    strings: Pool,
}

impl Dictionary {
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Intern an IRI, returning its OID (ParseOrder assignment on first use).
    pub fn encode_iri(&mut self, iri: &str) -> Oid {
        Oid::iri(self.iris.intern(iri))
    }

    /// Intern a blank node label.
    pub fn encode_blank(&mut self, label: &str) -> Oid {
        Oid::blank(self.blanks.intern(label))
    }

    /// Encode a literal value. Inlinable types never touch the pools.
    pub fn encode_value(&mut self, v: &Value) -> Result<Oid, ModelError> {
        match v {
            Value::Str { lexical, lang } => Ok(Oid::string(
                self.strings.intern(&str_key(lexical, lang.as_deref())),
            )),
            Value::Int(i) => Oid::from_int(*i),
            Value::Decimal(u) => Oid::from_decimal_unscaled(*u),
            Value::Date(d) => Oid::from_date_days(*d),
            Value::DateTime(s) => Oid::from_datetime_secs(*s),
            Value::Bool(b) => Ok(Oid::from_bool(*b)),
        }
    }

    /// Encode any term.
    pub fn encode_term(&mut self, t: &Term) -> Result<Oid, ModelError> {
        match t {
            Term::Iri(iri) => Ok(self.encode_iri(iri)),
            Term::Blank(label) => Ok(self.encode_blank(label)),
            Term::Literal(Literal { value }) => self.encode_value(value),
        }
    }

    /// Look up an IRI without interning.
    pub fn iri_oid(&self, iri: &str) -> Option<Oid> {
        self.iris.lookup(iri).map(Oid::iri)
    }

    /// Look up a plain string literal without interning.
    pub fn string_oid(&self, lexical: &str) -> Option<Oid> {
        self.strings.lookup(lexical).map(Oid::string)
    }

    /// Look up any term without interning.
    pub fn term_oid(&self, t: &Term) -> Option<Oid> {
        match t {
            Term::Iri(iri) => self.iri_oid(iri),
            Term::Blank(label) => self.blanks.lookup(label).map(Oid::blank),
            Term::Literal(Literal { value }) => match value {
                Value::Str { lexical, lang } => self
                    .strings
                    .lookup(&str_key(lexical, lang.as_deref()))
                    .map(Oid::string),
                // Inline values encode without mutating state; reuse encode.
                other => {
                    let mut tmp = Dictionary::new();
                    tmp.encode_value(other).ok()
                }
            },
        }
    }

    /// The IRI string behind an IRI OID.
    pub fn iri_str(&self, oid: Oid) -> Result<&str, ModelError> {
        debug_assert_eq!(oid.tag(), TypeTag::Iri);
        self.iris
            .get(oid.payload())
            .ok_or(ModelError::UnknownOid(oid.raw()))
    }

    /// Decode any OID back to a term.
    pub fn decode(&self, oid: Oid) -> Result<Term, ModelError> {
        if oid.is_null() {
            return Err(ModelError::UnknownOid(oid.raw()));
        }
        let missing = || ModelError::UnknownOid(oid.raw());
        Ok(match oid.tag() {
            TypeTag::Iri => Term::Iri(
                self.iris
                    .get(oid.payload())
                    .ok_or_else(missing)?
                    .to_string(),
            ),
            TypeTag::Blank => Term::Blank(
                self.blanks
                    .get(oid.payload())
                    .ok_or_else(missing)?
                    .to_string(),
            ),
            TypeTag::Str => {
                let key = self.strings.get(oid.payload()).ok_or_else(missing)?;
                let (lex, lang) = split_str_key(key);
                Term::Literal(Literal::new(Value::Str {
                    lexical: lex.to_string(),
                    lang: lang.map(str::to_string),
                }))
            }
            TypeTag::Int => Term::Literal(Literal::new(Value::Int(oid.as_int()))),
            TypeTag::Dec => Term::Literal(Literal::new(Value::Decimal(oid.as_decimal_unscaled()))),
            TypeTag::Date => Term::Literal(Literal::new(Value::Date(oid.as_date_days()))),
            TypeTag::DateTime => {
                Term::Literal(Literal::new(Value::DateTime(oid.as_datetime_secs())))
            }
            TypeTag::Bool => Term::Literal(Literal::new(Value::Bool(oid.as_bool()))),
        })
    }

    /// Number of interned IRIs.
    pub fn n_iris(&self) -> usize {
        self.iris.len()
    }

    /// Number of interned blank nodes.
    pub fn n_blanks(&self) -> usize {
        self.blanks.len()
    }

    /// Number of interned string literals.
    pub fn n_strings(&self) -> usize {
        self.strings.len()
    }

    /// Apply a subject-clustering permutation to the IRI pool:
    /// `new_of_old[old_index] = new_index`. Every existing IRI OID `Oid::iri(i)`
    /// must afterwards be rewritten to `Oid::iri(new_of_old[i])` by the caller
    /// (the storage layer rewrites all triples).
    pub fn apply_iri_permutation(&mut self, new_of_old: &[u64]) {
        self.iris.permute(new_of_old);
    }

    /// Sort the string-literal pool lexicographically so that string OID
    /// order equals value order (enabling range predicates on string OIDs).
    /// Returns `new_of_old` mapping for the caller to rewrite stored OIDs.
    pub fn sort_strings(&mut self) -> Vec<u64> {
        let n = self.strings.len();
        let mut order: Vec<u64> = (0..n as u64).collect();
        order.sort_by(|&a, &b| {
            self.strings.entries[a as usize].cmp(&self.strings.entries[b as usize])
        });
        // order[new] = old; invert to new_of_old[old] = new.
        let mut new_of_old = vec![0u64; n];
        for (new, &old) in order.iter().enumerate() {
            new_of_old[old as usize] = new as u64;
        }
        self.strings.permute(&new_of_old);
        new_of_old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_interning_is_stable() {
        let mut d = Dictionary::new();
        let a = d.encode_iri("http://ex.org/a");
        let b = d.encode_iri("http://ex.org/b");
        let a2 = d.encode_iri("http://ex.org/a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.iri_str(a).unwrap(), "http://ex.org/a");
        assert_eq!(d.n_iris(), 2);
    }

    #[test]
    fn term_roundtrip() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://ex.org/x"),
            Term::blank("b0"),
            Term::str("hello"),
            Term::Literal(Literal::new(Value::Str {
                lexical: "bonjour".into(),
                lang: Some("fr".into()),
            })),
            Term::int(-42),
            Term::decimal_f64(13.37),
            Term::date("1996-02-29"),
            Term::literal(Value::Bool(true)),
            Term::literal(Value::DateTime(123_456_789)),
        ];
        for t in &terms {
            let oid = d.encode_term(t).unwrap();
            assert_eq!(&d.decode(oid).unwrap(), t, "roundtrip {t:?}");
        }
    }

    #[test]
    fn lang_tags_distinguish_literals() {
        let mut d = Dictionary::new();
        let plain = d
            .encode_value(&Value::Str {
                lexical: "chat".into(),
                lang: None,
            })
            .unwrap();
        let fr = d
            .encode_value(&Value::Str {
                lexical: "chat".into(),
                lang: Some("fr".into()),
            })
            .unwrap();
        assert_ne!(plain, fr);
    }

    #[test]
    fn string_sorting_orders_oids() {
        let mut d = Dictionary::new();
        let banana = d.encode_value(&Value::str("banana")).unwrap();
        let apple = d.encode_value(&Value::str("apple")).unwrap();
        let cherry = d.encode_value(&Value::str("cherry")).unwrap();
        // Parse order: banana < apple < cherry by OID, wrong lexicographically.
        assert!(banana < apple);
        let map = d.sort_strings();
        let remap = |o: Oid| Oid::string(map[o.payload() as usize]);
        let (a, b, c) = (remap(apple), remap(banana), remap(cherry));
        assert!(a < b && b < c);
        assert_eq!(d.decode(a).unwrap(), Term::str("apple"));
        assert_eq!(d.decode(c).unwrap(), Term::str("cherry"));
    }

    #[test]
    fn iri_permutation_reorders_pool() {
        let mut d = Dictionary::new();
        let x = d.encode_iri("x");
        let y = d.encode_iri("y");
        assert_eq!((x.payload(), y.payload()), (0, 1));
        d.apply_iri_permutation(&[1, 0]); // swap
        assert_eq!(d.iri_str(Oid::iri(1)).unwrap(), "x");
        assert_eq!(d.iri_str(Oid::iri(0)).unwrap(), "y");
        assert_eq!(d.iri_oid("x"), Some(Oid::iri(1)));
    }

    #[test]
    fn unknown_oid_is_an_error() {
        let d = Dictionary::new();
        assert!(d.decode(Oid::iri(99)).is_err());
        assert!(d.decode(Oid::NULL).is_err());
    }

    #[test]
    fn term_oid_does_not_intern() {
        let d = Dictionary::new();
        assert_eq!(d.term_oid(&Term::iri("nope")), None);
        assert_eq!(d.n_iris(), 0);
        // Inline literals are found without dictionary state.
        assert_eq!(d.term_oid(&Term::int(7)), Some(Oid::from_int(7).unwrap()));
    }
}
