//! Dictionary encoding between RDF terms and [`Oid`]s.
//!
//! Three pools are kept: IRIs, blank nodes and string literals. All other
//! literal types inline their value into the OID payload and never touch the
//! dictionary. Pools assign indices in order of first appearance — the
//! "ParseOrder" OID assignment the paper starts from. Subject clustering
//! later *remaps* IRI indices (grouping subjects by characteristic set) and
//! sorts the string pool so that string OID order equals lexicographic
//! order; [`Dictionary::apply_iri_permutation`] and
//! [`Dictionary::sort_strings`] implement those reorganizations.
//!
//! # Physical layout
//!
//! Each pool is split into a **frozen prefix** rebuilt at reorganization
//! time and a **concurrent append-only tail** for everything interned after
//! it:
//!
//! * The IRI/blank frozen prefix is a plain shared `Vec<String>` (IRI order
//!   is cluster order, not lexicographic — nothing to delta-encode against).
//! * The string-literal frozen prefix is **front-coded** (`FrontCoded`):
//!   the sorted run is chopped into groups of [`FC_GROUP`], each group
//!   storing its leader in full and every follower as (shared-prefix-length,
//!   suffix). Lookups binary-search the group leaders, so the sorted prefix
//!   needs *no* hash index at all — the dominant dictionary structure after
//!   a reorganization costs its compressed bytes and nothing else.
//! * The tail (`AppendTail`) is a chunked spine whose published entries
//!   never move: readers resolve OIDs **without taking any lock**, and
//!   interning appends behind a short per-pool writer lock. A reader
//!   holding a pinned dictionary snapshot therefore never blocks an
//!   interning writer and vice versa — the pool grows in place.
//!
//! Interning consequently takes `&self`: the dictionary is shared as a
//! plain `Arc` and mutated through interior mutability, with the writer
//! lock ordered *after* the store's state lock (`db_state → dict →
//! pool_shard`).

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::error::ModelError;
use crate::fxhash::FxHashMap;
use crate::oid::{Oid, TypeTag};
use crate::term::{Literal, Term, Value};

// ---- varint helpers (front-coded group framing) ----------------------------

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(bytes: &[u8], mut pos: usize) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[pos];
        pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return (v, pos);
        }
        shift += 7;
    }
}

/// Entries per front-coded group: one full leader + `FC_GROUP - 1`
/// prefix-delta followers. Small enough that positional decode (walk the
/// group) stays a handful of byte copies, large enough that the leader
/// overhead amortizes.
pub const FC_GROUP: usize = 16;

/// A frozen, sorted, front-coded string run. See the [module docs](self).
#[derive(Debug, Default, Clone)]
struct FrontCoded {
    /// Concatenated group images: leader as `varint(len) bytes`, followers
    /// as `varint(shared) varint(suffix_len) suffix_bytes`.
    arena: Arc<Vec<u8>>,
    /// Byte offset of each group image in `arena`.
    groups: Arc<Vec<u32>>,
    len: usize,
    /// Total decoded bytes (the plain `Vec<String>` cost), for ratio
    /// reporting.
    plain_bytes: u64,
}

impl FrontCoded {
    /// Build from a lexicographically sorted, duplicate-free run.
    fn build(entries: &[String]) -> FrontCoded {
        debug_assert!(entries.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        let mut arena = Vec::new();
        let mut groups = Vec::with_capacity(entries.len().div_ceil(FC_GROUP));
        for chunk in entries.chunks(FC_GROUP) {
            assert!(
                arena.len() <= u32::MAX as usize,
                "front-coded arena overflow"
            );
            groups.push(arena.len() as u32);
            let leader = chunk[0].as_bytes();
            write_varint(&mut arena, leader.len() as u64);
            arena.extend_from_slice(leader);
            let mut prev = leader;
            for e in &chunk[1..] {
                let e = e.as_bytes();
                let shared = prev.iter().zip(e).take_while(|(a, b)| a == b).count();
                write_varint(&mut arena, shared as u64);
                write_varint(&mut arena, (e.len() - shared) as u64);
                arena.extend_from_slice(&e[shared..]);
                prev = e;
            }
        }
        FrontCoded {
            arena: Arc::new(arena),
            groups: Arc::new(groups),
            len: entries.len(),
            plain_bytes: entries.iter().map(|e| e.len() as u64).sum(),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// The group leader, borrowed straight from the arena (stored verbatim).
    fn leader(&self, g: usize) -> &str {
        let (len, pos) = read_varint(&self.arena, self.groups[g] as usize);
        std::str::from_utf8(&self.arena[pos..pos + len as usize])
            .expect("front-coded leader is the original UTF-8 string")
    }

    /// Positional decode: walk the group up to entry `i`.
    fn get(&self, i: usize) -> Option<Cow<'_, str>> {
        if i >= self.len {
            return None;
        }
        let (g, r) = (i / FC_GROUP, i % FC_GROUP);
        let (len, mut pos) = read_varint(&self.arena, self.groups[g] as usize);
        let leader = &self.arena[pos..pos + len as usize];
        pos += len as usize;
        if r == 0 {
            let s = std::str::from_utf8(leader)
                .expect("front-coded leader is the original UTF-8 string");
            return Some(Cow::Borrowed(s));
        }
        let mut cur = leader.to_vec();
        for _ in 0..r {
            let (shared, p) = read_varint(&self.arena, pos);
            let (slen, p) = read_varint(&self.arena, p);
            cur.truncate(shared as usize);
            cur.extend_from_slice(&self.arena[p..p + slen as usize]);
            pos = p + slen as usize;
        }
        let s = String::from_utf8(cur)
            .expect("front-coded deltas reconstruct the original UTF-8 string");
        Some(Cow::Owned(s))
    }

    /// Binary search the sorted run: group leaders first, then a linear
    /// delta walk inside the one candidate group.
    fn search(&self, key: &str) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        // First group whose leader is > key; the candidate group precedes it.
        let g = self.groups.len()
            - (0..self.groups.len())
                .rev()
                .take_while(|&g| self.leader(g) > key)
                .count();
        // (partition_point over an index range — spelled out because the
        // leaders are decoded, not stored in a sliceable array)
        let mut lo = 0usize;
        let mut hi = g;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.leader(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            return None;
        }
        let g = lo - 1;
        let (len, mut pos) = read_varint(&self.arena, self.groups[g] as usize);
        let leader = &self.arena[pos..pos + len as usize];
        pos += len as usize;
        if leader == key.as_bytes() {
            return Some((g * FC_GROUP) as u64);
        }
        let in_group = (self.len - g * FC_GROUP).min(FC_GROUP);
        let mut cur = leader.to_vec();
        for r in 1..in_group {
            let (shared, p) = read_varint(&self.arena, pos);
            let (slen, p) = read_varint(&self.arena, p);
            cur.truncate(shared as usize);
            cur.extend_from_slice(&self.arena[p..p + slen as usize]);
            pos = p + slen as usize;
            // The run is sorted: stop as soon as we pass the key.
            match cur.as_slice().cmp(key.as_bytes()) {
                std::cmp::Ordering::Equal => return Some((g * FC_GROUP + r) as u64),
                std::cmp::Ordering::Greater => return None,
                std::cmp::Ordering::Less => {}
            }
        }
        None
    }

    /// Resident bytes of the encoded image.
    fn encoded_bytes(&self) -> u64 {
        (self.arena.len() + self.groups.len() * std::mem::size_of::<u32>()) as u64
    }
}

// ---- the concurrent append tail --------------------------------------------

/// Chunk-doubling spine: chunk `k` holds `TAIL_FIRST << k` slots, so entries
/// never move once published and 40 chunks cover ~7·10¹³ entries.
const TAIL_FIRST: usize = 64;
const TAIL_SPINE: usize = 40;

/// Append-only string storage with lock-free readers. Writers must be
/// externally serialized (the owning pool's writer lock); readers only need
/// `&self` and never block. See the [module docs](self).
struct AppendTail {
    spine: [OnceLock<Box<[OnceLock<String>]>>; TAIL_SPINE],
    /// Entries `< published` are fully written and immutable.
    published: AtomicU64,
}

impl Default for AppendTail {
    fn default() -> AppendTail {
        AppendTail {
            spine: std::array::from_fn(|_| OnceLock::new()),
            published: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for AppendTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppendTail")
            .field("len", &self.len())
            .finish()
    }
}

impl Clone for AppendTail {
    fn clone(&self) -> AppendTail {
        let out = AppendTail::default();
        for t in 0..self.len() {
            // The source entry below `published` is immutable; the clone is
            // exclusively owned here, satisfying push's writer contract.
            if let Some(s) = self.get(t) {
                out.push(s.to_string());
            }
        }
        out
    }
}

impl AppendTail {
    fn locate(t: u64) -> (usize, usize) {
        let n = t / TAIL_FIRST as u64 + 1;
        let k = (u64::BITS - 1 - n.leading_zeros()) as usize;
        let start = TAIL_FIRST as u64 * ((1u64 << k) - 1);
        (k, (t - start) as usize)
    }

    fn len(&self) -> u64 {
        // ordering: Acquire — pairs with the Release in `push`; any entry
        // below the loaded count is fully initialized.
        self.published.load(Ordering::Acquire)
    }

    fn get(&self, t: u64) -> Option<&str> {
        // ordering: Acquire — pairs with the Release in `push`; the bound
        // guarantees the chunk and slot reads below see initialized data.
        if t >= self.published.load(Ordering::Acquire) {
            return None;
        }
        let (k, off) = Self::locate(t);
        self.spine[k]
            .get()
            .and_then(|c| c[off].get())
            .map(String::as_str)
    }

    /// Append one entry, returning its tail index. Callers must hold the
    /// pool's writer lock — `push` assumes it is the only writer.
    fn push(&self, s: String) -> u64 {
        // ordering: Relaxed — the pool writer lock serializes all pushes;
        // this thread either published the current count itself or observed
        // it through the lock's critical section.
        let t = self.published.load(Ordering::Relaxed);
        let (k, off) = Self::locate(t);
        let chunk = self.spine[k].get_or_init(|| {
            (0..TAIL_FIRST << k)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        let set = chunk[off].set(s);
        debug_assert!(set.is_ok(), "tail slot {t} written twice");
        // ordering: Release — publishes the entry written above to readers
        // that Acquire-load a count > t.
        self.published.store(t + 1, Ordering::Release);
        t
    }

    /// Approximate resident bytes: entry content plus slot overhead of the
    /// allocated chunks.
    fn approx_bytes(&self) -> u64 {
        let mut b = 0u64;
        for t in 0..self.len() {
            if let Some(s) = self.get(t) {
                b += s.len() as u64;
            }
        }
        for (k, slot) in self.spine.iter().enumerate() {
            if slot.get().is_some() {
                b += ((TAIL_FIRST << k) * std::mem::size_of::<OnceLock<String>>()) as u64;
            }
        }
        b
    }
}

// ---- pools -----------------------------------------------------------------

/// Rough per-entry overhead of the hash index (key heap bytes are counted
/// separately): hash + index + bucket slack.
const INDEX_ENTRY_OVERHEAD: u64 = 24;

/// An interning pool whose frozen prefix is a plain shared vector (IRIs,
/// blank nodes — order is cluster order, so every lookup needs the hash
/// index anyway).
#[derive(Debug)]
struct Pool {
    frozen: Arc<Vec<String>>,
    tail: AppendTail,
    /// `entry -> index` over frozen *and* tail entries. Writer lock for
    /// interning; plain reads for lookups.
    index: RwLock<FxHashMap<String, u64>>,
}

impl Default for Pool {
    fn default() -> Pool {
        Pool {
            frozen: Arc::new(Vec::new()),
            tail: AppendTail::default(),
            index: RwLock::new(FxHashMap::default()),
        }
    }
}

impl Clone for Pool {
    fn clone(&self) -> Pool {
        // Locking the index excludes interning writers, so `tail` and the
        // map are cloned as one coherent snapshot.
        // lock-order: acquires(pool_shard)
        let index = self.index.read();
        Pool {
            frozen: Arc::clone(&self.frozen),
            tail: self.tail.clone(),
            index: RwLock::new(index.clone()),
        }
    }
}

impl Pool {
    /// Intern with `&self`: the writer lock covers the map insert and the
    /// tail publish; readers resolve published indices without any lock.
    // lock-order: acquires(pool_shard)
    fn intern(&self, s: &str) -> u64 {
        if let Some(&i) = self.index.read().get(s) {
            return i;
        }
        let mut index = self.index.write();
        if let Some(&i) = index.get(s) {
            return i;
        }
        let i = self.frozen.len() as u64 + self.tail.push(s.to_string());
        index.insert(s.to_string(), i);
        i
    }

    // lock-order: acquires(pool_shard)
    fn lookup(&self, s: &str) -> Option<u64> {
        self.index.read().get(s).copied()
    }

    /// Lock-free decode.
    fn get(&self, i: u64) -> Option<&str> {
        let f = self.frozen.len() as u64;
        if i < f {
            Some(self.frozen[i as usize].as_str())
        } else {
            self.tail.get(i - f)
        }
    }

    fn len(&self) -> usize {
        self.frozen.len() + self.tail.len() as usize
    }

    /// Reorder entries so entry `old` moves to position `new_of_old[old]`,
    /// folding the tail into a fresh frozen prefix.
    fn permute(&mut self, new_of_old: &[u64]) {
        let n = self.len();
        assert_eq!(new_of_old.len(), n, "permutation size mismatch");
        let mut reordered = vec![String::new(); n];
        for old in 0..n {
            // sordf-lint: allow(L3) — old < len, so the entry exists.
            let s = self.get(old as u64).expect("entry below len").to_string();
            reordered[new_of_old[old] as usize] = s;
        }
        let index = self.index.get_mut();
        index.clear();
        for (i, s) in reordered.iter().enumerate() {
            index.insert(s.clone(), i as u64);
        }
        self.frozen = Arc::new(reordered);
        self.tail = AppendTail::default();
    }

    /// Approximate resident bytes: entry content (counted twice — pool +
    /// index key) plus vector and index overhead.
    fn approx_bytes(&self) -> u64 {
        let frozen: u64 = self
            .frozen
            .iter()
            .map(|s| (s.len() + std::mem::size_of::<String>()) as u64)
            .sum();
        // lock-order: acquires(pool_shard)
        let index = self.index.read();
        let idx: u64 = index
            .keys()
            .map(|k| k.len() as u64 + INDEX_ENTRY_OVERHEAD)
            .sum();
        frozen + self.tail.approx_bytes() + idx
    }
}

/// The string-literal pool: the frozen prefix is sorted and front-coded, so
/// it is searched by binary search and carries **no** hash-index entries —
/// only tail strings (interned since the last sort) are hash-indexed.
#[derive(Debug, Default)]
struct StrPool {
    frozen: FrontCoded,
    tail: AppendTail,
    /// `entry -> index` over *tail* entries only.
    index: RwLock<FxHashMap<String, u64>>,
}

impl Clone for StrPool {
    fn clone(&self) -> StrPool {
        // lock-order: acquires(pool_shard)
        let index = self.index.read();
        StrPool {
            frozen: self.frozen.clone(),
            tail: self.tail.clone(),
            index: RwLock::new(index.clone()),
        }
    }
}

impl StrPool {
    // lock-order: acquires(pool_shard)
    fn intern(&self, s: &str) -> u64 {
        if let Some(i) = self.frozen.search(s) {
            return i;
        }
        if let Some(&i) = self.index.read().get(s) {
            return i;
        }
        let mut index = self.index.write();
        if let Some(&i) = index.get(s) {
            return i;
        }
        let i = self.frozen.len() as u64 + self.tail.push(s.to_string());
        index.insert(s.to_string(), i);
        i
    }

    // lock-order: acquires(pool_shard)
    fn lookup(&self, s: &str) -> Option<u64> {
        self.frozen
            .search(s)
            .or_else(|| self.index.read().get(s).copied())
    }

    /// Lock-free decode. Front-coded followers reconstruct (allocate); group
    /// leaders and tail entries borrow.
    fn get(&self, i: u64) -> Option<Cow<'_, str>> {
        let f = self.frozen.len() as u64;
        if i < f {
            self.frozen.get(i as usize)
        } else {
            self.tail.get(i - f).map(Cow::Borrowed)
        }
    }

    fn len(&self) -> usize {
        self.frozen.len() + self.tail.len() as usize
    }

    /// Sort all entries lexicographically and rebuild the frozen prefix
    /// front-coded; returns `new_of_old`.
    fn rebuild_sorted(&mut self) -> Vec<u64> {
        let n = self.len();
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            // sordf-lint: allow(L3) — i < len, so the entry exists.
            entries.push(self.get(i as u64).expect("entry below len").into_owned());
        }
        let mut order: Vec<u64> = (0..n as u64).collect();
        order.sort_unstable_by(|&a, &b| entries[a as usize].cmp(&entries[b as usize]));
        let mut new_of_old = vec![0u64; n];
        for (new, &old) in order.iter().enumerate() {
            new_of_old[old as usize] = new as u64;
        }
        let sorted: Vec<String> = order
            .iter()
            .map(|&old| std::mem::take(&mut entries[old as usize]))
            .collect();
        self.frozen = FrontCoded::build(&sorted);
        self.tail = AppendTail::default();
        *self.index.get_mut() = FxHashMap::default();
        new_of_old
    }

    fn approx_bytes(&self) -> u64 {
        // lock-order: acquires(pool_shard)
        let index = self.index.read();
        let idx: u64 = index
            .keys()
            .map(|k| k.len() as u64 + INDEX_ENTRY_OVERHEAD)
            .sum();
        self.frozen.encoded_bytes() + self.tail.approx_bytes() + idx
    }
}

/// A language-tagged string literal as stored in the string pool.
/// The pool key encodes the language tag (if any) after a `\u{0}` separator,
/// which cannot occur in either component.
fn str_key(lexical: &str, lang: Option<&str>) -> String {
    match lang {
        None => lexical.to_string(),
        Some(l) => format!("{lexical}\u{0}{l}"),
    }
}

fn split_str_key(key: &str) -> (&str, Option<&str>) {
    match key.split_once('\u{0}') {
        Some((lex, lang)) => (lex, Some(lang)),
        None => (key, None),
    }
}

/// Per-pool resident-byte accounting (approximate: hash-index overhead is
/// estimated, allocator slack is not counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DictMemory {
    pub iris: u64,
    pub blanks: u64,
    pub strings: u64,
}

impl DictMemory {
    pub fn total(&self) -> u64 {
        self.iris + self.blanks + self.strings
    }
}

/// Bidirectional term ↔ OID mapping. See the [module docs](self).
///
/// Interning takes `&self` — the dictionary is designed to be shared via
/// `Arc` and grown in place while readers hold clones of that `Arc`; an OID
/// a reader resolved once stays resolvable forever (pools are append-only
/// between the explicit reorganization calls, which take `&mut self`).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    iris: Pool,
    blanks: Pool,
    strings: StrPool,
}

impl Dictionary {
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Intern an IRI, returning its OID (ParseOrder assignment on first use).
    pub fn encode_iri(&self, iri: &str) -> Oid {
        Oid::iri(self.iris.intern(iri))
    }

    /// Intern a blank node label.
    pub fn encode_blank(&self, label: &str) -> Oid {
        Oid::blank(self.blanks.intern(label))
    }

    /// Encode a literal value. Inlinable types never touch the pools.
    pub fn encode_value(&self, v: &Value) -> Result<Oid, ModelError> {
        match v {
            Value::Str { lexical, lang } => Ok(Oid::string(
                self.strings.intern(&str_key(lexical, lang.as_deref())),
            )),
            Value::Int(i) => Oid::from_int(*i),
            Value::Decimal(u) => Oid::from_decimal_unscaled(*u),
            Value::Date(d) => Oid::from_date_days(*d),
            Value::DateTime(s) => Oid::from_datetime_secs(*s),
            Value::Bool(b) => Ok(Oid::from_bool(*b)),
        }
    }

    /// Encode any term.
    pub fn encode_term(&self, t: &Term) -> Result<Oid, ModelError> {
        match t {
            Term::Iri(iri) => Ok(self.encode_iri(iri)),
            Term::Blank(label) => Ok(self.encode_blank(label)),
            Term::Literal(Literal { value }) => self.encode_value(value),
        }
    }

    /// Look up an IRI without interning.
    pub fn iri_oid(&self, iri: &str) -> Option<Oid> {
        self.iris.lookup(iri).map(Oid::iri)
    }

    /// Look up a plain string literal without interning.
    pub fn string_oid(&self, lexical: &str) -> Option<Oid> {
        self.strings.lookup(lexical).map(Oid::string)
    }

    /// Look up any term without interning.
    pub fn term_oid(&self, t: &Term) -> Option<Oid> {
        match t {
            Term::Iri(iri) => self.iri_oid(iri),
            Term::Blank(label) => self.blanks.lookup(label).map(Oid::blank),
            Term::Literal(Literal { value }) => match value {
                Value::Str { lexical, lang } => self
                    .strings
                    .lookup(&str_key(lexical, lang.as_deref()))
                    .map(Oid::string),
                // Inline values encode without dictionary state.
                other => Dictionary::new().encode_value(other).ok(),
            },
        }
    }

    /// The IRI string behind an IRI OID.
    pub fn iri_str(&self, oid: Oid) -> Result<&str, ModelError> {
        debug_assert_eq!(oid.tag(), TypeTag::Iri);
        self.iris
            .get(oid.payload())
            .ok_or(ModelError::UnknownOid(oid.raw()))
    }

    /// Decode any OID back to a term.
    pub fn decode(&self, oid: Oid) -> Result<Term, ModelError> {
        if oid.is_null() {
            return Err(ModelError::UnknownOid(oid.raw()));
        }
        let missing = || ModelError::UnknownOid(oid.raw());
        Ok(match oid.tag() {
            TypeTag::Iri => Term::Iri(
                self.iris
                    .get(oid.payload())
                    .ok_or_else(missing)?
                    .to_string(),
            ),
            TypeTag::Blank => Term::Blank(
                self.blanks
                    .get(oid.payload())
                    .ok_or_else(missing)?
                    .to_string(),
            ),
            TypeTag::Str => {
                let key = self.strings.get(oid.payload()).ok_or_else(missing)?;
                let (lex, lang) = split_str_key(&key);
                Term::Literal(Literal::new(Value::Str {
                    lexical: lex.to_string(),
                    lang: lang.map(str::to_string),
                }))
            }
            TypeTag::Int => Term::Literal(Literal::new(Value::Int(oid.as_int()))),
            TypeTag::Dec => Term::Literal(Literal::new(Value::Decimal(oid.as_decimal_unscaled()))),
            TypeTag::Date => Term::Literal(Literal::new(Value::Date(oid.as_date_days()))),
            TypeTag::DateTime => {
                Term::Literal(Literal::new(Value::DateTime(oid.as_datetime_secs())))
            }
            TypeTag::Bool => Term::Literal(Literal::new(Value::Bool(oid.as_bool()))),
        })
    }

    /// Number of interned IRIs.
    pub fn n_iris(&self) -> usize {
        self.iris.len()
    }

    /// Number of interned blank nodes.
    pub fn n_blanks(&self) -> usize {
        self.blanks.len()
    }

    /// Number of interned string literals.
    pub fn n_strings(&self) -> usize {
        self.strings.len()
    }

    /// Approximate resident bytes per pool (see [`DictMemory`]).
    pub fn approx_bytes(&self) -> DictMemory {
        DictMemory {
            iris: self.iris.approx_bytes(),
            blanks: self.blanks.approx_bytes(),
            strings: self.strings.approx_bytes(),
        }
    }

    /// `(encoded, plain)` resident bytes of the front-coded (frozen) string
    /// run — the dictionary-side compression ratio the benches report.
    /// `(0, 0)` before the first [`Dictionary::sort_strings`].
    pub fn string_front_coding_bytes(&self) -> (u64, u64) {
        (
            self.strings.frozen.encoded_bytes(),
            self.strings.frozen.plain_bytes,
        )
    }

    /// Apply a subject-clustering permutation to the IRI pool:
    /// `new_of_old[old_index] = new_index`. Every existing IRI OID `Oid::iri(i)`
    /// must afterwards be rewritten to `Oid::iri(new_of_old[i])` by the caller
    /// (the storage layer rewrites all triples).
    pub fn apply_iri_permutation(&mut self, new_of_old: &[u64]) {
        self.iris.permute(new_of_old);
    }

    /// Sort the string-literal pool lexicographically so that string OID
    /// order equals value order (enabling range predicates on string OIDs),
    /// rebuilding it front-coded. Returns `new_of_old` for the caller to
    /// rewrite stored OIDs.
    pub fn sort_strings(&mut self) -> Vec<u64> {
        self.strings.rebuild_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_interning_is_stable() {
        let d = Dictionary::new();
        let a = d.encode_iri("http://ex.org/a");
        let b = d.encode_iri("http://ex.org/b");
        let a2 = d.encode_iri("http://ex.org/a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.iri_str(a).unwrap(), "http://ex.org/a");
        assert_eq!(d.n_iris(), 2);
    }

    #[test]
    fn term_roundtrip() {
        let d = Dictionary::new();
        let terms = [
            Term::iri("http://ex.org/x"),
            Term::blank("b0"),
            Term::str("hello"),
            Term::Literal(Literal::new(Value::Str {
                lexical: "bonjour".into(),
                lang: Some("fr".into()),
            })),
            Term::int(-42),
            Term::decimal_f64(13.37),
            Term::date("1996-02-29"),
            Term::literal(Value::Bool(true)),
            Term::literal(Value::DateTime(123_456_789)),
        ];
        for t in &terms {
            let oid = d.encode_term(t).unwrap();
            assert_eq!(&d.decode(oid).unwrap(), t, "roundtrip {t:?}");
        }
    }

    #[test]
    fn lang_tags_distinguish_literals() {
        let d = Dictionary::new();
        let plain = d
            .encode_value(&Value::Str {
                lexical: "chat".into(),
                lang: None,
            })
            .unwrap();
        let fr = d
            .encode_value(&Value::Str {
                lexical: "chat".into(),
                lang: Some("fr".into()),
            })
            .unwrap();
        assert_ne!(plain, fr);
    }

    #[test]
    fn string_sorting_orders_oids() {
        let mut d = Dictionary::new();
        let banana = d.encode_value(&Value::str("banana")).unwrap();
        let apple = d.encode_value(&Value::str("apple")).unwrap();
        let cherry = d.encode_value(&Value::str("cherry")).unwrap();
        // Parse order: banana < apple < cherry by OID, wrong lexicographically.
        assert!(banana < apple);
        let map = d.sort_strings();
        let remap = |o: Oid| Oid::string(map[o.payload() as usize]);
        let (a, b, c) = (remap(apple), remap(banana), remap(cherry));
        assert!(a < b && b < c);
        assert_eq!(d.decode(a).unwrap(), Term::str("apple"));
        assert_eq!(d.decode(c).unwrap(), Term::str("cherry"));
    }

    #[test]
    fn iri_permutation_reorders_pool() {
        let mut d = Dictionary::new();
        let x = d.encode_iri("x");
        let y = d.encode_iri("y");
        assert_eq!((x.payload(), y.payload()), (0, 1));
        d.apply_iri_permutation(&[1, 0]); // swap
        assert_eq!(d.iri_str(Oid::iri(1)).unwrap(), "x");
        assert_eq!(d.iri_str(Oid::iri(0)).unwrap(), "y");
        assert_eq!(d.iri_oid("x"), Some(Oid::iri(1)));
    }

    #[test]
    fn unknown_oid_is_an_error() {
        let d = Dictionary::new();
        assert!(d.decode(Oid::iri(99)).is_err());
        assert!(d.decode(Oid::NULL).is_err());
    }

    #[test]
    fn term_oid_does_not_intern() {
        let d = Dictionary::new();
        assert_eq!(d.term_oid(&Term::iri("nope")), None);
        assert_eq!(d.n_iris(), 0);
        // Inline literals are found without dictionary state.
        assert_eq!(d.term_oid(&Term::int(7)), Some(Oid::from_int(7).unwrap()));
    }

    #[test]
    fn front_coding_roundtrips_and_searches() {
        // Multiple groups, shared prefixes, a leader-only last group.
        let entries: Vec<String> = (0..FC_GROUP * 3 + 1)
            .map(|i| format!("http://example.org/entity/node{i:05}"))
            .collect();
        let mut sorted = entries.clone();
        sorted.sort();
        let fc = FrontCoded::build(&sorted);
        assert_eq!(fc.len(), sorted.len());
        for (i, e) in sorted.iter().enumerate() {
            assert_eq!(fc.get(i).unwrap().as_ref(), e, "decode {i}");
            assert_eq!(fc.search(e), Some(i as u64), "search {e}");
        }
        assert_eq!(fc.search("http://example.org/aaa"), None);
        assert_eq!(fc.search("zzz"), None);
        assert_eq!(fc.search(""), None);
        assert!(fc.get(sorted.len()).is_none());
        // Shared prefixes compress: the encoded image is smaller than plain.
        assert!(fc.encoded_bytes() < fc.plain_bytes);
    }

    #[test]
    fn front_coded_pool_still_interns_after_sort() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            d.encode_value(&Value::str(format!("value-{i:03}")))
                .unwrap();
        }
        d.sort_strings();
        // Known strings resolve through the front-coded run, not the tail.
        let o = d.string_oid("value-042").unwrap();
        assert_eq!(d.decode(o).unwrap(), Term::str("value-042"));
        // New strings land in the tail and resolve too.
        let n = d.encode_value(&Value::str("aaa-new")).unwrap();
        assert_eq!(d.decode(n).unwrap(), Term::str("aaa-new"));
        assert_eq!(d.encode_value(&Value::str("aaa-new")).unwrap(), n);
        assert_eq!(d.n_strings(), 101);
        let (enc, plain) = d.string_front_coding_bytes();
        assert!(
            enc > 0 && enc < plain,
            "front coding shrinks ({enc} vs {plain})"
        );
    }

    #[test]
    fn append_tail_chunk_boundaries() {
        let tail = AppendTail::default();
        // Cross the first two chunk boundaries (64, 192).
        for i in 0..300u64 {
            assert_eq!(tail.push(format!("e{i}")), i);
        }
        assert_eq!(tail.len(), 300);
        for i in 0..300u64 {
            assert_eq!(tail.get(i), Some(format!("e{i}").as_str()));
        }
        assert_eq!(tail.get(300), None);
    }

    #[test]
    fn shared_interning_is_concurrent() {
        // Interning through a shared Arc: readers decode while writers
        // intern; no locks are held across the API boundary.
        let d = Arc::new(Dictionary::new());
        let base = d.encode_iri("http://ex.org/base");
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let oid = d.encode_iri(&format!("http://ex.org/t{}/{}", t, i % 50));
                        assert!(d.iri_str(oid).is_ok());
                        assert_eq!(d.iri_str(base).unwrap(), "http://ex.org/base");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 4 threads × 50 distinct + base.
        assert_eq!(d.n_iris(), 201);
    }

    #[test]
    fn dict_memory_accounting_is_positive() {
        let mut d = Dictionary::new();
        d.encode_iri("http://ex.org/a");
        d.encode_blank("b0");
        d.encode_value(&Value::str("hello")).unwrap();
        let m = d.approx_bytes();
        assert!(m.iris > 0 && m.blanks > 0 && m.strings > 0);
        assert_eq!(m.total(), m.iris + m.blanks + m.strings);
        // Sorting shrinks the string pool: the hash index over the frozen
        // run disappears entirely.
        let before = d.approx_bytes().strings;
        d.sort_strings();
        assert!(d.approx_bytes().strings < before);
    }
}
