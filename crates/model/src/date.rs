//! Proleptic-Gregorian date arithmetic and XSD lexical forms.
//!
//! Dates are represented as **days since 1970-01-01** (may be negative),
//! dateTimes as **seconds since the epoch**. Both therefore inline into
//! order-preserving OID payloads. The civil-from-days / days-from-civil
//! algorithms are Howard Hinnant's public-domain ones.

use crate::error::ModelError;

/// Days since 1970-01-01 for the given civil date.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date (year, month, day) for the given days-since-epoch.
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Parse an `xsd:date` lexical form `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(s: &str) -> Result<i64, ModelError> {
    let bad = || ModelError::BadDate(s.to_string());
    let (ystr, rest) = s.split_once('-').ok_or_else(bad)?;
    let (mstr, dstr) = rest.split_once('-').ok_or_else(bad)?;
    let year: i32 = ystr.parse().map_err(|_| bad())?;
    let month: u32 = mstr.parse().map_err(|_| bad())?;
    let day: u32 = dstr.parse().map_err(|_| bad())?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(bad());
    }
    Ok(days_from_civil(year, month, day))
}

/// Render days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i64) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parse an `xsd:dateTime` form `YYYY-MM-DDThh:mm:ss[Z]` into epoch seconds.
pub fn parse_datetime(s: &str) -> Result<i64, ModelError> {
    let bad = || ModelError::BadDate(s.to_string());
    let (date, time) = s.split_once('T').ok_or_else(bad)?;
    let days = parse_date(date)?;
    let time = time.trim_end_matches('Z');
    let mut parts = time.split(':');
    let h: i64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let mi: i64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let sec: f64 = parts.next().unwrap_or("0").parse().map_err(|_| bad())?;
    if parts.next().is_some() || h > 23 || mi > 59 || sec >= 61.0 {
        return Err(bad());
    }
    Ok(days * 86_400 + h * 3_600 + mi * 60 + sec as i64)
}

/// Render epoch seconds as `YYYY-MM-DDThh:mm:ssZ`.
pub fn format_datetime(secs: i64) -> String {
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (h, mi, s) = (rem / 3_600, (rem % 3_600) / 60, rem % 60);
    format!("{}T{h:02}:{mi:02}:{s:02}Z", format_date(days))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn roundtrip_known_dates() {
        for (y, m, d) in [
            (1992, 1, 1),
            (1996, 2, 29),
            (1998, 12, 31),
            (2000, 2, 29),
            (1900, 3, 1),
            (2038, 1, 19),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "date {y}-{m}-{d}");
        }
    }

    #[test]
    fn parse_and_format() {
        let d = parse_date("1996-07-04").unwrap();
        assert_eq!(format_date(d), "1996-07-04");
        assert!(parse_date("1996-13-04").is_err());
        assert!(parse_date("oops").is_err());
    }

    #[test]
    fn ordering_matches_calendar() {
        assert!(parse_date("1994-01-01").unwrap() < parse_date("1994-01-02").unwrap());
        assert!(parse_date("1994-12-31").unwrap() < parse_date("1995-01-01").unwrap());
    }

    #[test]
    fn datetime_roundtrip() {
        let t = parse_datetime("1996-07-04T12:34:56Z").unwrap();
        assert_eq!(format_datetime(t), "1996-07-04T12:34:56Z");
        assert!(parse_datetime("1996-07-04").is_err());
    }

    #[test]
    fn tpch_date_range_is_small() {
        // TPC-H dates span 1992-01-01 .. 1998-12-31; well within inline range.
        let lo = parse_date("1992-01-01").unwrap();
        let hi = parse_date("1998-12-31").unwrap();
        assert!(lo > 8000 && hi < 11000);
    }
}
