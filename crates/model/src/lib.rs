//! # sordf-model
//!
//! The RDF data model substrate for the `sordf` self-organizing RDF store.
//!
//! This crate provides everything the storage and query layers need to talk
//! about RDF data without caring how it is physically stored:
//!
//! * [`Term`] / [`Literal`] — parsed RDF terms with typed literal values.
//! * [`Oid`] — 64-bit *tagged* object identifiers. Values of "inlinable"
//!   types (integers, decimals, dates, datetimes, booleans) are encoded
//!   directly into the OID payload in an **order-preserving** way, so that
//!   comparing OIDs of the same type compares the underlying values. This is
//!   the paper's requirement that "O OIDs used for literals should be ordered
//!   in a way that is meaningful to SPARQL value comparison semantics".
//! * [`Dictionary`] — bidirectional mapping between IRIs / strings and OIDs,
//!   with support for the *remapping* that subject clustering performs.
//! * [`ntriples`] — a line-oriented N-Triples parser and writer.
//!
//! The crate is deliberately free of I/O and storage concerns; it is the
//! vocabulary shared by every other crate in the workspace.

pub mod date;
pub mod dict;
pub mod error;
pub mod fxhash;
pub mod ntriples;
pub mod oid;
pub mod term;
pub mod triple;

pub use dict::{DictMemory, Dictionary};
pub use error::ModelError;
pub use fxhash::{FxHashMap, FxHashSet};
pub use oid::{Oid, TypeTag};
pub use term::{Literal, Term, Value};
pub use triple::{TermTriple, Triple};

/// Commonly used XSD / RDF vocabulary IRIs.
pub mod vocab {
    /// `rdf:type` — the predicate that names a subject's class.
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const XSD_DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    pub const XSD_DATETIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
}
