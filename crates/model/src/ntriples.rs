//! Line-oriented N-Triples parser and writer.
//!
//! Supports the subset of N-Triples needed for real-world RDF dumps:
//! IRIs in angle brackets, `_:` blank nodes, plain / language-tagged /
//! datatyped literals with the usual string escapes, `#` comments and blank
//! lines. Typed literals whose datatype the model understands (`xsd:integer`,
//! `decimal`, `double`, `date`, `dateTime`, `boolean`) are normalized into
//! typed [`Value`]s; any other datatype degrades to a plain string, which is
//! what the paper's schema-typing step would classify it as anyway.

use crate::date;
use crate::error::ModelError;
use crate::term::{parse_decimal, Term, Value};
use crate::triple::TermTriple;
use crate::vocab;
use std::io::{BufRead, Write};

/// Parse a full N-Triples document, returning all triples.
pub fn parse_document(text: &str) -> Result<Vec<TermTriple>, ModelError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if let Some(t) = parse_line(line, lineno + 1)? {
            out.push(t);
        }
    }
    Ok(out)
}

/// Parse from any buffered reader (streaming, one line at a time).
pub fn parse_reader<R: BufRead>(reader: R) -> Result<Vec<TermTriple>, ModelError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ModelError::Parse {
            line: lineno + 1,
            msg: e.to_string(),
        })?;
        if let Some(t) = parse_line(&line, lineno + 1)? {
            out.push(t);
        }
    }
    Ok(out)
}

/// Parse one line. Returns `None` for comments and blank lines.
pub fn parse_line(line: &str, lineno: usize) -> Result<Option<TermTriple>, ModelError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
        line: lineno,
    };
    p.skip_ws();
    if p.at_end() || p.peek() == b'#' {
        return Ok(None);
    }
    let s = p.parse_subject()?;
    p.skip_ws();
    let pred = p.parse_predicate()?;
    p.skip_ws();
    let o = p.parse_object()?;
    p.skip_ws();
    p.expect(b'.')?;
    p.skip_ws();
    if !p.at_end() && p.peek() != b'#' {
        return Err(p.err("trailing garbage after '.'"));
    }
    Ok(Some(TermTriple::new(s, pred, o)))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ModelError {
        ModelError::Parse {
            line: self.line,
            msg: msg.to_string(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> u8 {
        self.bytes[self.pos]
    }

    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        b
    }

    fn skip_ws(&mut self) {
        while !self.at_end() && (self.peek() == b' ' || self.peek() == b'\t') {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ModelError> {
        if self.at_end() || self.peek() != b {
            return Err(self.err(&format!("expected '{}'", b as char)));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_iri(&mut self) -> Result<String, ModelError> {
        self.expect(b'<')?;
        let start = self.pos;
        while !self.at_end() && self.peek() != b'>' {
            self.pos += 1;
        }
        if self.at_end() {
            return Err(self.err("unterminated IRI"));
        }
        let iri = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in IRI"))?
            .to_string();
        self.pos += 1; // consume '>'
        Ok(iri)
    }

    fn parse_blank(&mut self) -> Result<String, ModelError> {
        // caller saw '_'
        self.expect(b'_')?;
        self.expect(b':')?;
        let start = self.pos;
        while !self.at_end()
            && (self.peek().is_ascii_alphanumeric() || self.peek() == b'_' || self.peek() == b'-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_subject(&mut self) -> Result<Term, ModelError> {
        if self.at_end() {
            return Err(self.err("missing subject"));
        }
        match self.peek() {
            b'<' => Ok(Term::Iri(self.parse_iri()?)),
            b'_' => Ok(Term::Blank(self.parse_blank()?)),
            _ => Err(self.err("subject must be IRI or blank node")),
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, ModelError> {
        if self.at_end() || self.peek() != b'<' {
            return Err(self.err("predicate must be an IRI"));
        }
        Ok(Term::Iri(self.parse_iri()?))
    }

    fn parse_object(&mut self) -> Result<Term, ModelError> {
        if self.at_end() {
            return Err(self.err("missing object"));
        }
        match self.peek() {
            b'<' => Ok(Term::Iri(self.parse_iri()?)),
            b'_' => Ok(Term::Blank(self.parse_blank()?)),
            b'"' => self.parse_literal(),
            _ => Err(self.err("object must be IRI, blank node or literal")),
        }
    }

    fn parse_literal(&mut self) -> Result<Term, ModelError> {
        self.expect(b'"')?;
        let mut lexical = String::new();
        loop {
            if self.at_end() {
                return Err(self.err("unterminated string literal"));
            }
            match self.bump() {
                b'"' => break,
                b'\\' => {
                    if self.at_end() {
                        return Err(self.err("dangling escape"));
                    }
                    match self.bump() {
                        b't' => lexical.push('\t'),
                        b'n' => lexical.push('\n'),
                        b'r' => lexical.push('\r'),
                        b'"' => lexical.push('"'),
                        b'\\' => lexical.push('\\'),
                        b'u' => lexical.push(self.parse_unicode_escape(4)?),
                        b'U' => lexical.push(self.parse_unicode_escape(8)?),
                        c => return Err(self.err(&format!("unknown escape \\{}", c as char))),
                    }
                }
                c if c < 0x80 => lexical.push(c as char),
                c => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    if start + len > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in literal"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in literal"))?;
                    lexical.push_str(s);
                    self.pos = start + len;
                }
            }
        }
        // Optional language tag or datatype.
        if !self.at_end() && self.peek() == b'@' {
            self.pos += 1;
            let start = self.pos;
            while !self.at_end() && (self.peek().is_ascii_alphanumeric() || self.peek() == b'-') {
                self.pos += 1;
            }
            let lang = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            return Ok(Term::Literal(crate::term::Literal::new(Value::Str {
                lexical,
                lang: Some(lang),
            })));
        }
        if self.pos + 1 < self.bytes.len()
            && self.peek() == b'^'
            && self.bytes[self.pos + 1] == b'^'
        {
            self.pos += 2;
            let dt = self.parse_iri()?;
            return Ok(Term::Literal(crate::term::Literal::new(typed_value(
                lexical, &dt, self.line,
            )?)));
        }
        Ok(Term::str(lexical))
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, ModelError> {
        if self.pos + digits > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + digits])
            .map_err(|_| self.err("bad unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos += digits;
        char::from_u32(cp).ok_or_else(|| self.err("invalid unicode code point"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Map a (lexical, datatype IRI) pair to a typed [`Value`].
fn typed_value(lexical: String, datatype: &str, line: usize) -> Result<Value, ModelError> {
    let parse_err = |msg: &str| ModelError::Parse {
        line,
        msg: format!("{msg}: {lexical:?}"),
    };
    Ok(match datatype {
        vocab::XSD_INTEGER
        | "http://www.w3.org/2001/XMLSchema#int"
        | "http://www.w3.org/2001/XMLSchema#long"
        | "http://www.w3.org/2001/XMLSchema#short" => {
            Value::Int(lexical.parse().map_err(|_| parse_err("bad integer"))?)
        }
        vocab::XSD_DECIMAL | vocab::XSD_DOUBLE | "http://www.w3.org/2001/XMLSchema#float" => {
            Value::Decimal(parse_decimal(&lexical).ok_or_else(|| parse_err("bad decimal"))?)
        }
        vocab::XSD_DATE => Value::Date(date::parse_date(&lexical)?),
        vocab::XSD_DATETIME => Value::DateTime(date::parse_datetime(&lexical)?),
        vocab::XSD_BOOLEAN => match lexical.as_str() {
            "true" | "1" => Value::Bool(true),
            "false" | "0" => Value::Bool(false),
            _ => return Err(parse_err("bad boolean")),
        },
        // Unknown datatypes (including xsd:string) degrade to plain strings.
        _ => Value::Str {
            lexical,
            lang: None,
        },
    })
}

/// Serialize one term in N-Triples syntax.
pub fn write_term(out: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push('<');
            out.push_str(iri);
            out.push('>');
        }
        Term::Blank(label) => {
            out.push_str("_:");
            out.push_str(label);
        }
        Term::Literal(lit) => {
            out.push('"');
            for c in lit.value.lexical().chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
            if let Value::Str {
                lang: Some(lang), ..
            } = &lit.value
            {
                out.push('@');
                out.push_str(lang);
            } else if let Some(dt) = lit.value.datatype() {
                out.push_str("^^<");
                out.push_str(dt);
                out.push('>');
            }
        }
    }
}

/// Serialize triples as an N-Triples document.
pub fn write_document<W: Write>(mut w: W, triples: &[TermTriple]) -> std::io::Result<()> {
    let mut line = String::new();
    for t in triples {
        line.clear();
        write_term(&mut line, &t.s);
        line.push(' ');
        write_term(&mut line, &t.p);
        line.push(' ');
        write_term(&mut line, &t.o);
        line.push_str(" .\n");
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_triples() {
        let doc = r#"
# a comment
<http://ex.org/book1> <http://ex.org/has_author> <http://ex.org/author1> .
<http://ex.org/book1> <http://ex.org/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/book1> <http://ex.org/isbn_no> "1-56619-909-3" .
_:b0 <http://ex.org/label> "blank"@en .
"#;
        let triples = parse_document(doc).unwrap();
        assert_eq!(triples.len(), 4);
        assert_eq!(triples[0].s, Term::iri("http://ex.org/book1"));
        assert_eq!(triples[1].o, Term::int(1996));
        assert_eq!(triples[2].o, Term::str("1-56619-909-3"));
        assert_eq!(
            triples[3].o,
            Term::Literal(crate::term::Literal::new(Value::Str {
                lexical: "blank".into(),
                lang: Some("en".into())
            }))
        );
    }

    #[test]
    fn parses_typed_literals() {
        let doc = concat!(
            "<http://e/s> <http://e/d> \"1996-07-04\"^^<http://www.w3.org/2001/XMLSchema#date> .\n",
            "<http://e/s> <http://e/m> \"12.34\"^^<http://www.w3.org/2001/XMLSchema#decimal> .\n",
            "<http://e/s> <http://e/b> \"true\"^^<http://www.w3.org/2001/XMLSchema#boolean> .\n",
        );
        let triples = parse_document(doc).unwrap();
        assert_eq!(triples[0].o, Term::date("1996-07-04"));
        assert_eq!(triples[1].o, Term::decimal_f64(12.34));
        assert_eq!(triples[2].o, Term::literal(Value::Bool(true)));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = vec![TermTriple::new(
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::str("line1\nline2\t\"quoted\" \\slash"),
        )];
        let mut buf = Vec::new();
        write_document(&mut buf, &original).unwrap();
        let reparsed = parse_document(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn unicode_escapes() {
        let doc = "<http://e/s> <http://e/p> \"caf\\u00e9 \\U0001F600\" .";
        let triples = parse_document(doc).unwrap();
        assert_eq!(triples[0].o, Term::str("café 😀"));
    }

    #[test]
    fn utf8_passthrough() {
        let doc = "<http://e/s> <http://e/p> \"naïve — überfluß\" .";
        let triples = parse_document(doc).unwrap();
        assert_eq!(triples[0].o, Term::str("naïve — überfluß"));
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let doc = "<http://e/s> <http://e/p> <http://e/o> .\n<http://e/s> nonsense .";
        let err = parse_document(doc).unwrap_err();
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_syntax() {
        for bad in [
            "<http://e/s> <http://e/p> \"unterminated .",
            "<http://e/s> <http://e/p> .",
            "<http://e/s> \"literal-predicate\" <http://e/o> .",
            "<http://e/s> <http://e/p> <http://e/o> extra .",
            "<unclosed <http://e/p> <http://e/o> .",
        ] {
            assert!(parse_document(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn writer_emits_datatypes() {
        let triples = vec![TermTriple::new(
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::date("1996-07-04"),
        )];
        let mut buf = Vec::new();
        write_document(&mut buf, &triples).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"1996-07-04\"^^<http://www.w3.org/2001/XMLSchema#date>"));
    }
}
