//! Parsed RDF terms and typed literal values.

use crate::date;
use crate::oid::{DECIMAL_ONE, DECIMAL_SCALE};
use crate::vocab;

/// A typed literal value. Lexical forms are normalized into these variants at
/// parse time so the rest of the system works with values, not strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Plain or `xsd:string` literal, with optional language tag.
    Str {
        lexical: String,
        lang: Option<String>,
    },
    /// `xsd:integer` (and the narrower integer types).
    Int(i64),
    /// `xsd:decimal` / `xsd:double` at fixed scale 4: `unscaled * 10^-4`.
    Decimal(i64),
    /// `xsd:date` as days since 1970-01-01.
    Date(i64),
    /// `xsd:dateTime` as seconds since the epoch.
    DateTime(i64),
    /// `xsd:boolean`.
    Bool(bool),
}

impl Value {
    /// Build a plain string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str {
            lexical: s.into(),
            lang: None,
        }
    }

    /// Build a decimal from an f64 (rounded to scale 4).
    pub fn decimal_f64(v: f64) -> Value {
        Value::Decimal((v * DECIMAL_ONE as f64).round() as i64)
    }

    /// The canonical lexical form (used by the N-Triples writer).
    pub fn lexical(&self) -> String {
        match self {
            Value::Str { lexical, .. } => lexical.clone(),
            Value::Int(v) => v.to_string(),
            Value::Decimal(u) => format_decimal(*u),
            Value::Date(d) => date::format_date(*d),
            Value::DateTime(s) => date::format_datetime(*s),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// The datatype IRI for this value, `None` for plain strings.
    pub fn datatype(&self) -> Option<&'static str> {
        match self {
            Value::Str { .. } => None,
            Value::Int(_) => Some(vocab::XSD_INTEGER),
            Value::Decimal(_) => Some(vocab::XSD_DECIMAL),
            Value::Date(_) => Some(vocab::XSD_DATE),
            Value::DateTime(_) => Some(vocab::XSD_DATETIME),
            Value::Bool(_) => Some(vocab::XSD_BOOLEAN),
        }
    }
}

/// Render a scale-4 unscaled decimal without trailing zero noise
/// (`12_3400` → `"12.34"`, `50_000` → `"5"`).
pub fn format_decimal(unscaled: i64) -> String {
    let sign = if unscaled < 0 { "-" } else { "" };
    let abs = unscaled.unsigned_abs();
    let int = abs / DECIMAL_ONE as u64;
    let mut frac = abs % DECIMAL_ONE as u64;
    if frac == 0 {
        return format!("{sign}{int}");
    }
    let mut digits = DECIMAL_SCALE as usize;
    while frac % 10 == 0 {
        frac /= 10;
        digits -= 1;
    }
    format!("{sign}{int}.{frac:0digits$}")
}

/// Parse a decimal lexical form into a scale-4 unscaled value.
/// Extra fractional digits are truncated.
pub fn parse_decimal(s: &str) -> Option<i64> {
    let (sign, body) = match s.strip_prefix('-') {
        Some(rest) => (-1i64, rest),
        None => (1i64, s.strip_prefix('+').unwrap_or(s)),
    };
    let (int_part, frac_part) = match body.split_once('.') {
        Some((i, f)) => (i, f),
        None => (body, ""),
    };
    if int_part.is_empty() && frac_part.is_empty() {
        return None;
    }
    let int: i64 = if int_part.is_empty() {
        0
    } else {
        int_part.parse().ok()?
    };
    let mut frac: i64 = 0;
    for (i, c) in frac_part.bytes().enumerate() {
        if i >= DECIMAL_SCALE as usize {
            break;
        }
        if !c.is_ascii_digit() {
            return None;
        }
        frac = frac * 10 + (c - b'0') as i64;
    }
    let missing =
        (DECIMAL_SCALE as usize).saturating_sub(frac_part.len().min(DECIMAL_SCALE as usize));
    frac *= 10i64.pow(missing as u32);
    Some(sign * (int.checked_mul(DECIMAL_ONE)? + frac))
}

/// A literal: a [`Value`] (the datatype is implied by the variant).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    pub value: Value,
}

impl Literal {
    pub fn new(value: Value) -> Literal {
        Literal { value }
    }
}

/// A parsed RDF term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An IRI reference.
    Iri(String),
    /// A blank node label (without the `_:` prefix).
    Blank(String),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// The skolem IRI a blank-node label is interned under (blank subjects
    /// must participate in subject clustering like any other IRI). The one
    /// definition shared by the encode path (`TripleSet`) and the lookup
    /// path (delete/term resolution) — they must never disagree.
    pub fn skolem_blank_iri(label: &str) -> String {
        format!("urn:sordf:blank:{label}")
    }

    pub fn iri(s: impl Into<String>) -> Term {
        Term::Iri(s.into())
    }

    pub fn blank(s: impl Into<String>) -> Term {
        Term::Blank(s.into())
    }

    pub fn literal(v: Value) -> Term {
        Term::Literal(Literal::new(v))
    }

    pub fn str(s: impl Into<String>) -> Term {
        Term::literal(Value::str(s))
    }

    pub fn int(v: i64) -> Term {
        Term::literal(Value::Int(v))
    }

    pub fn date(s: &str) -> Term {
        Term::literal(Value::Date(
            date::parse_date(s).expect("valid date literal"),
        ))
    }

    pub fn decimal_f64(v: f64) -> Term {
        Term::literal(Value::decimal_f64(v))
    }

    /// The IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The *local name* of an IRI: the part after the last `#`, `/` or `:`.
    /// Used for human-readable schema naming.
    pub fn local_name(iri: &str) -> &str {
        let cut = iri.rfind(['#', '/', ':']).map(|i| i + 1).unwrap_or(0);
        &iri[cut..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parse_format_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "12.34",
            "-12.34",
            "0.0001",
            "5",
            "1234567.8901",
        ] {
            let u = parse_decimal(s).unwrap();
            assert_eq!(format_decimal(u), s, "roundtrip {s}");
        }
    }

    #[test]
    fn decimal_truncates_extra_digits() {
        assert_eq!(parse_decimal("1.23456789"), Some(12_345));
        assert_eq!(parse_decimal(".5"), Some(5_000));
        assert_eq!(parse_decimal("+2.5"), Some(25_000));
        assert_eq!(parse_decimal("-0.01"), Some(-100));
        assert_eq!(parse_decimal(""), None);
        assert_eq!(parse_decimal("1.2x"), None);
    }

    #[test]
    fn local_name_extraction() {
        assert_eq!(
            Term::local_name("http://ex.org/schema#hasAuthor"),
            "hasAuthor"
        );
        assert_eq!(Term::local_name("http://ex.org/schema/title"), "title");
        assert_eq!(Term::local_name("urn:isbn"), "isbn");
        assert_eq!(Term::local_name("plain"), "plain");
    }

    #[test]
    fn value_lexical_forms() {
        assert_eq!(Value::Int(-5).lexical(), "-5");
        assert_eq!(Value::decimal_f64(2.75).lexical(), "2.75");
        assert_eq!(Value::Bool(true).lexical(), "true");
        assert_eq!(
            Value::Date(date::parse_date("1996-07-04").unwrap()).lexical(),
            "1996-07-04"
        );
    }
}
