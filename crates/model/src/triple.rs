//! Encoded and term-level triples.

use crate::oid::Oid;
use crate::term::Term;

/// A dictionary-encoded triple. 24 bytes, `Copy`; the unit of bulk loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    pub s: Oid,
    pub p: Oid,
    pub o: Oid,
}

impl Triple {
    pub fn new(s: Oid, p: Oid, o: Oid) -> Triple {
        Triple { s, p, o }
    }

    /// Sort keys for the six permutation orders.
    #[inline]
    pub fn key_spo(&self) -> (Oid, Oid, Oid) {
        (self.s, self.p, self.o)
    }
    #[inline]
    pub fn key_sop(&self) -> (Oid, Oid, Oid) {
        (self.s, self.o, self.p)
    }
    #[inline]
    pub fn key_pso(&self) -> (Oid, Oid, Oid) {
        (self.p, self.s, self.o)
    }
    #[inline]
    pub fn key_pos(&self) -> (Oid, Oid, Oid) {
        (self.p, self.o, self.s)
    }
    #[inline]
    pub fn key_osp(&self) -> (Oid, Oid, Oid) {
        (self.o, self.s, self.p)
    }
    #[inline]
    pub fn key_ops(&self) -> (Oid, Oid, Oid) {
        (self.o, self.p, self.s)
    }
}

/// A triple of parsed terms, as produced by the N-Triples parser and the
/// synthetic data generators, before dictionary encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TermTriple {
    pub s: Term,
    pub p: Term,
    pub o: Term,
}

impl TermTriple {
    pub fn new(s: Term, p: Term, o: Term) -> TermTriple {
        TermTriple { s, p, o }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_is_small_and_copy() {
        assert_eq!(std::mem::size_of::<Triple>(), 24);
        let t = Triple::new(Oid::iri(1), Oid::iri(2), Oid::iri(3));
        let u = t; // Copy
        assert_eq!(t, u);
    }

    #[test]
    fn permutation_keys() {
        let t = Triple::new(Oid::iri(1), Oid::iri(2), Oid::iri(3));
        assert_eq!(t.key_pso(), (Oid::iri(2), Oid::iri(1), Oid::iri(3)));
        assert_eq!(t.key_ops(), (Oid::iri(3), Oid::iri(2), Oid::iri(1)));
    }
}
