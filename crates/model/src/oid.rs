//! Tagged 64-bit object identifiers.
//!
//! Every RDF term is represented at runtime by one [`Oid`]: a 4-bit *type
//! tag* in the top bits and a 60-bit payload. IRIs, blank nodes and string
//! literals carry a dictionary index in the payload; all other literal types
//! are **inlined** — the value itself is stored in the payload using an
//! order-preserving encoding, so `oid_a < oid_b` of equal tag iff
//! `value_a < value_b`. Range predicates on dates, numbers and booleans can
//! therefore be evaluated directly on OID columns without dictionary access,
//! which is what makes zone maps and clustered scans effective.
//!
//! Tag order also defines a total order across types (IRIs < blanks <
//! strings < numbers < dates < booleans), which the engine uses for ORDER BY.

use crate::error::ModelError;

/// Number of payload bits.
pub const PAYLOAD_BITS: u32 = 60;
/// Mask extracting the payload.
pub const PAYLOAD_MASK: u64 = (1 << PAYLOAD_BITS) - 1;
/// Offset added to signed inline values to make the encoding order-preserving.
const SIGN_OFFSET: i64 = 1 << (PAYLOAD_BITS - 1);
/// Fixed decimal scale used by inline decimals: values are `unscaled * 10^-4`.
pub const DECIMAL_SCALE: u32 = 4;
/// `10^DECIMAL_SCALE`.
pub const DECIMAL_ONE: i64 = 10_000;

/// The type tag carried in an OID's top 4 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TypeTag {
    /// IRI (dictionary index payload).
    Iri = 0,
    /// Blank node (dictionary index payload).
    Blank = 1,
    /// String literal, possibly language-tagged (dictionary index payload).
    Str = 2,
    /// `xsd:integer` (inlined).
    Int = 3,
    /// `xsd:decimal` at fixed scale 4 (inlined).
    Dec = 4,
    /// `xsd:date` as days since 1970-01-01 (inlined).
    Date = 5,
    /// `xsd:dateTime` as seconds since the epoch (inlined).
    DateTime = 6,
    /// `xsd:boolean` (inlined).
    Bool = 7,
}

impl TypeTag {
    /// All tags, in comparison order.
    pub const ALL: [TypeTag; 8] = [
        TypeTag::Iri,
        TypeTag::Blank,
        TypeTag::Str,
        TypeTag::Int,
        TypeTag::Dec,
        TypeTag::Date,
        TypeTag::DateTime,
        TypeTag::Bool,
    ];

    /// Decode a tag from its numeric value.
    pub fn from_u8(v: u8) -> Option<TypeTag> {
        TypeTag::ALL.get(v as usize).copied()
    }

    /// Does this tag inline its value (vs. referencing a dictionary)?
    pub fn is_inline(self) -> bool {
        matches!(
            self,
            TypeTag::Int | TypeTag::Dec | TypeTag::Date | TypeTag::DateTime | TypeTag::Bool
        )
    }

    /// Short lowercase name used in schema column naming and debug output.
    pub fn name(self) -> &'static str {
        match self {
            TypeTag::Iri => "iri",
            TypeTag::Blank => "blank",
            TypeTag::Str => "string",
            TypeTag::Int => "int",
            TypeTag::Dec => "decimal",
            TypeTag::Date => "date",
            TypeTag::DateTime => "datetime",
            TypeTag::Bool => "boolean",
        }
    }
}

/// A tagged object identifier. See the [module docs](self) for the encoding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(u64);

impl Oid {
    /// Sentinel for a missing (NULL) value in clustered column storage.
    /// Uses the unassigned tag 15 with an all-ones payload, so it sorts after
    /// every real OID.
    pub const NULL: Oid = Oid(u64::MAX);

    /// Construct from tag + payload. Payload must fit in 60 bits.
    #[inline]
    pub fn new(tag: TypeTag, payload: u64) -> Oid {
        debug_assert!(payload <= PAYLOAD_MASK);
        Oid(((tag as u64) << PAYLOAD_BITS) | payload)
    }

    /// The raw 64-bit representation.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw representation (e.g. read back from a column).
    #[inline]
    pub fn from_raw(raw: u64) -> Oid {
        Oid(raw)
    }

    /// Is this the NULL sentinel?
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == u64::MAX
    }

    /// The type tag. Panics on the NULL sentinel in debug builds.
    #[inline]
    pub fn tag(self) -> TypeTag {
        debug_assert!(!self.is_null(), "tag() on NULL oid");
        TypeTag::from_u8((self.0 >> PAYLOAD_BITS) as u8).expect("invalid oid tag")
    }

    /// The 60-bit payload.
    #[inline]
    pub fn payload(self) -> u64 {
        self.0 & PAYLOAD_MASK
    }

    /// Is this an IRI?
    #[inline]
    pub fn is_iri(self) -> bool {
        !self.is_null() && self.tag() == TypeTag::Iri
    }

    /// Does this OID inline its value?
    #[inline]
    pub fn is_inline(self) -> bool {
        !self.is_null() && self.tag().is_inline()
    }

    /// An IRI OID from a dictionary index.
    #[inline]
    pub fn iri(index: u64) -> Oid {
        Oid::new(TypeTag::Iri, index)
    }

    /// A blank-node OID from a dictionary index.
    #[inline]
    pub fn blank(index: u64) -> Oid {
        Oid::new(TypeTag::Blank, index)
    }

    /// A string-literal OID from a dictionary index.
    #[inline]
    pub fn string(index: u64) -> Oid {
        Oid::new(TypeTag::Str, index)
    }

    fn encode_signed(tag: TypeTag, v: i64) -> Result<Oid, ModelError> {
        let shifted = v
            .checked_add(SIGN_OFFSET)
            .ok_or_else(|| ModelError::ValueOutOfRange(v.to_string()))?;
        if !(0..=(PAYLOAD_MASK as i64)).contains(&shifted) {
            return Err(ModelError::ValueOutOfRange(v.to_string()));
        }
        Ok(Oid::new(tag, shifted as u64))
    }

    #[inline]
    fn decode_signed(self) -> i64 {
        self.payload() as i64 - SIGN_OFFSET
    }

    /// Inline an `xsd:integer`.
    pub fn from_int(v: i64) -> Result<Oid, ModelError> {
        Oid::encode_signed(TypeTag::Int, v)
    }

    /// Inline an `xsd:decimal` given its scale-4 unscaled value
    /// (`12_345` means `1.2345`).
    pub fn from_decimal_unscaled(unscaled: i64) -> Result<Oid, ModelError> {
        Oid::encode_signed(TypeTag::Dec, unscaled)
    }

    /// Inline an `xsd:date` given days since 1970-01-01.
    pub fn from_date_days(days: i64) -> Result<Oid, ModelError> {
        Oid::encode_signed(TypeTag::Date, days)
    }

    /// Inline an `xsd:dateTime` given seconds since the epoch.
    pub fn from_datetime_secs(secs: i64) -> Result<Oid, ModelError> {
        Oid::encode_signed(TypeTag::DateTime, secs)
    }

    /// Inline an `xsd:boolean`.
    pub fn from_bool(v: bool) -> Oid {
        Oid::new(TypeTag::Bool, v as u64)
    }

    /// Decode an inlined integer. Caller must have checked the tag.
    #[inline]
    pub fn as_int(self) -> i64 {
        debug_assert_eq!(self.tag(), TypeTag::Int);
        self.decode_signed()
    }

    /// Decode an inlined decimal's unscaled (scale-4) value.
    #[inline]
    pub fn as_decimal_unscaled(self) -> i64 {
        debug_assert_eq!(self.tag(), TypeTag::Dec);
        self.decode_signed()
    }

    /// Decode an inlined date (days since epoch).
    #[inline]
    pub fn as_date_days(self) -> i64 {
        debug_assert_eq!(self.tag(), TypeTag::Date);
        self.decode_signed()
    }

    /// Decode an inlined dateTime (seconds since epoch).
    #[inline]
    pub fn as_datetime_secs(self) -> i64 {
        debug_assert_eq!(self.tag(), TypeTag::DateTime);
        self.decode_signed()
    }

    /// Decode an inlined boolean.
    #[inline]
    pub fn as_bool(self) -> bool {
        debug_assert_eq!(self.tag(), TypeTag::Bool);
        self.payload() != 0
    }

    /// Numeric value as f64, if this OID inlines a number (int or decimal).
    #[inline]
    pub fn numeric_f64(self) -> Option<f64> {
        if self.is_null() {
            return None;
        }
        match self.tag() {
            TypeTag::Int => Some(self.as_int() as f64),
            TypeTag::Dec => Some(self.as_decimal_unscaled() as f64 / DECIMAL_ONE as f64),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            return write!(f, "Oid(NULL)");
        }
        match self.tag() {
            TypeTag::Int => write!(f, "Oid(int {})", self.as_int()),
            TypeTag::Dec => write!(f, "Oid(dec {})", self.as_decimal_unscaled()),
            TypeTag::Date => write!(
                f,
                "Oid(date {})",
                crate::date::format_date(self.as_date_days())
            ),
            TypeTag::DateTime => write!(f, "Oid(dt {})", self.as_datetime_secs()),
            TypeTag::Bool => write!(f, "Oid(bool {})", self.as_bool()),
            t => write!(f, "Oid({} #{})", t.name(), self.payload()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_and_payload_roundtrip() {
        for tag in TypeTag::ALL {
            let oid = Oid::new(tag, 123_456);
            assert_eq!(oid.tag(), tag);
            assert_eq!(oid.payload(), 123_456);
        }
    }

    #[test]
    fn int_roundtrip_and_order() {
        for v in [-1_000_000i64, -1, 0, 1, 42, 1 << 40] {
            assert_eq!(Oid::from_int(v).unwrap().as_int(), v);
        }
        assert!(Oid::from_int(-5).unwrap() < Oid::from_int(3).unwrap());
        assert!(Oid::from_int(3).unwrap() < Oid::from_int(4).unwrap());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Oid::from_int(i64::MAX).is_err());
        assert!(Oid::from_int(i64::MIN).is_err());
    }

    #[test]
    fn decimal_order() {
        let a = Oid::from_decimal_unscaled(-12_345).unwrap(); // -1.2345
        let b = Oid::from_decimal_unscaled(0).unwrap();
        let c = Oid::from_decimal_unscaled(99_999).unwrap(); // 9.9999
        assert!(a < b && b < c);
        assert_eq!(c.numeric_f64().unwrap(), 9.9999);
    }

    #[test]
    fn date_order_matches_calendar() {
        let d1 = Oid::from_date_days(crate::date::parse_date("1996-01-01").unwrap()).unwrap();
        let d2 = Oid::from_date_days(crate::date::parse_date("1996-06-15").unwrap()).unwrap();
        assert!(d1 < d2);
    }

    #[test]
    fn null_sorts_last_and_is_detectable() {
        assert!(Oid::NULL.is_null());
        assert!(Oid::from_int(i64::from(u32::MAX)).unwrap() < Oid::NULL);
        assert!(Oid::iri(PAYLOAD_MASK) < Oid::NULL);
    }

    #[test]
    fn cross_type_order_is_by_tag() {
        assert!(Oid::iri(999) < Oid::string(0));
        assert!(Oid::string(999) < Oid::from_int(-999).unwrap());
        assert!(Oid::from_int(1 << 50).unwrap() < Oid::from_bool(false));
    }
}
