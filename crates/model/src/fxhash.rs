//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by
//! rustc), plus `HashMap`/`HashSet` aliases built on it.
//!
//! Dictionary encoding and characteristic-set detection hash millions of
//! short keys (strings, u64 OIDs, sorted property lists); SipHash's DoS
//! resistance buys nothing here and costs 2-4x. Implemented locally to keep
//! the dependency set to the approved list.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-Fx hashing algorithm: multiply-rotate over machine words.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_inputs() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"characteristic set");
        b.write(b"characteristic set");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"subject");
        b.write(b"object");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(format!("iri:{i}"), i);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&format!("iri:{i}")], i);
        }
    }
}
