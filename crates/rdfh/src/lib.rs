//! # sordf-rdfh
//!
//! The RDF-H benchmark: a deterministic TPC-H-style data generator mapped
//! 1:1 to RDF triples (the paper evaluates on "a straight 1-1 mapping of the
//! TPC-H benchmark to SPARQL", sf.net/projects/bibm), plus the SPARQL query
//! catalog used by the Table I reproduction.
//!
//! Every row of a TPC-H table becomes one subject IRI
//! (`rdfh:<table><key>`); every column becomes a predicate
//! (`rdfh:<table>_<column>`); foreign keys become IRIs of the referenced
//! subject; every subject carries an `rdf:type` triple. Value distributions
//! follow TPC-H where it matters for query selectivities: date ranges
//! (1992-01-01 .. 1998-12-31), shipdate = orderdate + 1..121 days (the
//! correlation the zone-map experiment exploits), discount 0.00..0.10,
//! quantity 1..50, and the usual categorical columns.

pub mod gen;
pub mod queries;

pub use gen::{generate, RdfhConfig, RdfhData};
pub use queries::{query, QueryId, ALL_QUERIES};
