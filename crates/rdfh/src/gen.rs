//! The RDF-H data generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sordf_model::{Term, TermTriple, Value};

/// Namespace of the RDF-H schema.
pub const NS: &str = "http://lod2.eu/schemas/rdfh#";

/// Scale-factor-driven generator configuration. TPC-H row counts at SF=1
/// are LINEITEM ≈ 6M, ORDERS 1.5M, CUSTOMER 150k, PART 200k, SUPPLIER 10k;
/// we keep the ratios and scale everything by `sf`.
#[derive(Debug, Clone, Copy)]
pub struct RdfhConfig {
    pub sf: f64,
    pub seed: u64,
}

impl Default for RdfhConfig {
    fn default() -> RdfhConfig {
        RdfhConfig { sf: 0.01, seed: 42 }
    }
}

impl RdfhConfig {
    pub fn new(sf: f64) -> RdfhConfig {
        RdfhConfig {
            sf,
            ..Default::default()
        }
    }

    pub fn n_region(&self) -> u64 {
        5
    }

    pub fn n_nation(&self) -> u64 {
        25
    }

    pub fn n_supplier(&self) -> u64 {
        ((10_000.0 * self.sf) as u64).max(5)
    }

    pub fn n_customer(&self) -> u64 {
        ((150_000.0 * self.sf) as u64).max(10)
    }

    pub fn n_part(&self) -> u64 {
        ((200_000.0 * self.sf) as u64).max(10)
    }

    pub fn n_orders(&self) -> u64 {
        ((1_500_000.0 * self.sf) as u64).max(20)
    }
}

/// Generated triples plus bookkeeping counts.
pub struct RdfhData {
    pub triples: Vec<TermTriple>,
    pub n_lineitem: u64,
    pub n_orders: u64,
    pub n_customer: u64,
}

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const RETURNFLAGS: [&str; 3] = ["A", "N", "R"];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "LARGE BRUSHED BRASS",
    "MEDIUM POLISHED COPPER",
    "PROMO BURNISHED NICKEL",
    "SMALL PLATED TIN",
    "STANDARD POLISHED BRASS",
];

/// First day of the TPC-H date range, as days since the epoch.
fn startdate() -> i64 {
    sordf_model::date::days_from_civil(1992, 1, 1)
}

/// Number of days in the orderdate range (orders end 1998-08-02).
const ORDERDATE_SPAN: i64 = 2406;

fn iri(kind: &str, key: u64) -> Term {
    Term::iri(format!("{NS}{kind}{key}"))
}

fn pred(name: &str) -> Term {
    Term::iri(format!("{NS}{name}"))
}

fn type_of(kind: &str) -> Term {
    Term::iri(format!("{NS}{kind}"))
}

/// Generate the full RDF-H dataset.
pub fn generate(cfg: &RdfhConfig) -> RdfhData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut triples: Vec<TermTriple> = Vec::new();
    let rdf_type = Term::iri(sordf_model::vocab::RDF_TYPE);

    let push = |s: &Term, p: Term, o: Term, triples: &mut Vec<TermTriple>| {
        triples.push(TermTriple::new(s.clone(), p, o));
    };

    // region
    for r in 0..cfg.n_region() {
        let s = iri("region", r);
        push(&s, rdf_type.clone(), type_of("region"), &mut triples);
        push(
            &s,
            pred("region_name"),
            Term::str(REGIONS[r as usize]),
            &mut triples,
        );
    }
    // nation
    for n in 0..cfg.n_nation() {
        let s = iri("nation", n);
        push(&s, rdf_type.clone(), type_of("nation"), &mut triples);
        push(
            &s,
            pred("nation_name"),
            Term::str(format!("NATION{n:02}")),
            &mut triples,
        );
        push(
            &s,
            pred("nation_regionkey"),
            iri("region", n % 5),
            &mut triples,
        );
    }
    // supplier
    for sk in 0..cfg.n_supplier() {
        let s = iri("supplier", sk);
        push(&s, rdf_type.clone(), type_of("supplier"), &mut triples);
        push(
            &s,
            pred("supplier_name"),
            Term::str(format!("Supplier#{sk:09}")),
            &mut triples,
        );
        push(
            &s,
            pred("supplier_nationkey"),
            iri("nation", rng.random_range(0..cfg.n_nation())),
            &mut triples,
        );
        push(
            &s,
            pred("supplier_acctbal"),
            Term::decimal_f64(rng.random_range(-999.99..9999.99)),
            &mut triples,
        );
    }
    // part
    for pk in 0..cfg.n_part() {
        let s = iri("part", pk);
        push(&s, rdf_type.clone(), type_of("part"), &mut triples);
        push(
            &s,
            pred("part_name"),
            Term::str(format!("part {pk}")),
            &mut triples,
        );
        push(
            &s,
            pred("part_brand"),
            Term::str(format!(
                "Brand#{}{}",
                rng.random_range(1..6),
                rng.random_range(1..6)
            )),
            &mut triples,
        );
        push(
            &s,
            pred("part_type"),
            Term::str(TYPES[rng.random_range(0..TYPES.len())]),
            &mut triples,
        );
        push(
            &s,
            pred("part_size"),
            Term::int(rng.random_range(1..51)),
            &mut triples,
        );
        push(
            &s,
            pred("part_retailprice"),
            Term::decimal_f64(900.0 + (pk % 1000) as f64 / 10.0),
            &mut triples,
        );
    }
    // customer
    for ck in 0..cfg.n_customer() {
        let s = iri("customer", ck);
        push(&s, rdf_type.clone(), type_of("customer"), &mut triples);
        push(
            &s,
            pred("customer_name"),
            Term::str(format!("Customer#{ck:09}")),
            &mut triples,
        );
        push(
            &s,
            pred("customer_mktsegment"),
            Term::str(SEGMENTS[rng.random_range(0..SEGMENTS.len())]),
            &mut triples,
        );
        push(
            &s,
            pred("customer_nationkey"),
            iri("nation", rng.random_range(0..cfg.n_nation())),
            &mut triples,
        );
        push(
            &s,
            pred("customer_acctbal"),
            Term::decimal_f64(rng.random_range(-999.99..9999.99)),
            &mut triples,
        );
    }

    // orders + lineitem
    let start = startdate();
    let mut n_lineitem = 0u64;
    for ok in 0..cfg.n_orders() {
        let s = iri("order", ok);
        let orderdate = start + rng.random_range(0..ORDERDATE_SPAN);
        push(&s, rdf_type.clone(), type_of("order"), &mut triples);
        push(
            &s,
            pred("order_custkey"),
            iri("customer", rng.random_range(0..cfg.n_customer())),
            &mut triples,
        );
        push(
            &s,
            pred("order_orderdate"),
            Term::literal(Value::Date(orderdate)),
            &mut triples,
        );
        push(
            &s,
            pred("order_orderpriority"),
            Term::str(PRIORITIES[rng.random_range(0..PRIORITIES.len())]),
            &mut triples,
        );
        push(&s, pred("order_shippriority"), Term::int(0), &mut triples);
        push(
            &s,
            pred("order_orderstatus"),
            Term::str(if rng.random_bool(0.49) { "F" } else { "O" }),
            &mut triples,
        );
        let mut total = 0.0f64;

        // 1..7 lineitems per order (TPC-H's distribution).
        let n_lines = rng.random_range(1..8u32);
        for ln in 0..n_lines {
            let li = iri("lineitem", ok * 8 + ln as u64);
            n_lineitem += 1;
            let quantity = rng.random_range(1..51i64);
            let extendedprice = quantity as f64 * (900.0 + rng.random_range(0..1000) as f64 / 10.0);
            let discount = rng.random_range(0..11i64) as f64 / 100.0;
            let tax = rng.random_range(0..9i64) as f64 / 100.0;
            // The crucial correlation: shipdate trails orderdate by 1..121
            // days; receipt trails shipment, commit sits near ship.
            let shipdate = orderdate + rng.random_range(1..122i64);
            let commitdate = orderdate + rng.random_range(30..91i64);
            let receiptdate = shipdate + rng.random_range(1..31i64);
            total += extendedprice * (1.0 - discount);

            push(&li, rdf_type.clone(), type_of("lineitem"), &mut triples);
            push(
                &li,
                pred("lineitem_orderkey"),
                iri("order", ok),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_partkey"),
                iri("part", rng.random_range(0..cfg.n_part())),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_suppkey"),
                iri("supplier", rng.random_range(0..cfg.n_supplier())),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_linenumber"),
                Term::int(ln as i64 + 1),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_quantity"),
                Term::int(quantity),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_extendedprice"),
                Term::decimal_f64(extendedprice),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_discount"),
                Term::decimal_f64(discount),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_tax"),
                Term::decimal_f64(tax),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_returnflag"),
                Term::str(RETURNFLAGS[rng.random_range(0..RETURNFLAGS.len())]),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_linestatus"),
                Term::str(if shipdate > start + 2160 { "O" } else { "F" }),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_shipdate"),
                Term::literal(Value::Date(shipdate)),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_commitdate"),
                Term::literal(Value::Date(commitdate)),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_receiptdate"),
                Term::literal(Value::Date(receiptdate)),
                &mut triples,
            );
            push(
                &li,
                pred("lineitem_shipmode"),
                Term::str(SHIPMODES[rng.random_range(0..SHIPMODES.len())]),
                &mut triples,
            );
        }
        push(
            &s,
            pred("order_totalprice"),
            Term::decimal_f64(total),
            &mut triples,
        );
    }

    RdfhData {
        triples,
        n_lineitem,
        n_orders: cfg.n_orders(),
        n_customer: cfg.n_customer(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(&RdfhConfig { sf: 0.001, seed: 7 });
        let b = generate(&RdfhConfig { sf: 0.001, seed: 7 });
        assert_eq!(a.triples, b.triples);
        let c = generate(&RdfhConfig { sf: 0.001, seed: 8 });
        assert_ne!(a.triples, c.triples);
    }

    #[test]
    fn row_counts_scale() {
        let d = generate(&RdfhConfig { sf: 0.001, seed: 1 });
        assert_eq!(d.n_orders, 1500);
        assert_eq!(d.n_customer, 150);
        assert!(d.n_lineitem >= 1500 && d.n_lineitem <= 1500 * 7);
        // ~16 triples per lineitem, 7 per order, plus dimensions.
        assert!(d.triples.len() > 100_000 / 10);
    }

    #[test]
    fn shipdate_trails_orderdate() {
        let d = generate(&RdfhConfig {
            sf: 0.0005,
            seed: 1,
        });
        // Collect per-order orderdate and per-lineitem (orderkey, shipdate).
        let mut orderdates = std::collections::HashMap::new();
        let mut pairs = Vec::new();
        for t in &d.triples {
            if let (Term::Iri(s), Term::Iri(p)) = (&t.s, &t.p) {
                if p.ends_with("order_orderdate") {
                    if let Term::Literal(l) = &t.o {
                        if let Value::Date(days) = l.value {
                            orderdates.insert(s.clone(), days);
                        }
                    }
                } else if p.ends_with("lineitem_orderkey") {
                    if let Term::Iri(o) = &t.o {
                        pairs.push((s.clone(), o.clone()));
                    }
                }
            }
        }
        let mut shipdates = std::collections::HashMap::new();
        for t in &d.triples {
            if let (Term::Iri(s), Term::Iri(p)) = (&t.s, &t.p) {
                if p.ends_with("lineitem_shipdate") {
                    if let Term::Literal(l) = &t.o {
                        if let Value::Date(days) = l.value {
                            shipdates.insert(s.clone(), days);
                        }
                    }
                }
            }
        }
        assert!(!pairs.is_empty());
        for (li, ok) in pairs {
            let od = orderdates[&ok];
            let sd = shipdates[&li];
            assert!(
                sd > od && sd <= od + 121,
                "shipdate within (orderdate, +121]"
            );
        }
    }

    #[test]
    fn all_subjects_typed() {
        let d = generate(&RdfhConfig {
            sf: 0.0005,
            seed: 3,
        });
        let typed: std::collections::HashSet<_> = d
            .triples
            .iter()
            .filter(|t| t.p == Term::iri(sordf_model::vocab::RDF_TYPE))
            .map(|t| t.s.clone())
            .collect();
        let subjects: std::collections::HashSet<_> =
            d.triples.iter().map(|t| t.s.clone()).collect();
        assert_eq!(typed, subjects);
    }
}
