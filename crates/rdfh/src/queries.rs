//! The RDF-H SPARQL query catalog.
//!
//! Table I of the paper uses Q3 and Q6; we additionally provide Q1, Q5, Q10
//! and Q14 analogues so the extension benches can exercise wider plan
//! shapes. All queries are 1:1 SPARQL renderings of their TPC-H originals
//! over the `rdfh:` vocabulary of [`crate::gen`]. Date constants follow the
//! TPC-H reference parameters.

/// Query identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    Q1,
    Q3,
    Q5,
    Q6,
    Q10,
    Q14,
}

/// All provided queries.
pub const ALL_QUERIES: [QueryId; 6] = [
    QueryId::Q1,
    QueryId::Q3,
    QueryId::Q5,
    QueryId::Q6,
    QueryId::Q10,
    QueryId::Q14,
];

impl QueryId {
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q3 => "Q3",
            QueryId::Q5 => "Q5",
            QueryId::Q6 => "Q6",
            QueryId::Q10 => "Q10",
            QueryId::Q14 => "Q14",
        }
    }
}

/// The SPARQL text of a query.
pub fn query(id: QueryId) -> &'static str {
    match id {
        // Q1: pricing summary report (big scan + aggregation).
        QueryId::Q1 => {
            r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT ?returnflag ?linestatus
       (SUM(?quantity) AS ?sum_qty)
       (SUM(?extendedprice) AS ?sum_base_price)
       (SUM(?extendedprice * (1 - ?discount)) AS ?sum_disc_price)
       (SUM(?extendedprice * (1 - ?discount) * (1 + ?tax)) AS ?sum_charge)
       (AVG(?quantity) AS ?avg_qty)
       (COUNT(*) AS ?count_order)
WHERE {
  ?li rdfh:lineitem_returnflag ?returnflag .
  ?li rdfh:lineitem_linestatus ?linestatus .
  ?li rdfh:lineitem_quantity ?quantity .
  ?li rdfh:lineitem_extendedprice ?extendedprice .
  ?li rdfh:lineitem_discount ?discount .
  ?li rdfh:lineitem_tax ?tax .
  ?li rdfh:lineitem_shipdate ?shipdate .
  FILTER(?shipdate <= "1998-09-02"^^xsd:date)
}
GROUP BY ?returnflag ?linestatus
ORDER BY ?returnflag ?linestatus
"#
        }
        // Q3: shipping priority (customer ⨝ orders ⨝ lineitem).
        QueryId::Q3 => {
            r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT ?o (SUM(?extendedprice * (1 - ?discount)) AS ?revenue) ?orderdate ?shippriority
WHERE {
  ?c rdfh:customer_mktsegment "BUILDING" .
  ?o rdfh:order_custkey ?c .
  ?o rdfh:order_orderdate ?orderdate .
  ?o rdfh:order_shippriority ?shippriority .
  ?li rdfh:lineitem_orderkey ?o .
  ?li rdfh:lineitem_extendedprice ?extendedprice .
  ?li rdfh:lineitem_discount ?discount .
  ?li rdfh:lineitem_shipdate ?shipdate .
  FILTER(?orderdate < "1995-03-15"^^xsd:date && ?shipdate > "1995-03-15"^^xsd:date)
}
GROUP BY ?o ?orderdate ?shippriority
ORDER BY DESC(?revenue) ?orderdate
LIMIT 10
"#
        }
        // Q5: local supplier volume (customer ⨝ orders ⨝ lineitem ⨝ nation).
        QueryId::Q5 => {
            r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT ?nname (SUM(?extendedprice * (1 - ?discount)) AS ?revenue)
WHERE {
  ?c rdfh:customer_nationkey ?n .
  ?n rdfh:nation_name ?nname .
  ?o rdfh:order_custkey ?c .
  ?o rdfh:order_orderdate ?orderdate .
  ?li rdfh:lineitem_orderkey ?o .
  ?li rdfh:lineitem_extendedprice ?extendedprice .
  ?li rdfh:lineitem_discount ?discount .
  FILTER(?orderdate >= "1994-01-01"^^xsd:date && ?orderdate < "1995-01-01"^^xsd:date)
}
GROUP BY ?nname
ORDER BY DESC(?revenue)
"#
        }
        // Q6: forecasting revenue change (the paper's scan-heavy query).
        QueryId::Q6 => {
            r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?extendedprice * ?discount) AS ?revenue)
WHERE {
  ?li rdfh:lineitem_shipdate ?shipdate .
  ?li rdfh:lineitem_extendedprice ?extendedprice .
  ?li rdfh:lineitem_discount ?discount .
  ?li rdfh:lineitem_quantity ?quantity .
  FILTER(?shipdate >= "1994-01-01"^^xsd:date && ?shipdate < "1995-01-01"^^xsd:date
         && ?discount >= 0.05 && ?discount <= 0.07 && ?quantity < 24)
}
"#
        }
        // Q10: returned item reporting.
        QueryId::Q10 => {
            r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT ?c ?cname (SUM(?extendedprice * (1 - ?discount)) AS ?revenue)
WHERE {
  ?c rdfh:customer_name ?cname .
  ?o rdfh:order_custkey ?c .
  ?o rdfh:order_orderdate ?orderdate .
  ?li rdfh:lineitem_orderkey ?o .
  ?li rdfh:lineitem_returnflag "R" .
  ?li rdfh:lineitem_extendedprice ?extendedprice .
  ?li rdfh:lineitem_discount ?discount .
  FILTER(?orderdate >= "1993-10-01"^^xsd:date && ?orderdate < "1994-01-01"^^xsd:date)
}
GROUP BY ?c ?cname
ORDER BY DESC(?revenue)
LIMIT 20
"#
        }
        // Q14: promotion effect (lineitem ⨝ part).
        QueryId::Q14 => {
            r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?extendedprice * (1 - ?discount)) AS ?promo_revenue) (COUNT(*) AS ?n)
WHERE {
  ?li rdfh:lineitem_partkey ?p .
  ?li rdfh:lineitem_extendedprice ?extendedprice .
  ?li rdfh:lineitem_discount ?discount .
  ?li rdfh:lineitem_shipdate ?shipdate .
  ?p rdfh:part_type "PROMO BURNISHED NICKEL" .
  FILTER(?shipdate >= "1995-09-01"^^xsd:date && ?shipdate < "1995-10-01"^^xsd:date)
}
"#
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_have_text() {
        for id in ALL_QUERIES {
            let text = query(id);
            assert!(text.contains("SELECT"), "{}", id.name());
            assert!(text.contains("rdfh:"), "{}", id.name());
        }
    }

    #[test]
    fn q6_has_the_paper_filters() {
        let q = query(QueryId::Q6);
        assert!(q.contains("0.05") && q.contains("0.07") && q.contains("24"));
    }
}
