//! The durable directory: manifest + checkpoint snapshots.
//!
//! A durable database lives in one directory:
//!
//! ```text
//! <dir>/MANIFEST    which snapshot + WAL are live (atomically replaced)
//! <dir>/snap.<N>    checkpoint: the base generation as a logical dump
//! <dir>/wal.<N>     write-ahead log of batches since that checkpoint
//! <dir>/data.db     page file — a *derived cache*, rebuilt on recovery
//! ```
//!
//! The commit protocol is the classic atomic-replace dance: write the new
//! snapshot, fsync it, write `MANIFEST.tmp`, fsync it, rename over
//! `MANIFEST`, fsync the directory. A crash before the rename leaves the
//! old manifest pointing at the old snapshot + WAL (both still present);
//! a crash after it leaves the new pair live — there is no intermediate
//! state. Stale `snap.*`/`wal.*` files are deleted only after the rename.
//!
//! Snapshots are **logical**: the decoded base triples in N-Triples text,
//! plus which layouts were built and the schema configuration, checksummed
//! as one frame. Recovery reloads the triples and rebuilds the layouts
//! deterministically — OID numbering may differ from the pre-crash store
//! (exactly as it would after a reorganization), logical content does not.

use sordf_columnar::{crash_point, ColumnEncoding};
use sordf_model::{ntriples, TermTriple};
use sordf_schema::SchemaConfig;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::wal::crc32;

const SNAP_MAGIC: &[u8; 8] = b"SORDFSNP";
const SNAP_VERSION: u32 = 1;

/// The manifest file name inside a durable directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Which snapshot + WAL pair is live, plus the base sequence number the
/// snapshot folds up to (replayed WAL records with `seq <= base_seq` are
/// already inside the snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// `snap.<N>` holds the live checkpoint.
    pub snap_file: u64,
    /// `wal.<N>` holds the live log.
    pub wal_file: u64,
    /// Delta sequence number the snapshot covers.
    pub base_seq: u64,
}

impl Manifest {
    /// Path of the manifest inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Path of snapshot `n` inside `dir`.
    pub fn snap_path(dir: &Path, n: u64) -> PathBuf {
        dir.join(format!("snap.{n}"))
    }

    /// Path of WAL `n` inside `dir`.
    pub fn wal_path(dir: &Path, n: u64) -> PathBuf {
        dir.join(format!("wal.{n}"))
    }

    /// Read the manifest, or `None` if the directory has none (a fresh or
    /// never-committed directory). A malformed manifest is an error — the
    /// atomic-replace protocol never leaves one behind, so damage means
    /// something external happened and silently starting empty would be
    /// data loss.
    pub fn read(dir: &Path) -> io::Result<Option<Manifest>> {
        let path = Manifest::path(dir);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let corrupt =
            |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {msg}"));
        let text = std::str::from_utf8(&bytes).map_err(|_| corrupt("not UTF-8"))?;
        let mut snap = None;
        let mut wal = None;
        let mut base_seq = None;
        let mut crc_line = None;
        let mut body_len = 0usize;
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("crc = ") {
                crc_line = Some(v.trim().to_string());
                break;
            }
            body_len += line.len() + 1;
            let Some((k, v)) = line.split_once(" = ") else {
                continue;
            };
            let v: u64 = v.trim().parse().map_err(|_| corrupt("bad number"))?;
            match k.trim() {
                "snap" => snap = Some(v),
                "wal" => wal = Some(v),
                "base_seq" => base_seq = Some(v),
                _ => {}
            }
        }
        let crc_line = crc_line.ok_or_else(|| corrupt("missing crc"))?;
        let want = u32::from_str_radix(&crc_line, 16).map_err(|_| corrupt("bad crc"))?;
        if crc32(&bytes[..body_len.min(bytes.len())]) != want {
            return Err(corrupt("checksum mismatch"));
        }
        match (snap, wal, base_seq) {
            (Some(snap_file), Some(wal_file), Some(base_seq)) => Ok(Some(Manifest {
                snap_file,
                wal_file,
                base_seq,
            })),
            _ => Err(corrupt("missing field")),
        }
    }

    /// Atomically replace the manifest in `dir` with this one: tmp file +
    /// fsync + rename + directory fsync.
    pub fn commit(&self, dir: &Path) -> io::Result<()> {
        let mut body = String::new();
        body.push_str("sordf-manifest v1\n");
        body.push_str(&format!("snap = {}\n", self.snap_file));
        body.push_str(&format!("wal = {}\n", self.wal_file));
        body.push_str(&format!("base_seq = {}\n", self.base_seq));
        let crc = crc32(body.as_bytes());
        let full = format!("{body}crc = {crc:08x}\n");
        let tmp = dir.join("MANIFEST.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(full.as_bytes())?;
            f.sync_data()?;
        }
        crash_point!("manifest.pre_rename");
        fs::rename(&tmp, Manifest::path(dir))?;
        crash_point!("manifest.post_rename");
        sync_dir(dir)
    }

    /// Delete every `snap.*`/`wal.*` in `dir` other than the live pair.
    /// Called after a successful commit; failures to unlink an orphan are
    /// returned but harmless to retry (recovery ignores orphans).
    pub fn remove_orphans(&self, dir: &Path) -> io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = match name.split_once('.') {
                // A rebuild stages its snapshot at `snap.tmp` before the
                // rename; one left behind belongs to a crashed swap.
                Some(("snap", "tmp")) => true,
                Some(("snap", n)) => n
                    .parse::<u64>()
                    .map(|n| n != self.snap_file)
                    .unwrap_or(false),
                Some(("wal", n)) => n
                    .parse::<u64>()
                    .map(|n| n != self.wal_file)
                    .unwrap_or(false),
                Some(("MANIFEST", "tmp")) => true,
                _ => false,
            };
            if stale {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

/// Fsync a directory so a rename inside it is durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Which store layouts a snapshot's generation had built (recovery rebuilds
/// the same set, in the deterministic order `self_organize` →
/// `build_cs_tables` → `build_baseline`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutFlags {
    pub baseline: bool,
    pub cs_parse_order: bool,
    pub clustered: bool,
    pub schema: bool,
    /// Bit 4: the layouts were built with [`ColumnEncoding::Plain`] (unset =
    /// the compressed default, so pre-existing snapshots recover compressed).
    pub plain_encoding: bool,
}

impl LayoutFlags {
    fn to_byte(self) -> u8 {
        (self.baseline as u8)
            | (self.cs_parse_order as u8) << 1
            | (self.clustered as u8) << 2
            | (self.schema as u8) << 3
            | (self.plain_encoding as u8) << 4
    }

    fn from_byte(b: u8) -> LayoutFlags {
        LayoutFlags {
            baseline: b & 1 != 0,
            cs_parse_order: b & 2 != 0,
            clustered: b & 4 != 0,
            schema: b & 8 != 0,
            plain_encoding: b & 16 != 0,
        }
    }

    /// The page-encoding scheme recorded in these flags.
    pub fn encoding(self) -> ColumnEncoding {
        if self.plain_encoding {
            ColumnEncoding::Plain
        } else {
            ColumnEncoding::Compressed
        }
    }

    /// Record a page-encoding scheme in these flags.
    pub fn record_encoding(&mut self, encoding: ColumnEncoding) {
        self.plain_encoding = encoding == ColumnEncoding::Plain;
    }
}

/// A checkpoint: the logical content of the base generation plus everything
/// needed to rebuild its physical layouts deterministically.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    /// Delta sequence number this snapshot folds up to.
    pub base_seq: u64,
    /// Layouts to rebuild on recovery.
    pub flags: LayoutFlags,
    /// Schema-discovery configuration the layouts were built with.
    pub schema_cfg: SchemaConfig,
    /// The base triples, decoded to terms.
    pub triples: Vec<TermTriple>,
}

impl StoreSnapshot {
    /// Write the snapshot to `path` and fsync it. Layout: magic + version,
    /// then one CRC-framed body (config, flags, base_seq, N-Triples text).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.base_seq.to_le_bytes());
        body.push(self.flags.to_byte());
        encode_schema_cfg(&self.schema_cfg, &mut body);
        let mut text = Vec::new();
        ntriples::write_document(&mut text, &self.triples)?;
        body.extend_from_slice(&(text.len() as u64).to_le_bytes());
        body.extend_from_slice(&text);
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        f.write_all(SNAP_MAGIC)?;
        f.write_all(&SNAP_VERSION.to_le_bytes())?;
        f.write_all(&(body.len() as u64).to_le_bytes())?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.write_all(&body)?;
        crash_point!("snap.pre_sync");
        f.sync_data()?;
        crash_point!("snap.post_sync");
        Ok(())
    }

    /// Read and verify a snapshot. Any damage is an error: a snapshot is
    /// only ever referenced by a manifest *after* being fully written and
    /// fsynced, so a bad one means external corruption, not a torn write.
    pub fn read_from(path: &Path) -> io::Result<StoreSnapshot> {
        let corrupt =
            |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {msg}"));
        let mut f = File::open(path)?;
        let mut header = [0u8; 24];
        f.read_exact(&mut header)?;
        if &header[..8] != SNAP_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if u32::from_le_bytes([header[8], header[9], header[10], header[11]]) != SNAP_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let body_len = u64::from_le_bytes([
            header[12], header[13], header[14], header[15], header[16], header[17], header[18],
            header[19],
        ]);
        let want_crc = u32::from_le_bytes([header[20], header[21], header[22], header[23]]);
        let mut body = Vec::new();
        f.read_to_end(&mut body)?;
        if body.len() as u64 != body_len {
            return Err(corrupt("length mismatch"));
        }
        if crc32(&body) != want_crc {
            return Err(corrupt("checksum mismatch"));
        }
        let mut off = 0usize;
        let base_seq = read_u64(&body, &mut off).ok_or_else(|| corrupt("truncated"))?;
        let flags = LayoutFlags::from_byte(*body.get(off).ok_or_else(|| corrupt("truncated"))?);
        off += 1;
        let schema_cfg = decode_schema_cfg(&body, &mut off).ok_or_else(|| corrupt("bad config"))?;
        let text_len = read_u64(&body, &mut off).ok_or_else(|| corrupt("truncated"))? as usize;
        let text = body
            .get(off..off + text_len)
            .ok_or_else(|| corrupt("truncated"))?;
        let text = std::str::from_utf8(text).map_err(|_| corrupt("not UTF-8"))?;
        let triples = ntriples::parse_document(text)
            .map_err(|e| corrupt(&format!("unparseable triples: {e}")))?;
        Ok(StoreSnapshot {
            base_seq,
            flags,
            schema_cfg,
            triples,
        })
    }
}

fn read_u64(body: &[u8], off: &mut usize) -> Option<u64> {
    let bytes = body.get(*off..*off + 8)?;
    *off += 8;
    Some(u64::from_le_bytes([
        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
    ]))
}

/// Serialize every `SchemaConfig` field in a fixed order; floats as raw
/// bits so the round trip is exact.
fn encode_schema_cfg(cfg: &SchemaConfig, out: &mut Vec<u8>) {
    out.extend_from_slice(&cfg.min_support.to_le_bytes());
    for f in [
        cfg.nullable_min_presence,
        cfg.merge_overlap,
        cfg.merge_jaccard,
        cfg.type_dominance,
        cfg.variant_min_frac,
        cfg.fk_threshold,
        cfg.multi_split_frac,
        cfg.multi_split_mean,
    ] {
        out.extend_from_slice(&f.to_bits().to_le_bytes());
    }
    out.push(cfg.unify_one_to_one as u8);
}

fn decode_schema_cfg(body: &[u8], off: &mut usize) -> Option<SchemaConfig> {
    let min_support = read_u64(body, off)?;
    let mut floats = [0f64; 8];
    for f in floats.iter_mut() {
        *f = f64::from_bits(read_u64(body, off)?);
    }
    let unify = *body.get(*off)?;
    *off += 1;
    Some(SchemaConfig {
        min_support,
        nullable_min_presence: floats[0],
        merge_overlap: floats[1],
        merge_jaccard: floats[2],
        type_dominance: floats[3],
        variant_min_frac: floats[4],
        fk_threshold: floats[5],
        multi_split_frac: floats[6],
        multi_split_mean: floats[7],
        unify_one_to_one: unify != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Term;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — unique temp names only.
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sordf-manifest-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            // sordf-lint: allow(L7) — best-effort temp cleanup in a test.
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn manifest_roundtrip_and_missing() {
        let dir = temp_dir("roundtrip");
        let _c = Cleanup(dir.clone());
        assert!(Manifest::read(&dir).unwrap().is_none());
        let m = Manifest {
            snap_file: 3,
            wal_file: 7,
            base_seq: 42,
        };
        m.commit(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), Some(m));
        // Replace: the new manifest fully supersedes the old.
        let m2 = Manifest {
            snap_file: 4,
            wal_file: 8,
            base_seq: 50,
        };
        m2.commit(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), Some(m2));
    }

    #[test]
    fn tampered_manifest_is_an_error_not_empty() {
        let dir = temp_dir("tamper");
        let _c = Cleanup(dir.clone());
        let m = Manifest {
            snap_file: 1,
            wal_file: 1,
            base_seq: 0,
        };
        m.commit(&dir).unwrap();
        let path = Manifest::path(&dir);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("snap = 1", "snap = 2")).unwrap();
        assert!(Manifest::read(&dir).is_err(), "checksum must catch edits");
    }

    #[test]
    fn remove_orphans_keeps_the_live_pair() {
        let dir = temp_dir("orphans");
        let _c = Cleanup(dir.clone());
        for n in [1u64, 2] {
            fs::write(Manifest::snap_path(&dir, n), b"s").unwrap();
            fs::write(Manifest::wal_path(&dir, n), b"w").unwrap();
        }
        fs::write(dir.join("snap.tmp"), b"staged").unwrap();
        let m = Manifest {
            snap_file: 2,
            wal_file: 2,
            base_seq: 0,
        };
        m.remove_orphans(&dir).unwrap();
        assert!(!Manifest::snap_path(&dir, 1).exists());
        assert!(!Manifest::wal_path(&dir, 1).exists());
        assert!(!dir.join("snap.tmp").exists());
        assert!(Manifest::snap_path(&dir, 2).exists());
        assert!(Manifest::wal_path(&dir, 2).exists());
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = temp_dir("snap");
        let _c = Cleanup(dir.clone());
        let triples: Vec<TermTriple> = (0..5)
            .map(|i| {
                TermTriple::new(
                    Term::iri(format!("http://e/s{i}")),
                    Term::iri("http://e/p"),
                    Term::int(i),
                )
            })
            .collect();
        let snap = StoreSnapshot {
            base_seq: 9,
            flags: LayoutFlags {
                baseline: true,
                cs_parse_order: false,
                clustered: true,
                schema: true,
                plain_encoding: true,
            },
            schema_cfg: SchemaConfig {
                min_support: 5,
                ..SchemaConfig::default()
            },
            triples: triples.clone(),
        };
        let path = Manifest::snap_path(&dir, 0);
        snap.write_to(&path).unwrap();
        let back = StoreSnapshot::read_from(&path).unwrap();
        assert_eq!(back.base_seq, 9);
        assert_eq!(back.flags, snap.flags);
        assert_eq!(back.schema_cfg.min_support, 5);
        assert_eq!(back.triples, triples);
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let dir = temp_dir("snapbad");
        let _c = Cleanup(dir.clone());
        let snap = StoreSnapshot {
            base_seq: 0,
            flags: LayoutFlags::default(),
            schema_cfg: SchemaConfig::default(),
            triples: vec![TermTriple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/p"),
                Term::int(1),
            )],
        };
        let path = Manifest::snap_path(&dir, 0);
        snap.write_to(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(StoreSnapshot::read_from(&path).is_err());
    }
}
