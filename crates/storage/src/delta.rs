//! The delta store: writes after `self_organize()`.
//!
//! The paper's store is *self-organizing* — structure is discovered from the
//! data and then maintained as data keeps arriving. Physically, though, the
//! clustered generation is immutable: columns, side tables and permutation
//! indexes are built once. The [`DeltaStore`] closes that gap with the
//! classic differential-store design (MonetDB itself keeps per-column
//! insert/delete deltas next to the read-optimized BATs):
//!
//! * **Insert runs** — every write batch becomes one sorted in-memory run of
//!   encoded triples. Runs are never merged into base columns; the query
//!   engine unions them with the base scans (see `sordf_engine::scan`).
//! * **Tombstones** — deletes never touch base pages either; a tombstone
//!   records the deleted `(s, p, o)` and the engine filters matching base
//!   (and earlier-delta) values out of every scan.
//! * **MVCC-lite snapshot sequencing** — every write batch gets a
//!   monotonically increasing sequence number. A [`Snapshot`] is just a
//!   sequence number; a reader at snapshot `S` sees exactly the runs with
//!   `seq <= S`, minus the tombstones with `seq <= S` (a tombstone only
//!   kills versions inserted *before* it, so delete-then-reinsert behaves
//!   like a version chain). There is no write-ahead log and no garbage
//!   collection: the delta lives until the next reorganization collapses it
//!   into a fresh base generation.
//!
//! A [`DeltaView`] is the read-side materialization of one snapshot: the
//! visible inserted triples sorted in PSO order (the order property scans
//! consume) plus the applicable tombstone set. The store caches the view of
//! the *current* sequence — rebuilt after each write batch, so queries never
//! pay the merge — and builds historical views on demand.

use sordf_model::{FxHashMap, FxHashSet, Oid, Triple};
use std::sync::Arc;

/// A point in the write sequence. Obtained from [`DeltaStore::snapshot`];
/// queries pinned to a snapshot see exactly the writes applied up to it.
#[must_use = "a Snapshot identifies the writes a reader may see; bind it (or `let _ =` it) rather than silently dropping the visibility point"]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Snapshot(u64);

impl Snapshot {
    /// The raw sequence number (0 = base only, before any delta write).
    pub fn seq(&self) -> u64 {
        self.0
    }
}

/// One write batch's inserts, SPO-sorted.
#[derive(Debug, Clone)]
struct DeltaRun {
    seq: u64,
    /// Inserted triples, sorted by (s, p, o). Duplicates are kept — RDF-H
    /// style bulk loads keep duplicate triples too, and the engine's
    /// placement rules give each occurrence a home.
    triples: Vec<Triple>,
}

/// The read-side materialization of one snapshot.
#[derive(Debug, Clone, Default)]
pub struct DeltaView {
    seq: u64,
    /// Visible inserted triples, sorted by (p, s, o) — the order property
    /// scans consume. A run triple is visible unless a *later* tombstone
    /// (still within the snapshot) deleted it.
    inserts_pso: Vec<Triple>,
    /// Tombstones applicable at this snapshot, for O(1) membership checks
    /// against base-resident values.
    tomb_set: FxHashSet<Triple>,
    /// The same tombstones sorted by (p, s, o), for per-predicate slices.
    tombs_pso: Vec<Triple>,
    /// True when string literals were interned after the last string-pool
    /// sort: string OID order no longer equals lexicographic order, so the
    /// engine must stop pushing ordered string comparisons into scans.
    pub strings_appended: bool,
}

impl DeltaView {
    /// The snapshot this view materializes.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// No visible inserts and no applicable tombstones?
    pub fn is_empty(&self) -> bool {
        self.inserts_pso.is_empty() && self.tomb_set.is_empty()
    }

    /// Number of visible inserted triples.
    pub fn n_inserts(&self) -> usize {
        self.inserts_pso.len()
    }

    /// Number of applicable tombstones.
    pub fn n_tombstones(&self) -> usize {
        self.tomb_set.len()
    }

    /// Is this exact triple deleted at the view's snapshot? (Base-resident
    /// occurrences only — visible delta inserts already had their
    /// tombstones applied during view construction.)
    #[inline]
    pub fn is_deleted(&self, t: Triple) -> bool {
        !self.tomb_set.is_empty() && self.tomb_set.contains(&t)
    }

    /// Any tombstones for predicate `p`? Lets scans skip the filter pass.
    pub fn has_tombstones_for(&self, p: Oid) -> bool {
        !slice_for(&self.tombs_pso, p, None).is_empty()
    }

    /// Any visible inserts for predicate `p`? While this is true, star
    /// scans must not narrow or prune on `p`'s *base* column values (sort
    /// key ranges, zone maps): a delta insert may supply the matching value
    /// for a subject whose base value is NULL or out of range, and dropping
    /// the row would drop its exception bindings with it.
    pub fn has_inserts_for(&self, p: Oid) -> bool {
        !slice_for(&self.inserts_pso, p, None).is_empty()
    }

    /// Tombstoned `(s, o)` pairs of predicate `p` with subject in
    /// `[s_lo, s_hi]`, sorted by (s, o). Used by the star-scan kernels to
    /// filter aligned column values.
    pub fn deleted_pairs_for(&self, p: Oid, s_lo: u64, s_hi: u64) -> Vec<(Oid, Oid)> {
        slice_for(&self.tombs_pso, p, Some((s_lo, s_hi)))
            .iter()
            .map(|t| (t.s, t.o))
            .collect()
    }

    /// Visible inserted `(s, o)` pairs of predicate `p`, optionally
    /// restricted to a subject range, sorted by (s, o).
    pub fn insert_pairs_for(
        &self,
        p: Oid,
        s_range: Option<(u64, u64)>,
    ) -> impl Iterator<Item = (Oid, Oid)> + '_ {
        slice_for(&self.inserts_pso, p, s_range)
            .iter()
            .map(|t| (t.s, t.o))
    }

    /// All visible inserted triples, sorted by (p, s, o).
    pub fn inserts(&self) -> &[Triple] {
        &self.inserts_pso
    }

    /// All distinct predicates with visible inserts (ascending).
    pub fn insert_preds(&self) -> Vec<Oid> {
        let mut out = Vec::new();
        for t in &self.inserts_pso {
            if out.last() != Some(&t.p) {
                out.push(t.p);
            }
        }
        out
    }

    /// Visible insert counts per predicate, ascending by predicate — the
    /// drift adjustment the optimizer's statistics view folds into its
    /// cardinality estimates (pending writes inflate per-predicate counts).
    /// One ordered walk over the PSO-sorted inserts.
    pub fn insert_counts_by_pred(&self) -> Vec<(Oid, u64)> {
        let mut out: Vec<(Oid, u64)> = Vec::new();
        for t in &self.inserts_pso {
            match out.last_mut() {
                Some((p, n)) if *p == t.p => *n += 1,
                _ => out.push((t.p, 1)),
            }
        }
        out
    }
}

/// Union of two (p, s, o)-sorted triple lists, order preserved.
fn merge_pso(a: Vec<Triple>, b: Vec<Triple>) -> Vec<Triple> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].key_pso() <= b[j].key_pso() {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The (p, s)-bounded slice of a (p, s, o)-sorted triple list.
fn slice_for(pso: &[Triple], p: Oid, s_range: Option<(u64, u64)>) -> &[Triple] {
    let lo = pso.partition_point(|t| t.p < p);
    let hi = pso.partition_point(|t| t.p <= p);
    let mut slice = &pso[lo..hi];
    if let Some((s_lo, s_hi)) = s_range {
        let a = slice.partition_point(|t| t.s.raw() < s_lo);
        let b = slice.partition_point(|t| t.s.raw() <= s_hi);
        slice = &slice[a..b.max(a)];
    }
    slice
}

/// One write batch, as replayed across a generation swap: the catch-up fold
/// decodes these under the old dictionary, re-encodes them under the new
/// generation's (renumbered) dictionary and replays them into the fresh
/// delta store in sequence order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaWrite {
    /// One insert batch (a whole [`DeltaStore::insert_run`] call).
    Insert(Vec<Triple>),
    /// One delete batch (a whole [`DeltaStore::delete`] call).
    Delete(Vec<Triple>),
}

/// Sorted in-memory insert runs + a tombstone set, with snapshot
/// sequencing. See the [module docs](self).
#[derive(Debug, Default)]
pub struct DeltaStore {
    runs: Vec<DeltaRun>,
    /// Tombstones in application order: (seq, triple).
    tombstones: Vec<(u64, Triple)>,
    /// Sequence of the latest applied write batch (== `base_seq` while the
    /// store holds no writes).
    seq: u64,
    /// The sequence this store starts at: every write folded into the base
    /// generation carries a sequence `<= base_seq`. 0 for a store over a
    /// bulk-loaded base; a store installed by a generation swap continues
    /// the pre-swap numbering so snapshots taken at or after the rebuild
    /// pin stay meaningful across the swap.
    base_seq: u64,
    /// Sequence through which insert runs have been compacted (0 = never).
    /// History strictly below the floor can no longer be reconstructed:
    /// compaction physically drops run triples killed by tombstones up to
    /// the floor, so [`DeltaStore::view_at`] clamps up to it (exactly like
    /// `base_seq` clamps history folded into the base generation).
    floor: u64,
    /// Set by the owner when inserts interned new string literals (see
    /// [`DeltaView::strings_appended`]).
    strings_appended: bool,
    /// Cached view of the current sequence (`None` while empty), shared
    /// with in-flight queries that pinned it (copy-on-write under them).
    current: Option<Arc<DeltaView>>,
}

impl DeltaStore {
    pub fn new() -> DeltaStore {
        DeltaStore::default()
    }

    /// A store whose sequence numbering continues from `base_seq` — the
    /// delta installed by a generation swap, whose base already contains
    /// every write up to (and including) `base_seq`.
    pub fn with_base_seq(base_seq: u64) -> DeltaStore {
        DeltaStore {
            seq: base_seq,
            base_seq,
            ..DeltaStore::default()
        }
    }

    /// The current sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The sequence this store starts at (see [`DeltaStore::with_base_seq`]).
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// A snapshot of the current state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.seq)
    }

    /// No runs and no tombstones at all?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.tombstones.is_empty()
    }

    /// Total inserted triples across all runs (including later-deleted ones).
    pub fn n_inserted(&self) -> usize {
        self.runs.iter().map(|r| r.triples.len()).sum()
    }

    /// Total tombstones recorded.
    pub fn n_tombstones(&self) -> usize {
        self.tombstones.len()
    }

    /// Number of insert runs currently held. Every insert batch adds one;
    /// [`DeltaStore::compact_runs`] merges them back down to at most one.
    pub fn n_runs(&self) -> usize {
        self.runs.len()
    }

    /// The compaction floor: the oldest sequence whose view is still
    /// reconstructible (see [`DeltaStore::view_at`]).
    pub fn history_floor(&self) -> u64 {
        self.floor.max(self.base_seq)
    }

    /// Approximate resident bytes of the pending writes: run triples plus
    /// sequenced tombstones (allocator slack not counted).
    pub fn approx_bytes(&self) -> u64 {
        let triple = std::mem::size_of::<Triple>() as u64;
        self.n_inserted() as u64 * triple
            + self.tombstones.len() as u64 * (triple + std::mem::size_of::<u64>() as u64)
    }

    /// Merge all insert runs into one SPO-sorted run carrying the current
    /// sequence, physically dropping triples already killed by a later
    /// tombstone (tombstone seq in `(run_seq, current]`). Tombstones are
    /// *kept* — they still filter base-resident occurrences — and the
    /// visible set at the current sequence is unchanged, so the cached
    /// current view stays valid. History below the current sequence is
    /// given up: the floor rises to it.
    ///
    /// Callers must not hold pins below the current sequence — in
    /// particular a generation rebuild's `writes_since(pin)` needs the
    /// original per-batch runs, so the owner only compacts while no
    /// rebuild is in flight.
    pub fn compact_runs(&mut self) {
        if self.runs.len() <= 1 && self.tombstones.is_empty() {
            return;
        }
        let merged_seq = self.seq;
        // Latest tombstone per triple. The merged run carries the current
        // sequence, so no tombstone postdates it: every kill the
        // tombstones imply on delta inserts is applied physically here,
        // and what survives carries a seq no tombstone exceeds.
        let mut tomb_seqs: FxHashMap<Triple, u64> = FxHashMap::default();
        for &(tseq, t) in &self.tombstones {
            let e = tomb_seqs.entry(t).or_insert(tseq);
            *e = (*e).max(tseq);
        }
        let mut merged: Vec<Triple> = Vec::with_capacity(self.n_inserted());
        for run in &self.runs {
            for &t in &run.triples {
                if tomb_seqs.get(&t).map_or(true, |&ts| ts <= run.seq) {
                    merged.push(t);
                }
            }
        }
        merged.sort_unstable_by_key(|t| t.key_spo());
        self.runs.clear();
        if !merged.is_empty() {
            self.runs.push(DeltaRun {
                seq: merged_seq,
                triples: merged,
            });
        }
        self.floor = self.floor.max(merged_seq);
        #[cfg(debug_assertions)]
        self.debug_validate();
    }

    /// Record that inserts interned new string literals; propagated into
    /// every view built from now on.
    pub fn set_strings_appended(&mut self) {
        self.strings_appended = true;
        if let Some(v) = &mut self.current {
            Arc::make_mut(v).strings_appended = true;
        }
    }

    /// Apply one insert batch as a new sorted run. Returns the snapshot at
    /// which the batch is visible. The cached current view is maintained
    /// *incrementally* — one sorted merge of the batch, not a rebuild of the
    /// whole delta — so N small batches cost O(total delta) overall, not
    /// O(total delta · N).
    pub fn insert_run(&mut self, mut triples: Vec<Triple>) -> Snapshot {
        if triples.is_empty() {
            return self.snapshot();
        }
        triples.sort_unstable_by_key(|t| t.key_spo());
        self.seq += 1;
        // A fresh run cannot be killed by existing tombstones (their seqs
        // all precede it), so the view merge is a plain sorted union.
        let mut run_pso = triples.clone();
        run_pso.sort_unstable_by_key(|t| t.key_pso());
        let seq = self.seq;
        let cur = self.current_mut();
        cur.seq = seq;
        cur.inserts_pso = merge_pso(std::mem::take(&mut cur.inserts_pso), run_pso);
        self.runs.push(DeltaRun { seq, triples });
        #[cfg(debug_assertions)]
        self.debug_validate();
        self.snapshot()
    }

    /// Apply one delete batch: tombstone each triple. Tombstones kill base
    /// occurrences and any delta version inserted before this batch; a later
    /// re-insert of the same triple is visible again. The cached view is
    /// maintained incrementally (every currently visible insert of a
    /// tombstoned triple predates the tombstone, so it just drops out).
    pub fn delete(&mut self, triples: &[Triple]) -> Snapshot {
        if triples.is_empty() {
            return self.snapshot();
        }
        self.seq += 1;
        let seq = self.seq;
        self.tombstones.extend(triples.iter().map(|&t| (seq, t)));
        let cur = self.current_mut();
        cur.seq = seq;
        let dead: FxHashSet<Triple> = triples.iter().copied().collect();
        cur.inserts_pso.retain(|t| !dead.contains(t));
        let mut fresh: Vec<Triple> = triples
            .iter()
            .copied()
            .filter(|t| cur.tomb_set.insert(*t))
            .collect();
        fresh.sort_unstable_by_key(|t| t.key_pso());
        fresh.dedup();
        cur.tombs_pso = merge_pso(std::mem::take(&mut cur.tombs_pso), fresh);
        #[cfg(debug_assertions)]
        self.debug_validate();
        self.snapshot()
    }

    /// Check the store's structural invariants; panics (via `assert!`) on
    /// violation. One O(delta) pass — debug builds run it after every write
    /// batch, stress tests call it directly.
    pub fn debug_validate(&self) {
        assert!(
            self.seq >= self.base_seq,
            "sequence {} ran behind base_seq {}",
            self.seq,
            self.base_seq
        );
        assert!(
            self.floor <= self.seq,
            "compaction floor {} ran ahead of sequence {}",
            self.floor,
            self.seq
        );
        let mut prev_seq = self.base_seq;
        for run in &self.runs {
            assert!(
                run.seq > prev_seq && run.seq <= self.seq,
                "run seq {} outside the ascending range ({}, {}]",
                run.seq,
                prev_seq,
                self.seq
            );
            prev_seq = run.seq;
            assert!(
                run.triples
                    .windows(2)
                    .all(|w| w[0].key_spo() <= w[1].key_spo()),
                "run {} is not SPO-sorted",
                run.seq
            );
        }
        let mut prev_tomb = self.base_seq;
        for &(tseq, _) in &self.tombstones {
            assert!(
                tseq >= prev_tomb && tseq > self.base_seq && tseq <= self.seq,
                "tombstone seq {} outside the non-decreasing range ({}, {}]",
                tseq,
                self.base_seq,
                self.seq
            );
            prev_tomb = tseq;
        }
        if let Some(cur) = &self.current {
            assert_eq!(cur.seq, self.seq, "cached view lags the store's sequence");
            assert!(
                cur.inserts_pso
                    .windows(2)
                    .all(|w| w[0].key_pso() <= w[1].key_pso()),
                "cached view inserts are not PSO-sorted"
            );
            assert!(
                cur.tombs_pso
                    .windows(2)
                    .all(|w| w[0].key_pso() < w[1].key_pso()),
                "cached view tombstones are not strictly PSO-sorted"
            );
            assert_eq!(
                cur.tombs_pso.len(),
                cur.tomb_set.len(),
                "cached tombstone list and set disagree"
            );
        }
    }

    /// The cached current view, created on first write. Callers assign its
    /// `seq` right after their own sequence bump. Copy-on-write: a view
    /// pinned by an in-flight query is cloned, never mutated under it.
    fn current_mut(&mut self) -> &mut DeltaView {
        let strings_appended = self.strings_appended;
        Arc::make_mut(self.current.get_or_insert_with(|| {
            Arc::new(DeltaView {
                strings_appended,
                ..DeltaView::default()
            })
        }))
    }

    /// The cached view of the current sequence (`None` while the store is
    /// empty — queries then skip all delta work).
    pub fn current_view(&self) -> Option<&DeltaView> {
        self.current.as_deref()
    }

    /// The cached current view as a shared handle — what a query *pins* at
    /// query start: later writes copy-on-write the cache and never mutate
    /// the pinned view.
    pub fn current_view_arc(&self) -> Option<Arc<DeltaView>> {
        self.current.clone()
    }

    /// Build the view of an arbitrary snapshot (clamped to this store's
    /// sequence range — history at or before `base_seq` has been folded
    /// into the base generation, and history below the compaction floor
    /// was physically merged away; neither can be subtracted back out).
    /// O(delta size); the current sequence is served from the cache by
    /// [`DeltaStore::current_view`].
    pub fn view_at(&self, snap: Snapshot) -> DeltaView {
        let seq = snap
            .seq()
            .min(self.seq)
            .max(self.base_seq)
            .max(self.floor.min(self.seq));
        // Per triple: ascending tombstone sequences (within the snapshot).
        let mut tomb_seqs: FxHashMap<Triple, Vec<u64>> = FxHashMap::default();
        for &(tseq, t) in &self.tombstones {
            if tseq <= seq {
                tomb_seqs.entry(t).or_default().push(tseq);
            }
        }
        let mut inserts: Vec<Triple> = Vec::new();
        for run in &self.runs {
            if run.seq > seq {
                continue;
            }
            for &t in &run.triples {
                // Visible unless some tombstone landed after this run.
                let dead = tomb_seqs
                    .get(&t)
                    .is_some_and(|seqs| seqs.last().is_some_and(|&ts| ts > run.seq));
                if !dead {
                    inserts.push(t);
                }
            }
        }
        inserts.sort_unstable_by_key(|t| t.key_pso());
        let tomb_set: FxHashSet<Triple> = tomb_seqs.into_keys().collect();
        let mut tombs_pso: Vec<Triple> = tomb_set.iter().copied().collect();
        tombs_pso.sort_unstable_by_key(|t| t.key_pso());
        DeltaView {
            seq,
            inserts_pso: inserts,
            tomb_set,
            tombs_pso,
            strings_appended: self.strings_appended,
        }
    }

    /// The triples a collapse must append to the base set: all inserts still
    /// visible at the current sequence, in run order.
    pub fn visible_inserts(&self) -> Vec<Triple> {
        // Walk runs (not the PSO-sorted view) to preserve batch order.
        let mut tomb_seqs: FxHashMap<Triple, u64> = FxHashMap::default();
        for &(tseq, t) in &self.tombstones {
            let e = tomb_seqs.entry(t).or_insert(tseq);
            *e = (*e).max(tseq);
        }
        let mut out = Vec::with_capacity(self.n_inserted());
        for run in &self.runs {
            for &t in &run.triples {
                if tomb_seqs.get(&t).map_or(true, |&ts| ts <= run.seq) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Every write batch applied after sequence `seq`, in sequence order —
    /// the writes a generation swap must fold into the fresh delta store
    /// (the rebuild pinned `seq`; everything later arrived *during* the
    /// rebuild). Each batch keeps its original sequence number, so a replay
    /// into [`DeltaStore::with_base_seq`]`(seq)` reproduces the numbering
    /// exactly (every write bumps the sequence by one).
    pub fn writes_since(&self, seq: u64) -> Vec<(u64, DeltaWrite)> {
        let mut out: Vec<(u64, DeltaWrite)> = self
            .runs
            .iter()
            .filter(|r| r.seq > seq)
            .map(|r| (r.seq, DeltaWrite::Insert(r.triples.clone())))
            .collect();
        let mut batch: Vec<Triple> = Vec::new();
        let mut batch_seq = 0u64;
        for &(tseq, t) in self.tombstones.iter().filter(|&&(s, _)| s > seq) {
            if tseq != batch_seq && !batch.is_empty() {
                out.push((batch_seq, DeltaWrite::Delete(std::mem::take(&mut batch))));
            }
            batch_seq = tseq;
            batch.push(t);
        }
        if !batch.is_empty() {
            out.push((batch_seq, DeltaWrite::Delete(batch)));
        }
        out.sort_by_key(|&(s, _)| s);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Oid::iri(s), Oid::iri(p), Oid::iri(o))
    }

    #[test]
    fn empty_store_has_no_view() {
        let d = DeltaStore::new();
        assert!(d.is_empty());
        assert!(d.current_view().is_none());
        assert_eq!(d.snapshot().seq(), 0);
        let v = d.view_at(d.snapshot());
        assert!(v.is_empty());
    }

    #[test]
    fn insert_then_view() {
        let mut d = DeltaStore::new();
        let snap = d.insert_run(vec![t(2, 10, 5), t(1, 10, 4), t(1, 11, 9)]);
        assert_eq!(snap.seq(), 1);
        let v = d.current_view().unwrap();
        assert_eq!(v.n_inserts(), 3);
        let pairs: Vec<_> = v.insert_pairs_for(Oid::iri(10), None).collect();
        assert_eq!(
            pairs,
            vec![(Oid::iri(1), Oid::iri(4)), (Oid::iri(2), Oid::iri(5))]
        );
        // Subject-range narrowing.
        let narrowed: Vec<_> = v
            .insert_pairs_for(Oid::iri(10), Some((Oid::iri(2).raw(), Oid::iri(2).raw())))
            .collect();
        assert_eq!(narrowed, vec![(Oid::iri(2), Oid::iri(5))]);
    }

    #[test]
    fn tombstones_filter_base_but_not_later_inserts() {
        let mut d = DeltaStore::new();
        let base_triple = t(7, 10, 3);
        let _ = d.delete(&[base_triple]); // seq 1
        let v1 = d.current_view().unwrap().clone();
        assert!(v1.is_deleted(base_triple));
        assert!(v1.has_tombstones_for(Oid::iri(10)));
        assert!(!v1.has_tombstones_for(Oid::iri(11)));

        // Re-insert after the delete: visible again as a delta insert.
        let _ = d.insert_run(vec![base_triple]); // seq 2
        let v2 = d.current_view().unwrap();
        assert_eq!(v2.n_inserts(), 1);
        // The tombstone still applies to the *base* occurrence.
        assert!(v2.is_deleted(base_triple));
    }

    #[test]
    fn tombstone_kills_earlier_delta_insert() {
        let mut d = DeltaStore::new();
        let _ = d.insert_run(vec![t(1, 10, 2)]); // seq 1
        let _ = d.delete(&[t(1, 10, 2)]); // seq 2
        let v = d.current_view().unwrap();
        assert_eq!(v.n_inserts(), 0, "insert at seq 1 deleted at seq 2");
        assert!(v.is_deleted(t(1, 10, 2)));
        assert!(d.visible_inserts().is_empty());
    }

    #[test]
    fn snapshots_pin_history() {
        let mut d = DeltaStore::new();
        let s1 = d.insert_run(vec![t(1, 10, 2)]);
        let s2 = d.delete(&[t(1, 10, 2)]);
        let s3 = d.insert_run(vec![t(1, 10, 2)]);

        let v1 = d.view_at(s1);
        assert_eq!(v1.n_inserts(), 1);
        assert!(!v1.is_deleted(t(1, 10, 2)));

        let v2 = d.view_at(s2);
        assert_eq!(v2.n_inserts(), 0);
        assert!(v2.is_deleted(t(1, 10, 2)));

        let v3 = d.view_at(s3);
        assert_eq!(v3.n_inserts(), 1, "re-insert visible");
        assert_eq!(d.visible_inserts(), vec![t(1, 10, 2)]);

        // Snapshot 0 = base only.
        assert!(d.view_at(Snapshot(0)).is_empty());
    }

    #[test]
    fn deleted_pairs_for_range() {
        let mut d = DeltaStore::new();
        let _ = d.delete(&[t(3, 10, 1), t(5, 10, 2), t(4, 11, 9)]);
        let v = d.current_view().unwrap();
        let pairs = v.deleted_pairs_for(Oid::iri(10), Oid::iri(4).raw(), u64::MAX);
        assert_eq!(pairs, vec![(Oid::iri(5), Oid::iri(2))]);
    }

    #[test]
    fn duplicates_are_kept() {
        let mut d = DeltaStore::new();
        let _ = d.insert_run(vec![t(1, 10, 2), t(1, 10, 2)]);
        assert_eq!(d.current_view().unwrap().n_inserts(), 2);
    }

    /// The incrementally maintained current view must equal a from-scratch
    /// materialization after any mix of inserts, deletes and re-inserts.
    #[test]
    fn cached_view_matches_rebuild() {
        let mut d = DeltaStore::new();
        let _ = d.insert_run(vec![t(3, 10, 1), t(1, 11, 2), t(2, 10, 9)]);
        let _ = d.delete(&[t(1, 11, 2), t(9, 9, 9)]); // one delta kill, one base-only
        let _ = d.insert_run(vec![t(1, 11, 2), t(1, 10, 5)]); // re-insert + new
        let _ = d.delete(&[t(2, 10, 9)]);
        let _ = d.insert_run(vec![t(2, 10, 9), t(2, 10, 9)]); // re-insert duplicated
        let cached = d.current_view().unwrap();
        let rebuilt = d.view_at(d.snapshot());
        assert_eq!(cached.seq(), rebuilt.seq());
        assert_eq!(cached.inserts_pso, rebuilt.inserts_pso);
        assert_eq!(cached.tombs_pso, rebuilt.tombs_pso);
        assert_eq!(cached.tomb_set, rebuilt.tomb_set);
    }

    #[test]
    fn writes_since_replays_into_base_seq_store() {
        let mut d = DeltaStore::new();
        let _ = d.insert_run(vec![t(1, 10, 2)]); // seq 1
        let _ = d.delete(&[t(1, 10, 2), t(5, 10, 9)]); // seq 2
        let _ = d.insert_run(vec![t(3, 10, 4)]); // seq 3
        let _ = d.insert_run(vec![t(4, 10, 4)]); // seq 4

        // Everything after seq 1, in order, with original sequence numbers.
        let writes = d.writes_since(1);
        assert_eq!(
            writes,
            vec![
                (2, DeltaWrite::Delete(vec![t(1, 10, 2), t(5, 10, 9)])),
                (3, DeltaWrite::Insert(vec![t(3, 10, 4)])),
                (4, DeltaWrite::Insert(vec![t(4, 10, 4)])),
            ]
        );
        assert!(d.writes_since(4).is_empty());

        // Replaying into a base-seq store reproduces the numbering, so
        // snapshots taken at or after the pin survive the swap.
        let mut replay = DeltaStore::with_base_seq(1);
        assert_eq!(replay.base_seq(), 1);
        for (seq, w) in writes {
            match w {
                DeltaWrite::Insert(ts) => assert_eq!(replay.insert_run(ts).seq(), seq),
                DeltaWrite::Delete(ts) => assert_eq!(replay.delete(&ts).seq(), seq),
            }
        }
        assert_eq!(replay.seq(), d.seq());
        let v3 = replay.view_at(Snapshot(3));
        assert_eq!(
            v3.n_inserts(),
            1,
            "seq-3 insert visible, seq-1 folded into base"
        );
        // History at or before the base is clamped up to the base.
        assert_eq!(replay.view_at(Snapshot(0)).seq(), 1);
    }

    #[test]
    fn compaction_merges_runs_and_preserves_the_visible_set() {
        let mut d = DeltaStore::new();
        let _ = d.insert_run(vec![t(3, 10, 1), t(1, 11, 2)]); // seq 1
        let _ = d.delete(&[t(1, 11, 2), t(9, 9, 9)]); // seq 2: one kill, one base-only
        let _ = d.insert_run(vec![t(1, 11, 2), t(1, 10, 5)]); // seq 3: re-insert + new
        let _ = d.insert_run(vec![t(2, 10, 9)]); // seq 4
        assert_eq!(d.n_runs(), 3);
        let before = d.view_at(d.snapshot());

        d.compact_runs();
        assert_eq!(d.n_runs(), 1);
        assert_eq!(d.history_floor(), 4);
        // Physically dropped: the seq-1 insert of t(1,11,2) killed at seq 2.
        assert_eq!(d.n_inserted(), 4);
        // Tombstones are kept: base occurrences stay filtered.
        assert_eq!(d.n_tombstones(), 2);

        let after = d.view_at(d.snapshot());
        assert_eq!(after.seq(), before.seq());
        assert_eq!(after.inserts_pso, before.inserts_pso);
        assert_eq!(after.tomb_set, before.tomb_set);
        assert_eq!(after.tombs_pso, before.tombs_pso);
        // Cached view stays valid too.
        let cached = d.current_view().unwrap();
        assert_eq!(cached.inserts_pso, before.inserts_pso);
        assert!(after.is_deleted(t(9, 9, 9)));
        assert_eq!(d.visible_inserts().len(), 4);
    }

    #[test]
    fn compaction_raises_the_history_floor() {
        let mut d = DeltaStore::new();
        let s1 = d.insert_run(vec![t(1, 10, 2)]); // seq 1
        let _ = d.insert_run(vec![t(2, 10, 3)]); // seq 2
        assert_eq!(d.view_at(s1).n_inserts(), 1);
        d.compact_runs();
        // History below the floor is clamped up to it.
        let v = d.view_at(s1);
        assert_eq!(v.seq(), 2);
        assert_eq!(v.n_inserts(), 2);
    }

    #[test]
    fn tombstone_after_compaction_still_kills_merged_inserts() {
        let mut d = DeltaStore::new();
        let _ = d.insert_run(vec![t(1, 10, 2)]); // seq 1
        let _ = d.insert_run(vec![t(2, 10, 3)]); // seq 2
        d.compact_runs();
        let _ = d.delete(&[t(1, 10, 2)]); // seq 3, after the merge
        let v = d.current_view().unwrap();
        assert_eq!(v.n_inserts(), 1);
        assert!(v.is_deleted(t(1, 10, 2)));
        assert_eq!(d.visible_inserts(), vec![t(2, 10, 3)]);
        // And the from-scratch view agrees.
        let rebuilt = d.view_at(d.snapshot());
        assert_eq!(rebuilt.inserts_pso, v.inserts_pso);
    }

    #[test]
    fn compacting_fully_deleted_runs_leaves_no_runs() {
        let mut d = DeltaStore::new();
        let _ = d.insert_run(vec![t(1, 10, 2)]); // seq 1
        let _ = d.insert_run(vec![t(2, 10, 3)]); // seq 2
        let _ = d.delete(&[t(1, 10, 2), t(2, 10, 3)]); // seq 3
        let _ = d.insert_run(vec![t(4, 10, 4)]); // seq 4
        let _ = d.delete(&[t(4, 10, 4)]); // seq 5
        d.compact_runs();
        assert_eq!(d.n_runs(), 0);
        assert_eq!(d.n_inserted(), 0);
        assert!(d.visible_inserts().is_empty());
        // Idempotent on an already-compacted store.
        d.compact_runs();
        assert_eq!(d.n_runs(), 0);
    }

    #[test]
    fn strings_appended_propagates() {
        let mut d = DeltaStore::new();
        let _ = d.insert_run(vec![t(1, 10, 2)]);
        assert!(!d.current_view().unwrap().strings_appended);
        d.set_strings_appended();
        assert!(d.current_view().unwrap().strings_appended);
        let _ = d.insert_run(vec![t(2, 10, 2)]);
        assert!(d.current_view().unwrap().strings_appended);
    }
}
