//! # sordf-storage
//!
//! Physical RDF storage in two generations, mirroring the paper:
//!
//! * **ParseOrder / exhaustive indexing** ([`BaselineStore`]) — the
//!   MonetDB+HSP / RDF-3X layout: six sorted permutation projections
//!   (SPO, SOP, PSO, POS, OSP, OPS) of the full triple table, stored as
//!   paged columns. OIDs are assigned in order of appearance, so storage
//!   order is uncorrelated with access paths — the paper's "direct cause of
//!   non-locality in RDF query plans".
//!
//! * **Clustered / self-organizing** ([`ClusteredStore`]) — after schema
//!   discovery, [`reorganize`] renumbers subject OIDs so that subjects of
//!   the same characteristic set are contiguous (optionally sub-ordered by a
//!   sort-key property), and sorts string-literal OIDs by value. Regular
//!   triples then live in per-class [`ClassSegment`]s: aligned columns over
//!   an *implicit* dense subject range, with NULLs for missing `0..1`
//!   attributes and side tables for multi-valued properties. Irregular
//!   triples stay in a (much smaller) permutation-indexed triple table.
//!
//! Zone maps come for free from the column builders and enable the
//! cross-table date pushdown of the paper's Table I experiment.
//!
//! Writes after organization land in the [`DeltaStore`] ([`delta`]): sorted
//! in-memory insert runs plus a tombstone set, sequenced for MVCC-lite
//! snapshot reads. The engine unions delta runs with base scans and filters
//! tombstones; a reorganization collapses the delta into a fresh base.

pub mod baseline;
pub mod clustered;
pub mod delta;
pub mod generation;
pub mod manifest;
pub mod perm;
pub mod reorg;
pub mod triple_set;
pub mod wal;

pub use baseline::BaselineStore;
pub use clustered::{
    build_clustered, build_clustered_with, ClassSegment, ClusteredStore, MultiTable,
};
pub use delta::{DeltaStore, DeltaView, DeltaWrite, Snapshot};
pub use generation::{DictPin, GenerationHandle, StoreGeneration};
pub use manifest::{LayoutFlags, Manifest, StoreSnapshot};
pub use perm::{Order, PermIndex};
pub use reorg::{reorganize, ClusterSpec, ReorgReport};
pub use triple_set::{encode_term_skolemized, encode_triple_skolemized, TripleSet};
pub use wal::{SyncPolicy, WalFormat, WalRecord, WalWriter};
