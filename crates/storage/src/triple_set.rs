//! The in-memory staging area: parsed, dictionary-encoded triples.

use sordf_model::{ntriples, Dictionary, ModelError, Term, TermTriple, Triple};

/// A dictionary plus the encoded triples, in parse order. This is the input
/// to both store builders and to schema discovery.
#[derive(Debug, Default, Clone)]
pub struct TripleSet {
    pub dict: Dictionary,
    pub triples: Vec<Triple>,
}

impl TripleSet {
    pub fn new() -> TripleSet {
        TripleSet::default()
    }

    /// Number of loaded triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Encode and add one term triple. Blank nodes are *skolemized* into
    /// IRIs (`urn:sordf:blank:<label>`) so that blank subjects participate
    /// in subject clustering like any other subject.
    pub fn add(&mut self, t: &TermTriple) -> Result<(), ModelError> {
        let enc = self.encode(t)?;
        self.triples.push(enc);
        Ok(())
    }

    /// Encode one term triple against this set's dictionary *without*
    /// adding it to the base triples — the write path of the delta store
    /// (new IRIs/strings are interned; the triple itself lands in a delta
    /// run, not in the base set).
    pub fn encode(&mut self, t: &TermTriple) -> Result<Triple, ModelError> {
        encode_triple_skolemized(&self.dict, t)
    }

    /// Load an N-Triples document.
    pub fn load_ntriples(&mut self, text: &str) -> Result<usize, ModelError> {
        let parsed = ntriples::parse_document(text)?;
        for t in &parsed {
            self.add(t)?;
        }
        Ok(parsed.len())
    }

    /// Bulk-add term triples (from a generator).
    pub fn extend_terms<'a>(
        &mut self,
        triples: impl IntoIterator<Item = &'a TermTriple>,
    ) -> Result<usize, ModelError> {
        let mut n = 0;
        for t in triples {
            self.add(t)?;
            n += 1;
        }
        Ok(n)
    }

    /// A copy of the triples sorted in SPO order (the order schema discovery
    /// and the clustered builder require).
    pub fn sorted_spo(&self) -> Vec<Triple> {
        let mut v = self.triples.clone();
        v.sort_unstable_by_key(|t| t.key_spo());
        v
    }

    /// Deduplicate identical triples (RDF graphs are sets).
    pub fn dedup(&mut self) {
        self.triples.sort_unstable_by_key(|t| t.key_spo());
        self.triples.dedup();
    }
}

/// Encode one term against a bare dictionary, skolemizing blank nodes into
/// IRIs the same way [`TripleSet::add`] does — the write path of a live
/// generation interns against the generation's dictionary directly, without
/// owning a `TripleSet`.
pub fn encode_term_skolemized(dict: &Dictionary, t: &Term) -> Result<sordf_model::Oid, ModelError> {
    match t {
        Term::Blank(label) => Ok(dict.encode_iri(&Term::skolem_blank_iri(label))),
        other => dict.encode_term(other),
    }
}

/// Encode one term triple against a bare dictionary (see
/// [`encode_term_skolemized`]).
pub fn encode_triple_skolemized(dict: &Dictionary, t: &TermTriple) -> Result<Triple, ModelError> {
    let s = encode_term_skolemized(dict, &t.s)?;
    let p = encode_term_skolemized(dict, &t.p)?;
    let o = encode_term_skolemized(dict, &t.o)?;
    Ok(Triple::new(s, p, o))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Oid;

    #[test]
    fn load_and_encode() {
        let mut ts = TripleSet::new();
        let n = ts
            .load_ntriples(
                r#"<http://e/s1> <http://e/p> <http://e/o> .
<http://e/s1> <http://e/q> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b <http://e/p> <http://e/s1> ."#,
            )
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(ts.len(), 3);
        // Blank skolemized to an IRI.
        assert!(ts.dict.iri_oid("urn:sordf:blank:b").is_some());
        assert_eq!(ts.triples[1].o, Oid::from_int(42).unwrap());
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut ts = TripleSet::new();
        ts.load_ntriples(
            "<http://e/s> <http://e/p> <http://e/o> .\n<http://e/s> <http://e/p> <http://e/o> .",
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
        ts.dedup();
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn sorted_spo_is_sorted() {
        let mut ts = TripleSet::new();
        ts.load_ntriples(
            "<http://e/b> <http://e/p> <http://e/o> .\n<http://e/a> <http://e/p> <http://e/o> .",
        )
        .unwrap();
        let sorted = ts.sorted_spo();
        assert!(sorted.windows(2).all(|w| w[0].key_spo() <= w[1].key_spo()));
        // Original parse order untouched.
        assert_ne!(ts.triples[0].s, ts.triples[1].s);
    }
}
