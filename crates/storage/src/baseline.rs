//! The exhaustive-indexing baseline store (MonetDB+HSP / RDF-3X layout).

use crate::perm::{Order, PermIndex};
use sordf_columnar::{BufferPool, ColumnEncoding, DiskManager, PageLease};
use sordf_model::{Oid, Triple};
use std::sync::Arc;

/// All six sorted permutation projections over one triple table.
///
/// This is the paper's baseline: "current state-of-the-art RDF stores such
/// as RDF-3X create exhaustive indexes for all permutations" — plenty of
/// access paths, none of which gives the locality of a clustered relational
/// table. The same structure (over far fewer triples) stores the *irregular*
/// remainder of a clustered database.
#[derive(Debug, Clone)]
pub struct BaselineStore {
    perms: Vec<PermIndex>,
    n_triples: usize,
    encoding: ColumnEncoding,
    /// Leases this store's pages from the disk manager: when the last clone
    /// (i.e. the last generation pin referencing this store) drops, the
    /// pages return to the free list. Shared across clones so the extent is
    /// freed exactly once.
    _lease: Arc<PageLease>,
}

impl BaselineStore {
    /// Build all six projections.
    pub fn build(disk: &Arc<DiskManager>, triples: &[Triple]) -> BaselineStore {
        BaselineStore::build_with(disk, triples, ColumnEncoding::default())
    }

    /// [`BaselineStore::build`] with an explicit page-encoding scheme.
    pub fn build_with(
        disk: &Arc<DiskManager>,
        triples: &[Triple],
        encoding: ColumnEncoding,
    ) -> BaselineStore {
        let perms: Vec<PermIndex> = Order::ALL
            .iter()
            .map(|&o| PermIndex::build_with(disk, triples, o, encoding))
            .collect();
        let mut pages = Vec::new();
        for perm in &perms {
            for i in 0..3 {
                pages.extend_from_slice(perm.col(i).page_ids());
            }
        }
        BaselineStore {
            perms,
            n_triples: triples.len(),
            encoding,
            _lease: Arc::new(PageLease::new(Arc::clone(disk), pages)),
        }
    }

    /// The page-encoding scheme this store was built with.
    pub fn encoding(&self) -> ColumnEncoding {
        self.encoding
    }

    /// Bytes a scan of all six projections must touch (encoded size).
    pub fn used_bytes(&self) -> usize {
        self.perms.iter().map(|p| p.used_bytes()).sum()
    }

    /// Bytes the store would occupy without page compression.
    pub fn plain_bytes(&self) -> usize {
        self.perms.iter().map(|p| p.plain_bytes()).sum()
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.n_triples
    }

    pub fn is_empty(&self) -> bool {
        self.n_triples == 0
    }

    /// The projection sorted under `order`.
    pub fn perm(&self, order: Order) -> &PermIndex {
        // sordf-lint: allow(L3) — Order::ALL enumerates every Order variant, so position always hits.
        &self.perms[Order::ALL.iter().position(|&o| o == order).unwrap()]
    }

    /// Does the store contain this exact triple?
    pub fn contains(&self, pool: &BufferPool, t: &Triple) -> bool {
        !self.perm(Order::Spo).range3(pool, t.s, t.p, t.o).is_empty()
    }

    /// All (s, o) pairs for predicate `p`, s-sorted (a PSO scan).
    pub fn scan_p(&self, pool: &BufferPool, p: Oid) -> Vec<(Oid, Oid)> {
        let idx = self.perm(Order::Pso);
        let r = idx.range1(pool, p);
        idx.pairs(pool, r)
    }

    /// All subjects with `p = o`, sorted (a POS lookup).
    pub fn subjects_pq(&self, pool: &BufferPool, p: Oid, o: Oid) -> Vec<Oid> {
        let idx = self.perm(Order::Pos);
        let r = idx.range2(pool, p, o);
        idx.col(2)
            .to_vec(pool, r)
            .into_iter()
            .map(Oid::from_raw)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Oid::iri(s), Oid::iri(p), Oid::iri(o))
    }

    fn setup(triples: &[Triple]) -> (Arc<DiskManager>, BufferPool, BaselineStore) {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let store = BaselineStore::build(&dm, triples);
        let pool = BufferPool::new(Arc::clone(&dm), 256);
        (dm, pool, store)
    }

    #[test]
    fn contains_and_scan() {
        let triples = vec![t(1, 10, 100), t(2, 10, 101), t(1, 11, 102)];
        let (_dm, pool, store) = setup(&triples);
        assert_eq!(store.len(), 3);
        assert!(store.contains(&pool, &triples[0]));
        assert!(!store.contains(&pool, &t(9, 9, 9)));
        let scan = store.scan_p(&pool, Oid::iri(10));
        assert_eq!(
            scan,
            vec![(Oid::iri(1), Oid::iri(100)), (Oid::iri(2), Oid::iri(101))]
        );
    }

    #[test]
    fn pos_lookup() {
        let triples = vec![t(1, 10, 100), t(2, 10, 100), t(3, 10, 101)];
        let (_dm, pool, store) = setup(&triples);
        assert_eq!(
            store.subjects_pq(&pool, Oid::iri(10), Oid::iri(100)),
            vec![Oid::iri(1), Oid::iri(2)]
        );
        assert!(store
            .subjects_pq(&pool, Oid::iri(10), Oid::iri(999))
            .is_empty());
    }
}
