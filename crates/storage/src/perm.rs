//! Sorted permutation projections of the triple table.
//!
//! A [`PermIndex`] stores one of the six (S,P,O) orders as three aligned
//! paged columns, sorted lexicographically by (key0, key1, key2). Prefix
//! lookups use zone-map-assisted binary search: `range1(a)` finds the run of
//! rows with key0 = a, `range2(a, b)` narrows to key1 = b, and
//! `range2_between` supports range predicates on the second key — the
//! access pattern of a `POS` scan with an object range restriction.

use sordf_columnar::{BufferPool, Column, ColumnEncoding, DiskManager};
use sordf_model::{Oid, Triple};
use std::ops::Range;

/// One of the six sort orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    Spo,
    Sop,
    Pso,
    Pos,
    Osp,
    Ops,
}

impl Order {
    /// All six orders (the "exhaustive indexing" set).
    pub const ALL: [Order; 6] = [
        Order::Spo,
        Order::Sop,
        Order::Pso,
        Order::Pos,
        Order::Osp,
        Order::Ops,
    ];

    /// The sort key of a triple under this order.
    #[inline]
    pub fn key(self, t: &Triple) -> (Oid, Oid, Oid) {
        match self {
            Order::Spo => t.key_spo(),
            Order::Sop => t.key_sop(),
            Order::Pso => t.key_pso(),
            Order::Pos => t.key_pos(),
            Order::Osp => t.key_osp(),
            Order::Ops => t.key_ops(),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Order::Spo => "SPO",
            Order::Sop => "SOP",
            Order::Pso => "PSO",
            Order::Pos => "POS",
            Order::Osp => "OSP",
            Order::Ops => "OPS",
        }
    }
}

/// A triple projection sorted under one [`Order`].
#[derive(Debug, Clone)]
pub struct PermIndex {
    pub order: Order,
    /// The three key columns in sort-major order (e.g. for PSO:
    /// `cols[0]` = P, `cols[1]` = S, `cols[2]` = O).
    cols: [Column; 3],
    len: usize,
}

impl PermIndex {
    /// Build from triples; sorts a scratch copy internally.
    pub fn build(disk: &DiskManager, triples: &[Triple], order: Order) -> PermIndex {
        PermIndex::build_with(disk, triples, order, ColumnEncoding::default())
    }

    /// [`PermIndex::build`] with an explicit page-encoding scheme.
    pub fn build_with(
        disk: &DiskManager,
        triples: &[Triple],
        order: Order,
        encoding: ColumnEncoding,
    ) -> PermIndex {
        let mut keys: Vec<(Oid, Oid, Oid)> = triples.iter().map(|t| order.key(t)).collect();
        keys.sort_unstable();
        let mut builders = [
            sordf_columnar::ColumnBuilder::new_with(disk, encoding),
            sordf_columnar::ColumnBuilder::new_with(disk, encoding),
            sordf_columnar::ColumnBuilder::new_with(disk, encoding),
        ];
        for &(a, b, c) in &keys {
            builders[0].push(a.raw());
            builders[1].push(b.raw());
            builders[2].push(c.raw());
        }
        let [b0, b1, b2] = builders;
        PermIndex {
            order,
            cols: [b0.finish(), b1.finish(), b2.finish()],
            len: keys.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The i-th key column (0 = sort-major).
    pub fn col(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    /// Bytes a full scan of this projection must touch (encoded size).
    pub fn used_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.used_bytes()).sum()
    }

    /// Bytes the projection would occupy without page compression.
    pub fn plain_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.plain_bytes()).sum()
    }

    /// Rows where key0 == `a`.
    pub fn range1(&self, pool: &BufferPool, a: Oid) -> Range<usize> {
        let lo = self.cols[0].lower_bound(pool, a.raw());
        let hi = self.cols[0].upper_bound(pool, a.raw());
        lo..hi
    }

    /// Rows where key0 == `a` and key1 == `b`.
    pub fn range2(&self, pool: &BufferPool, a: Oid, b: Oid) -> Range<usize> {
        let r = self.range1(pool, a);
        let lo = self.cols[1].lower_bound_in(pool, r.clone(), b.raw());
        let hi = self.cols[1].upper_bound_in(pool, r, b.raw());
        lo..hi
    }

    /// Rows where key0 == `a` and `lo <= key1 <= hi` (inclusive).
    pub fn range2_between(&self, pool: &BufferPool, a: Oid, lo: Oid, hi: Oid) -> Range<usize> {
        let r = self.range1(pool, a);
        let start = self.cols[1].lower_bound_in(pool, r.clone(), lo.raw());
        let end = self.cols[1].upper_bound_in(pool, r, hi.raw());
        start..end.max(start)
    }

    /// Rows where key0 == `a`, key1 == `b`, key2 == `c` (existence checks).
    pub fn range3(&self, pool: &BufferPool, a: Oid, b: Oid, c: Oid) -> Range<usize> {
        let r = self.range2(pool, a, b);
        let lo = self.cols[2].lower_bound_in(pool, r.clone(), c.raw());
        let hi = self.cols[2].upper_bound_in(pool, r, c.raw());
        lo..hi
    }

    /// Materialize `(key1, key2)` pairs of a row range. Chunk-at-a-time:
    /// the two columns share page geometry, so their chunks pair up in
    /// lockstep, one pin per page per column.
    pub fn pairs(&self, pool: &BufferPool, range: Range<usize>) -> Vec<(Oid, Oid)> {
        let mut out = Vec::with_capacity(range.len());
        Column::for_each_chunk_pair(&self.cols[1], &self.cols[2], pool, range, |c1, c2| {
            out.extend(
                c1.values()
                    .iter()
                    .zip(c2.values())
                    .map(|(&a, &b)| (Oid::from_raw(a), Oid::from_raw(b))),
            );
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Oid::iri(s), Oid::iri(p), Oid::iri(o))
    }

    fn setup(triples: &[Triple], order: Order) -> (Arc<DiskManager>, BufferPool, PermIndex) {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let idx = PermIndex::build(&dm, triples, order);
        let pool = BufferPool::new(Arc::clone(&dm), 128);
        (dm, pool, idx)
    }

    #[test]
    fn pso_prefix_lookup() {
        let triples = vec![t(1, 10, 100), t(2, 10, 101), t(3, 11, 102), t(1, 11, 103)];
        let (_dm, pool, idx) = setup(&triples, Order::Pso);
        let r = idx.range1(&pool, Oid::iri(10));
        assert_eq!(r, 0..2);
        assert_eq!(
            idx.pairs(&pool, r),
            vec![(Oid::iri(1), Oid::iri(100)), (Oid::iri(2), Oid::iri(101))]
        );
        let r11 = idx.range1(&pool, Oid::iri(11));
        assert_eq!(
            idx.pairs(&pool, r11),
            vec![(Oid::iri(1), Oid::iri(103)), (Oid::iri(3), Oid::iri(102))]
        );
        assert!(idx.range1(&pool, Oid::iri(99)).is_empty());
    }

    #[test]
    fn pos_object_range() {
        // p=10 with objects 100..200 step 10 over subjects 0..10
        let triples: Vec<Triple> = (0..10).map(|i| t(i, 10, 100 + i * 10)).collect();
        let (_dm, pool, idx) = setup(&triples, Order::Pos);
        let r = idx.range2_between(&pool, Oid::iri(10), Oid::iri(120), Oid::iri(150));
        let pairs = idx.pairs(&pool, r);
        // key1 = O, key2 = S under POS
        assert_eq!(
            pairs.iter().map(|&(o, _)| o).collect::<Vec<_>>(),
            vec![Oid::iri(120), Oid::iri(130), Oid::iri(140), Oid::iri(150)]
        );
    }

    #[test]
    fn range2_and_range3() {
        let triples = vec![t(1, 10, 5), t(1, 10, 6), t(1, 11, 7), t(2, 10, 5)];
        let (_dm, pool, idx) = setup(&triples, Order::Spo);
        assert_eq!(idx.range2(&pool, Oid::iri(1), Oid::iri(10)).len(), 2);
        assert_eq!(
            idx.range3(&pool, Oid::iri(1), Oid::iri(10), Oid::iri(6))
                .len(),
            1
        );
        assert!(idx
            .range3(&pool, Oid::iri(1), Oid::iri(10), Oid::iri(7))
            .is_empty());
    }

    #[test]
    fn all_orders_agree_on_membership() {
        let triples: Vec<Triple> = (0..200).map(|i| t(i % 7, 10 + i % 3, 100 + i)).collect();
        let dm = Arc::new(DiskManager::temp().unwrap());
        let pool = BufferPool::new(Arc::clone(&dm), 256);
        for order in Order::ALL {
            let idx = PermIndex::build(&dm, &triples, order);
            assert_eq!(idx.len(), triples.len(), "{}", order.name());
            for t in triples.iter().take(20) {
                let (a, b, c) = order.key(t);
                assert_eq!(idx.range3(&pool, a, b, c).len(), 1, "{}", order.name());
            }
        }
    }

    #[test]
    fn empty_index() {
        let (_dm, pool, idx) = setup(&[], Order::Pso);
        assert!(idx.is_empty());
        assert!(idx.range1(&pool, Oid::iri(1)).is_empty());
    }
}
