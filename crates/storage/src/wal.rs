//! The per-database write-ahead log.
//!
//! Every `insert`/`delete`/`load` batch appends one length+checksum-framed
//! record *before* it is applied to the in-memory
//! [`DeltaStore`](crate::DeltaStore); recovery replays intact records in
//! order and
//! truncates the log at the first torn or corrupt frame. Records carry the
//! batch's delta **sequence number** and the triples in N-Triples text —
//! term-level, not OID-level, because a generation swap renumbers the
//! dictionary and OIDs in a log would go stale.
//!
//! ## File format
//!
//! ```text
//! [magic "SORDFWAL"][version u32 LE][reserved u32]
//! frame*: [len u32 LE][crc32 u32 LE][payload: len bytes]
//! payload: [seq u64 LE][kind u8][body]
//! ```
//!
//! The record body comes in two self-describing encodings, selected per
//! record by the kind byte's high bit ([`WalFormat`]):
//!
//! * **Text** (high bit clear): the batch as N-Triples UTF-8 text — the v1
//!   format, trivially inspectable with a pager.
//! * **Binary** (high bit set): a varint-framed per-record term table
//!   (each distinct term once, tagged by type) followed by the triples as
//!   varint indexes into it. Repetitive batches shrink several-fold and
//!   replay skips text parsing entirely.
//!
//! Recovery auto-detects the encoding record by record, so one log may
//! freely mix both (e.g. after [`WalWriter::set_format`] mid-run).
//!
//! The CRC (IEEE 802.3, same polynomial as gzip) covers the payload only;
//! `len` is sanity-bounded before allocation so a corrupt length can't ask
//! for gigabytes. A *torn* frame — short header, short payload, CRC
//! mismatch, or unparseable text — ends recovery: everything before it is
//! replayed, the file is truncated back to the last intact frame, and new
//! appends continue from there. An fsync'd (acknowledged) record is never
//! behind a torn one, so acknowledged writes are never dropped.
//!
//! ## Durability policy
//!
//! [`SyncPolicy`] decides when appends reach stable storage: `Always`
//! fsyncs every batch (each return from a write IS the acknowledgment),
//! `IntervalMs(n)` fsyncs at most every `n` ms (bounded loss window),
//! `Never` leaves it to the OS (crash loses the tail; recovery still gets
//! a consistent prefix).

use sordf_columnar::crash_point;
use sordf_model::{ntriples, FxHashMap, Literal, Term, TermTriple, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

const MAGIC: &[u8; 8] = b"SORDFWAL";
/// High bit of the kind byte: the record body is [`WalFormat::Binary`].
const BINARY_KIND: u8 = 0x80;
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
/// Sanity bound on one frame's payload (a batch of N-Triples text).
const MAX_FRAME_LEN: u32 = 1 << 30;

/// IEEE 802.3 CRC-32, table-driven; the table is built at compile time so
/// the crate stays dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// When WAL appends reach stable storage. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every batch: zero acknowledged-write loss.
    Always,
    /// fsync at most every `n` milliseconds (checked on the write path —
    /// no background flusher thread): bounded loss window.
    IntervalMs(u64),
    /// Never fsync explicitly; the OS flushes eventually.
    Never,
}

/// On-disk encoding of a WAL record's body. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalFormat {
    /// N-Triples text: human-readable, the v1 format.
    #[default]
    Text,
    /// Varint-framed binary: a per-record distinct-term table plus the
    /// triples as varint indexes into it — smaller and faster to replay.
    Binary,
}

// ---- the binary record body ------------------------------------------------
//
// [n_terms varint] term* [n_triples varint] (s p o varint-index)*
// term: [tag u8][body]
//   0 Iri / 1 Blank / 2 Str:       varint len + UTF-8 bytes
//   3 Str with lang:               varint len + bytes, varint len + bytes
//   4 Int / 5 Decimal / 6 Date / 7 DateTime: zigzag varint
//   8 Bool:                        one byte

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Bounds- and width-checked varint read; `None` on truncation or overflow.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len)?;
    let s = bytes.get(*pos..end)?;
    *pos = end;
    String::from_utf8(s.to_vec()).ok()
}

fn write_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Iri(iri) => {
            out.push(0);
            write_str(out, iri);
        }
        Term::Blank(label) => {
            out.push(1);
            write_str(out, label);
        }
        Term::Literal(Literal { value }) => match value {
            Value::Str {
                lexical,
                lang: None,
            } => {
                out.push(2);
                write_str(out, lexical);
            }
            Value::Str {
                lexical,
                lang: Some(lang),
            } => {
                out.push(3);
                write_str(out, lexical);
                write_str(out, lang);
            }
            Value::Int(v) => {
                out.push(4);
                write_varint(out, zigzag(*v));
            }
            Value::Decimal(v) => {
                out.push(5);
                write_varint(out, zigzag(*v));
            }
            Value::Date(v) => {
                out.push(6);
                write_varint(out, zigzag(*v));
            }
            Value::DateTime(v) => {
                out.push(7);
                write_varint(out, zigzag(*v));
            }
            Value::Bool(b) => {
                out.push(8);
                out.push(u8::from(*b));
            }
        },
    }
}

fn read_term(bytes: &[u8], pos: &mut usize) -> Option<Term> {
    let &tag = bytes.get(*pos)?;
    *pos += 1;
    Some(match tag {
        0 => Term::Iri(read_str(bytes, pos)?),
        1 => Term::Blank(read_str(bytes, pos)?),
        2 => Term::Literal(Literal::new(Value::Str {
            lexical: read_str(bytes, pos)?,
            lang: None,
        })),
        3 => Term::Literal(Literal::new(Value::Str {
            lexical: read_str(bytes, pos)?,
            lang: Some(read_str(bytes, pos)?),
        })),
        4 => Term::Literal(Literal::new(Value::Int(unzigzag(read_varint(bytes, pos)?)))),
        5 => Term::Literal(Literal::new(Value::Decimal(unzigzag(read_varint(
            bytes, pos,
        )?)))),
        6 => Term::Literal(Literal::new(Value::Date(unzigzag(read_varint(
            bytes, pos,
        )?)))),
        7 => Term::Literal(Literal::new(Value::DateTime(unzigzag(read_varint(
            bytes, pos,
        )?)))),
        8 => {
            let &b = bytes.get(*pos)?;
            *pos += 1;
            if b > 1 {
                return None;
            }
            Term::Literal(Literal::new(Value::Bool(b == 1)))
        }
        _ => return None,
    })
}

/// Serialize a batch as the binary record body.
fn encode_binary(out: &mut Vec<u8>, triples: &[TermTriple]) {
    let mut index: FxHashMap<&Term, u64> = FxHashMap::default();
    let mut table: Vec<&Term> = Vec::new();
    let mut ids = Vec::with_capacity(triples.len() * 3);
    for t in triples {
        for term in [&t.s, &t.p, &t.o] {
            let next = table.len() as u64;
            let id = *index.entry(term).or_insert_with(|| {
                table.push(term);
                next
            });
            ids.push(id);
        }
    }
    write_varint(out, table.len() as u64);
    for term in table {
        write_term(out, term);
    }
    write_varint(out, triples.len() as u64);
    for id in ids {
        write_varint(out, id);
    }
}

/// Parse a binary record body; `None` on any malformation (the caller
/// treats it as a torn frame).
fn decode_binary(bytes: &[u8]) -> Option<Vec<TermTriple>> {
    let mut pos = 0usize;
    let n_terms = read_varint(bytes, &mut pos)? as usize;
    // Each term takes at least 2 bytes: the table can't outnumber the body.
    if n_terms > bytes.len() {
        return None;
    }
    let mut table = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        table.push(read_term(bytes, &mut pos)?);
    }
    let n_triples = read_varint(bytes, &mut pos)? as usize;
    if n_triples > bytes.len() {
        return None;
    }
    let mut out = Vec::with_capacity(n_triples);
    for _ in 0..n_triples {
        let mut spo = [0usize; 3];
        for slot in &mut spo {
            let id = read_varint(bytes, &mut pos)? as usize;
            if id >= table.len() {
                return None;
            }
            *slot = id;
        }
        out.push(TermTriple::new(
            table[spo[0]].clone(),
            table[spo[1]].clone(),
            table[spo[2]].clone(),
        ));
    }
    if pos != bytes.len() {
        return None; // trailing garbage: not a frame we wrote
    }
    Some(out)
}

/// One logged write batch, in term (not OID) space.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An `insert_terms` batch.
    Insert(Vec<TermTriple>),
    /// A `delete_triples`/`delete_matching` batch (the resolved triples).
    Delete(Vec<TermTriple>),
    /// A `load_terms` batch (pre-organization staging writes: collapses
    /// into the base instead of the delta on replay, like the original).
    Load(Vec<TermTriple>),
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Insert(_) => 0,
            WalRecord::Delete(_) => 1,
            WalRecord::Load(_) => 2,
        }
    }

    fn triples(&self) -> &[TermTriple] {
        match self {
            WalRecord::Insert(t) | WalRecord::Delete(t) | WalRecord::Load(t) => t,
        }
    }

    fn from_kind(kind: u8, triples: Vec<TermTriple>) -> Option<WalRecord> {
        match kind {
            0 => Some(WalRecord::Insert(triples)),
            1 => Some(WalRecord::Delete(triples)),
            2 => Some(WalRecord::Load(triples)),
            _ => None,
        }
    }
}

/// One record recovered from the log: `(lsn, seq, record)`, `lsn` being
/// the file offset just *after* the record's frame.
pub type RecoveredRecord = (u64, u64, WalRecord);

/// Append side of the log. Construct via [`WalWriter::create`] (fresh log)
/// or [`WalWriter::open_recover`] (replay + truncate-at-first-tear).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Byte offset of the log end == the LSN of the next record.
    end: u64,
    /// Unsynced appends are pending.
    dirty: bool,
    last_sync: Instant,
    /// Body encoding for *subsequent* appends (recovery auto-detects per
    /// record, so a log may mix formats).
    format: WalFormat,
}

impl WalWriter {
    /// Create (truncate) a fresh log at `path` and fsync its header, so a
    /// crash right after creation recovers an empty log, not a missing one.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        WalWriter::create_with(path, WalFormat::default())
    }

    /// [`WalWriter::create`] with an explicit body encoding for appends.
    pub fn create_with(path: &Path, format: WalFormat) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            end: HEADER_LEN,
            dirty: false,
            last_sync: Instant::now(),
            format,
        })
    }

    /// Open an existing log (or create one if missing), replaying every
    /// intact record and truncating the file back to the last intact frame.
    /// Returns the writer positioned to append, plus the recovered records
    /// as `(lsn, seq, record)` — `lsn` being the offset *after* the frame.
    pub fn open_recover(path: &Path) -> io::Result<(WalWriter, Vec<RecoveredRecord>)> {
        if !path.exists() {
            return Ok((WalWriter::create(path)?, Vec::new()));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        let header_ok = {
            let mut read = 0usize;
            loop {
                match file.read(&mut header[read..]) {
                    Ok(0) => break read == header.len(),
                    Ok(n) => {
                        read += n;
                        if read == header.len() {
                            break true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        };
        if !header_ok
            || &header[..8] != MAGIC
            || u32::from_le_bytes([header[8], header[9], header[10], header[11]]) != VERSION
        {
            // The header itself is damaged: nothing in the file can be
            // trusted, start over with an empty log.
            drop(file);
            return Ok((WalWriter::create(path)?, Vec::new()));
        }
        let mut records = Vec::new();
        let mut good_end = HEADER_LEN;
        let mut buf = Vec::new();
        loop {
            let mut frame_header = [0u8; 8];
            if !read_exact_or_eof(&mut file, &mut frame_header)? {
                break;
            }
            let len = u32::from_le_bytes([
                frame_header[0],
                frame_header[1],
                frame_header[2],
                frame_header[3],
            ]);
            let crc = u32::from_le_bytes([
                frame_header[4],
                frame_header[5],
                frame_header[6],
                frame_header[7],
            ]);
            if !(9..=MAX_FRAME_LEN).contains(&len) {
                break;
            }
            buf.clear();
            buf.resize(len as usize, 0);
            if !read_exact_or_eof(&mut file, &mut buf)? {
                break;
            }
            if crc32(&buf) != crc {
                break;
            }
            let seq = u64::from_le_bytes([
                buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6], buf[7],
            ]);
            let kind = buf[8];
            let triples = if kind & BINARY_KIND != 0 {
                match decode_binary(&buf[9..]) {
                    Some(t) => t,
                    None => break,
                }
            } else {
                let Ok(text) = std::str::from_utf8(&buf[9..]) else {
                    break;
                };
                match ntriples::parse_document(text) {
                    Ok(t) => t,
                    Err(_) => break,
                }
            };
            let Some(record) = WalRecord::from_kind(kind & !BINARY_KIND, triples) else {
                break;
            };
            good_end += 8 + len as u64;
            records.push((good_end, seq, record));
        }
        // Truncate the torn/corrupt tail so appends continue from the last
        // intact frame (and a later recovery never re-reads the tear).
        file.set_len(good_end)?;
        file.sync_data()?;
        file.seek(SeekFrom::Start(good_end))?;
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                end: good_end,
                dirty: false,
                last_sync: Instant::now(),
                format: WalFormat::default(),
            },
            records,
        ))
    }

    /// The body encoding of subsequent appends.
    pub fn format(&self) -> WalFormat {
        self.format
    }

    /// Switch the body encoding for subsequent appends. Takes effect
    /// immediately; already-written records are untouched (recovery
    /// auto-detects per record).
    pub fn set_format(&mut self, format: WalFormat) {
        self.format = format;
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The current end-of-log offset (the next record's LSN).
    pub fn lsn(&self) -> u64 {
        self.end
    }

    /// Append one record; returns its LSN (offset after the frame). The
    /// record is in the OS page cache after this returns — call
    /// [`WalWriter::sync`] (or let [`WalWriter::maybe_sync`] decide) to
    /// make it crash-durable.
    pub fn append(&mut self, seq: u64, record: &WalRecord) -> io::Result<u64> {
        let mut payload = Vec::with_capacity(64 * record.triples().len() + 9);
        payload.extend_from_slice(&seq.to_le_bytes());
        match self.format {
            WalFormat::Text => {
                payload.push(record.kind());
                ntriples::write_document(&mut payload, record.triples())?;
            }
            WalFormat::Binary => {
                payload.push(record.kind() | BINARY_KIND);
                encode_binary(&mut payload, record.triples());
            }
        }
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_LEN)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "WAL batch too large"))?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        crash_point!("wal.pre_append");
        self.file.write_all(&frame)?;
        crash_point!("wal.post_append");
        self.end += frame.len() as u64;
        self.dirty = true;
        Ok(self.end)
    }

    /// Force appended records to stable storage (the acknowledgment
    /// barrier). No-op when nothing is pending.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        crash_point!("wal.pre_sync");
        self.file.sync_data()?;
        crash_point!("wal.post_sync");
        self.dirty = false;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Apply the durability policy after an append.
    pub fn maybe_sync(&mut self, policy: SyncPolicy) -> io::Result<()> {
        match policy {
            SyncPolicy::Always => self.sync(),
            SyncPolicy::IntervalMs(ms) => {
                if self.dirty && self.last_sync.elapsed().as_millis() >= u128::from(ms) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        }
    }
}

/// Read exactly `buf.len()` bytes from the current position; `Ok(false)` on
/// a clean or mid-buffer EOF (a torn tail), `Err` on real I/O failure.
fn read_exact_or_eof(file: &mut File, buf: &mut [u8]) -> io::Result<bool> {
    let mut read = 0usize;
    while read < buf.len() {
        match file.read(&mut buf[read..]) {
            Ok(0) => return Ok(false),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Term;

    fn tt(i: u64) -> TermTriple {
        TermTriple::new(
            Term::iri(format!("http://e/s{i}")),
            Term::iri("http://e/p"),
            Term::int(i as i64),
        )
    }

    fn temp_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — unique temp names only.
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("sordf-wal-{tag}-{}-{n}.wal", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            // sordf-lint: allow(L7) — best-effort temp cleanup in a test.
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_recover_roundtrip() {
        let path = temp_path("roundtrip");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0), tt(1)]))
            .unwrap();
        wal.append(2, &WalRecord::Delete(vec![tt(0)])).unwrap();
        wal.append(3, &WalRecord::Load(vec![tt(2)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (wal, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].1, 1);
        assert_eq!(records[0].2, WalRecord::Insert(vec![tt(0), tt(1)]));
        assert_eq!(records[1].2, WalRecord::Delete(vec![tt(0)]));
        assert_eq!(records[2].2, WalRecord::Load(vec![tt(2)]));
        assert_eq!(records[2].0, wal.lsn(), "last record's lsn is the log end");
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_path("torn");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        let good_end = wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.append(3, &WalRecord::Insert(vec![tt(2)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Tear the last frame: chop 3 bytes off the file.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let (wal, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 2, "the torn record is dropped");
        assert_eq!(records.last().unwrap().1, 2);
        assert_eq!(
            wal.lsn(),
            good_end,
            "file truncated to the last intact frame"
        );
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_end);
    }

    #[test]
    fn corrupt_frame_is_rejected_and_later_frames_dropped() {
        let path = temp_path("corrupt");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        let end1 = wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.append(3, &WalRecord::Insert(vec![tt(2)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip one payload byte of the second record: its CRC must reject
        // it, and record 3 (though intact on disk) must not be replayed —
        // the log is only trustworthy up to the first tear.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = end1 as usize + 8 + 9; // second frame's first text byte
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (wal, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 1, "only the prefix before the tear");
        assert_eq!(wal.lsn(), end1);
    }

    #[test]
    fn appends_continue_after_recovery() {
        let path = temp_path("continue");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (mut wal, _) = WalWriter::open_recover(&path).unwrap();
        wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.iter().map(|r| r.1).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn damaged_header_restarts_the_log() {
        let path = temp_path("header");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, records) = WalWriter::open_recover(&path).unwrap();
        assert!(records.is_empty(), "an untrusted header empties the log");
        assert_eq!(wal.lsn(), HEADER_LEN);
        wal.append(1, &WalRecord::Insert(vec![tt(9)])).unwrap();
        wal.sync().unwrap();
    }

    #[test]
    fn binary_roundtrip_all_term_types() {
        let path = temp_path("binary");
        let _c = Cleanup(path.clone());
        let exotic = vec![
            TermTriple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/p"),
                Term::Literal(Literal::new(Value::Str {
                    lexical: "bonjour \"le\" monde\n".into(),
                    lang: Some("fr".into()),
                })),
            ),
            TermTriple::new(
                Term::blank("b0"),
                Term::iri("http://e/p"),
                Term::str("plain"),
            ),
            TermTriple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/q"),
                Term::int(-42),
            ),
            TermTriple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/q"),
                Term::literal(Value::Decimal(-13_370_000)),
            ),
            TermTriple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/q"),
                Term::literal(Value::Date(-719_162)),
            ),
            TermTriple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/q"),
                Term::literal(Value::DateTime(1_234_567_890)),
            ),
            TermTriple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/q"),
                Term::literal(Value::Bool(true)),
            ),
        ];
        let mut wal = WalWriter::create_with(&path, WalFormat::Binary).unwrap();
        assert_eq!(wal.format(), WalFormat::Binary);
        wal.append(1, &WalRecord::Insert(exotic.clone())).unwrap();
        wal.append(2, &WalRecord::Delete(vec![exotic[0].clone()]))
            .unwrap();
        wal.append(3, &WalRecord::Load(vec![exotic[1].clone()]))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].2, WalRecord::Insert(exotic.clone()));
        assert_eq!(records[1].2, WalRecord::Delete(vec![exotic[0].clone()]));
        assert_eq!(records[2].2, WalRecord::Load(vec![exotic[1].clone()]));
    }

    #[test]
    fn mixed_format_log_recovers() {
        let path = temp_path("mixed");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        wal.set_format(WalFormat::Binary);
        wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.set_format(WalFormat::Text);
        wal.append(3, &WalRecord::Insert(vec![tt(2)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 3, "formats interleave freely");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.2, WalRecord::Insert(vec![tt(i as u64)]));
        }
    }

    #[test]
    fn binary_is_smaller_for_repetitive_batches() {
        // The term table pays off whenever subjects/predicates repeat —
        // the shape of every real batch.
        let batch: Vec<TermTriple> = (0..64).map(tt).collect();
        let text_path = temp_path("size-text");
        let bin_path = temp_path("size-bin");
        let _c1 = Cleanup(text_path.clone());
        let _c2 = Cleanup(bin_path.clone());
        let mut text = WalWriter::create(&text_path).unwrap();
        let mut bin = WalWriter::create_with(&bin_path, WalFormat::Binary).unwrap();
        let text_end = text.append(1, &WalRecord::Insert(batch.clone())).unwrap();
        let bin_end = bin.append(1, &WalRecord::Insert(batch)).unwrap();
        assert!(
            bin_end * 2 < text_end,
            "binary ({bin_end}) should be well under half of text ({text_end})"
        );
    }

    #[test]
    fn corrupt_binary_body_is_a_tear() {
        let path = temp_path("binary-corrupt");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create_with(&path, WalFormat::Binary).unwrap();
        let end1 = wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Corrupt the second record's body *and* fix up its CRC, so only
        // the binary parser can reject it (a bad term-table index).
        let mut bytes = std::fs::read(&path).unwrap();
        let frame = end1 as usize;
        let len = u32::from_le_bytes(bytes[frame..frame + 4].try_into().unwrap()) as usize;
        bytes[frame + 8 + len - 1] = 0x7F; // last varint index -> out of range
        let crc = crc32(&bytes[frame + 8..frame + 8 + len]);
        bytes[frame + 4..frame + 8].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (wal, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 1, "malformed binary body ends recovery");
        assert_eq!(wal.lsn(), end1);
    }

    #[test]
    fn interval_policy_bounds_sync_frequency() {
        let path = temp_path("interval");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        // A huge interval: maybe_sync leaves the record unsynced...
        wal.maybe_sync(SyncPolicy::IntervalMs(3_600_000)).unwrap();
        // ...while Always forces it out.
        wal.maybe_sync(SyncPolicy::Always).unwrap();
        // A zero interval syncs immediately on the next append.
        wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.maybe_sync(SyncPolicy::IntervalMs(0)).unwrap();
    }
}
