//! The per-database write-ahead log.
//!
//! Every `insert`/`delete`/`load` batch appends one length+checksum-framed
//! record *before* it is applied to the in-memory
//! [`DeltaStore`](crate::DeltaStore); recovery replays intact records in
//! order and
//! truncates the log at the first torn or corrupt frame. Records carry the
//! batch's delta **sequence number** and the triples in N-Triples text —
//! term-level, not OID-level, because a generation swap renumbers the
//! dictionary and OIDs in a log would go stale.
//!
//! ## File format
//!
//! ```text
//! [magic "SORDFWAL"][version u32 LE][reserved u32]
//! frame*: [len u32 LE][crc32 u32 LE][payload: len bytes]
//! payload: [seq u64 LE][kind u8][N-Triples UTF-8 text]
//! ```
//!
//! The CRC (IEEE 802.3, same polynomial as gzip) covers the payload only;
//! `len` is sanity-bounded before allocation so a corrupt length can't ask
//! for gigabytes. A *torn* frame — short header, short payload, CRC
//! mismatch, or unparseable text — ends recovery: everything before it is
//! replayed, the file is truncated back to the last intact frame, and new
//! appends continue from there. An fsync'd (acknowledged) record is never
//! behind a torn one, so acknowledged writes are never dropped.
//!
//! ## Durability policy
//!
//! [`SyncPolicy`] decides when appends reach stable storage: `Always`
//! fsyncs every batch (each return from a write IS the acknowledgment),
//! `IntervalMs(n)` fsyncs at most every `n` ms (bounded loss window),
//! `Never` leaves it to the OS (crash loses the tail; recovery still gets
//! a consistent prefix).

use sordf_columnar::crash_point;
use sordf_model::{ntriples, TermTriple};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

const MAGIC: &[u8; 8] = b"SORDFWAL";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
/// Sanity bound on one frame's payload (a batch of N-Triples text).
const MAX_FRAME_LEN: u32 = 1 << 30;

/// IEEE 802.3 CRC-32, table-driven; the table is built at compile time so
/// the crate stays dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// When WAL appends reach stable storage. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every batch: zero acknowledged-write loss.
    Always,
    /// fsync at most every `n` milliseconds (checked on the write path —
    /// no background flusher thread): bounded loss window.
    IntervalMs(u64),
    /// Never fsync explicitly; the OS flushes eventually.
    Never,
}

/// One logged write batch, in term (not OID) space.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An `insert_terms` batch.
    Insert(Vec<TermTriple>),
    /// A `delete_triples`/`delete_matching` batch (the resolved triples).
    Delete(Vec<TermTriple>),
    /// A `load_terms` batch (pre-organization staging writes: collapses
    /// into the base instead of the delta on replay, like the original).
    Load(Vec<TermTriple>),
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Insert(_) => 0,
            WalRecord::Delete(_) => 1,
            WalRecord::Load(_) => 2,
        }
    }

    fn triples(&self) -> &[TermTriple] {
        match self {
            WalRecord::Insert(t) | WalRecord::Delete(t) | WalRecord::Load(t) => t,
        }
    }

    fn from_kind(kind: u8, triples: Vec<TermTriple>) -> Option<WalRecord> {
        match kind {
            0 => Some(WalRecord::Insert(triples)),
            1 => Some(WalRecord::Delete(triples)),
            2 => Some(WalRecord::Load(triples)),
            _ => None,
        }
    }
}

/// One record recovered from the log: `(lsn, seq, record)`, `lsn` being
/// the file offset just *after* the record's frame.
pub type RecoveredRecord = (u64, u64, WalRecord);

/// Append side of the log. Construct via [`WalWriter::create`] (fresh log)
/// or [`WalWriter::open_recover`] (replay + truncate-at-first-tear).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Byte offset of the log end == the LSN of the next record.
    end: u64,
    /// Unsynced appends are pending.
    dirty: bool,
    last_sync: Instant,
}

impl WalWriter {
    /// Create (truncate) a fresh log at `path` and fsync its header, so a
    /// crash right after creation recovers an empty log, not a missing one.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            end: HEADER_LEN,
            dirty: false,
            last_sync: Instant::now(),
        })
    }

    /// Open an existing log (or create one if missing), replaying every
    /// intact record and truncating the file back to the last intact frame.
    /// Returns the writer positioned to append, plus the recovered records
    /// as `(lsn, seq, record)` — `lsn` being the offset *after* the frame.
    pub fn open_recover(path: &Path) -> io::Result<(WalWriter, Vec<RecoveredRecord>)> {
        if !path.exists() {
            return Ok((WalWriter::create(path)?, Vec::new()));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        let header_ok = {
            let mut read = 0usize;
            loop {
                match file.read(&mut header[read..]) {
                    Ok(0) => break read == header.len(),
                    Ok(n) => {
                        read += n;
                        if read == header.len() {
                            break true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        };
        if !header_ok
            || &header[..8] != MAGIC
            || u32::from_le_bytes([header[8], header[9], header[10], header[11]]) != VERSION
        {
            // The header itself is damaged: nothing in the file can be
            // trusted, start over with an empty log.
            drop(file);
            return Ok((WalWriter::create(path)?, Vec::new()));
        }
        let mut records = Vec::new();
        let mut good_end = HEADER_LEN;
        let mut buf = Vec::new();
        loop {
            let mut frame_header = [0u8; 8];
            if !read_exact_or_eof(&mut file, &mut frame_header)? {
                break;
            }
            let len = u32::from_le_bytes([
                frame_header[0],
                frame_header[1],
                frame_header[2],
                frame_header[3],
            ]);
            let crc = u32::from_le_bytes([
                frame_header[4],
                frame_header[5],
                frame_header[6],
                frame_header[7],
            ]);
            if !(9..=MAX_FRAME_LEN).contains(&len) {
                break;
            }
            buf.clear();
            buf.resize(len as usize, 0);
            if !read_exact_or_eof(&mut file, &mut buf)? {
                break;
            }
            if crc32(&buf) != crc {
                break;
            }
            let seq = u64::from_le_bytes([
                buf[0], buf[1], buf[2], buf[3], buf[4], buf[5], buf[6], buf[7],
            ]);
            let kind = buf[8];
            let Ok(text) = std::str::from_utf8(&buf[9..]) else {
                break;
            };
            let Ok(triples) = ntriples::parse_document(text) else {
                break;
            };
            let Some(record) = WalRecord::from_kind(kind, triples) else {
                break;
            };
            good_end += 8 + len as u64;
            records.push((good_end, seq, record));
        }
        // Truncate the torn/corrupt tail so appends continue from the last
        // intact frame (and a later recovery never re-reads the tear).
        file.set_len(good_end)?;
        file.sync_data()?;
        file.seek(SeekFrom::Start(good_end))?;
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                end: good_end,
                dirty: false,
                last_sync: Instant::now(),
            },
            records,
        ))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The current end-of-log offset (the next record's LSN).
    pub fn lsn(&self) -> u64 {
        self.end
    }

    /// Append one record; returns its LSN (offset after the frame). The
    /// record is in the OS page cache after this returns — call
    /// [`WalWriter::sync`] (or let [`WalWriter::maybe_sync`] decide) to
    /// make it crash-durable.
    pub fn append(&mut self, seq: u64, record: &WalRecord) -> io::Result<u64> {
        let mut payload = Vec::with_capacity(64 * record.triples().len() + 9);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.push(record.kind());
        ntriples::write_document(&mut payload, record.triples())?;
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_LEN)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "WAL batch too large"))?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        crash_point!("wal.pre_append");
        self.file.write_all(&frame)?;
        crash_point!("wal.post_append");
        self.end += frame.len() as u64;
        self.dirty = true;
        Ok(self.end)
    }

    /// Force appended records to stable storage (the acknowledgment
    /// barrier). No-op when nothing is pending.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        crash_point!("wal.pre_sync");
        self.file.sync_data()?;
        crash_point!("wal.post_sync");
        self.dirty = false;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Apply the durability policy after an append.
    pub fn maybe_sync(&mut self, policy: SyncPolicy) -> io::Result<()> {
        match policy {
            SyncPolicy::Always => self.sync(),
            SyncPolicy::IntervalMs(ms) => {
                if self.dirty && self.last_sync.elapsed().as_millis() >= u128::from(ms) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        }
    }
}

/// Read exactly `buf.len()` bytes from the current position; `Ok(false)` on
/// a clean or mid-buffer EOF (a torn tail), `Err` on real I/O failure.
fn read_exact_or_eof(file: &mut File, buf: &mut [u8]) -> io::Result<bool> {
    let mut read = 0usize;
    while read < buf.len() {
        match file.read(&mut buf[read..]) {
            Ok(0) => return Ok(false),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Term;

    fn tt(i: u64) -> TermTriple {
        TermTriple::new(
            Term::iri(format!("http://e/s{i}")),
            Term::iri("http://e/p"),
            Term::int(i as i64),
        )
    }

    fn temp_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — unique temp names only.
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("sordf-wal-{tag}-{}-{n}.wal", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            // sordf-lint: allow(L7) — best-effort temp cleanup in a test.
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_recover_roundtrip() {
        let path = temp_path("roundtrip");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0), tt(1)]))
            .unwrap();
        wal.append(2, &WalRecord::Delete(vec![tt(0)])).unwrap();
        wal.append(3, &WalRecord::Load(vec![tt(2)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (wal, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].1, 1);
        assert_eq!(records[0].2, WalRecord::Insert(vec![tt(0), tt(1)]));
        assert_eq!(records[1].2, WalRecord::Delete(vec![tt(0)]));
        assert_eq!(records[2].2, WalRecord::Load(vec![tt(2)]));
        assert_eq!(records[2].0, wal.lsn(), "last record's lsn is the log end");
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_path("torn");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        let good_end = wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.append(3, &WalRecord::Insert(vec![tt(2)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Tear the last frame: chop 3 bytes off the file.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let (wal, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 2, "the torn record is dropped");
        assert_eq!(records.last().unwrap().1, 2);
        assert_eq!(
            wal.lsn(),
            good_end,
            "file truncated to the last intact frame"
        );
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_end);
    }

    #[test]
    fn corrupt_frame_is_rejected_and_later_frames_dropped() {
        let path = temp_path("corrupt");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        let end1 = wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.append(3, &WalRecord::Insert(vec![tt(2)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip one payload byte of the second record: its CRC must reject
        // it, and record 3 (though intact on disk) must not be replayed —
        // the log is only trustworthy up to the first tear.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = end1 as usize + 8 + 9; // second frame's first text byte
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (wal, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.len(), 1, "only the prefix before the tear");
        assert_eq!(wal.lsn(), end1);
    }

    #[test]
    fn appends_continue_after_recovery() {
        let path = temp_path("continue");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (mut wal, _) = WalWriter::open_recover(&path).unwrap();
        wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, records) = WalWriter::open_recover(&path).unwrap();
        assert_eq!(records.iter().map(|r| r.1).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn damaged_header_restarts_the_log() {
        let path = temp_path("header");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, records) = WalWriter::open_recover(&path).unwrap();
        assert!(records.is_empty(), "an untrusted header empties the log");
        assert_eq!(wal.lsn(), HEADER_LEN);
        wal.append(1, &WalRecord::Insert(vec![tt(9)])).unwrap();
        wal.sync().unwrap();
    }

    #[test]
    fn interval_policy_bounds_sync_frequency() {
        let path = temp_path("interval");
        let _c = Cleanup(path.clone());
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(1, &WalRecord::Insert(vec![tt(0)])).unwrap();
        // A huge interval: maybe_sync leaves the record unsynced...
        wal.maybe_sync(SyncPolicy::IntervalMs(3_600_000)).unwrap();
        // ...while Always forces it out.
        wal.maybe_sync(SyncPolicy::Always).unwrap();
        // A zero interval syncs immediately on the next append.
        wal.append(2, &WalRecord::Insert(vec![tt(1)])).unwrap();
        wal.maybe_sync(SyncPolicy::IntervalMs(0)).unwrap();
    }
}
