//! CS-clustered storage: per-class column segments + irregular remainder.
//!
//! "The core idea of our novel RDF storage proposal is to store RDF data
//! that has been recognized as conforming to a characteristic set together
//! in an aligned way, such that for a whole stretch of subjects we get
//! aligned stretches of Objects" (§II-C). Missing `0..1` values are NULL
//! sentinels; multi-valued properties live in (subject, object) side tables;
//! everything the schema calls irregular stays in a small exhaustive-index
//! triple table, so each (s,p,o) has exactly one home.
//!
//! Two subject layouts exist, matching Table I's "Scheme" axis:
//! * **Dense** (Clustered) — after [`crate::reorganize`], a class's subjects
//!   are the implicit OID range `[base, base+n)`; the subject column costs
//!   no storage and row↔subject conversion is O(1).
//! * **Sparse** (ParseOrder) — subjects keep their parse-order OIDs; the
//!   segment stores an explicit sorted subject column. RDFscan still works,
//!   but locality and zone-map clustering benefits are lost.

use crate::baseline::BaselineStore;
use crate::reorg::ClusterSpec;
use sordf_columnar::{BufferPool, Column, ColumnEncoding, DiskManager};
use sordf_model::{Oid, Triple};
use sordf_schema::{ClassId, EmergentSchema, TripleHome};

/// A multi-valued property's side table: (s, o) pairs sorted by (s, o).
#[derive(Debug, Clone)]
pub struct MultiTable {
    pub s: Column,
    pub o: Column,
}

impl MultiTable {
    /// Row range of one subject's values.
    pub fn rows_of(&self, pool: &BufferPool, s: Oid) -> std::ops::Range<usize> {
        let lo = self.s.lower_bound(pool, s.raw());
        let hi = self.s.upper_bound(pool, s.raw());
        lo..hi
    }
}

/// How a segment identifies its subjects.
#[derive(Debug, Clone)]
pub enum SubjectIds {
    /// Subjects are exactly the IRI payload range `[base, base+n)`.
    Dense { base: u64 },
    /// Explicit ascending subject column (parse-order OIDs).
    Sparse { subjects: Column },
}

/// One class's aligned columnar storage.
#[derive(Debug, Clone)]
pub struct ClassSegment {
    pub class: ClassId,
    pub n: usize,
    pub subjects: SubjectIds,
    /// Aligned value columns, same order as `ClassDef::columns`.
    pub columns: Vec<Column>,
    /// Side tables, same order as `ClassDef::multi_props`.
    pub multi: Vec<MultiTable>,
    /// Column index the segment rows are sub-ordered by, if any
    /// (dense layout only; enables binary search on that column).
    pub sorted_by: Option<usize>,
}

impl ClassSegment {
    /// The subject OID of a row.
    #[inline]
    pub fn subject_at(&self, pool: &BufferPool, row: usize) -> Oid {
        match &self.subjects {
            SubjectIds::Dense { base } => Oid::iri(base + row as u64),
            SubjectIds::Sparse { subjects } => Oid::from_raw(subjects.value(pool, row)),
        }
    }

    /// Subject OIDs of `rows` (ascending), pinning each subject page once —
    /// the batched counterpart of [`ClassSegment::subject_at`] for
    /// candidate-driven scans.
    pub fn subjects_at(&self, pool: &BufferPool, rows: &[usize]) -> Vec<Oid> {
        match &self.subjects {
            SubjectIds::Dense { base } => rows.iter().map(|&r| Oid::iri(base + r as u64)).collect(),
            SubjectIds::Sparse { subjects } => subjects
                .gather(pool, rows)
                .into_iter()
                .map(Oid::from_raw)
                .collect(),
        }
    }

    /// The row of a subject, if it belongs to this segment.
    pub fn row_of(&self, pool: &BufferPool, s: Oid) -> Option<usize> {
        if !s.is_iri() {
            return None;
        }
        match &self.subjects {
            SubjectIds::Dense { base } => {
                let p = s.payload();
                (p >= *base && p < base + self.n as u64).then(|| (p - base) as usize)
            }
            SubjectIds::Sparse { subjects } => {
                let i = subjects.lower_bound(pool, s.raw());
                (i < self.n && subjects.value(pool, i) == s.raw()).then_some(i)
            }
        }
    }

    /// Subject payload range for dense segments.
    pub fn dense_range(&self) -> Option<std::ops::Range<u64>> {
        match &self.subjects {
            SubjectIds::Dense { base } => Some(*base..base + self.n as u64),
            SubjectIds::Sparse { .. } => None,
        }
    }

    /// Row range whose `sorted_by` column values lie in `[lo, hi]` (raw OID
    /// bounds). Only meaningful when the segment is sub-ordered.
    pub fn sorted_row_range(
        &self,
        pool: &BufferPool,
        col: usize,
        lo: u64,
        hi: u64,
    ) -> Option<std::ops::Range<usize>> {
        if self.sorted_by != Some(col) {
            return None;
        }
        let c = &self.columns[col];
        Some(c.lower_bound(pool, lo)..c.upper_bound(pool, hi))
    }
}

/// The clustered database: segments + irregular remainder.
#[derive(Debug, Clone)]
pub struct ClusteredStore {
    /// One segment per schema class, indexed by `ClassId`.
    pub segments: Vec<ClassSegment>,
    /// Exhaustive-index store over the irregular triples only.
    pub irregular: BaselineStore,
    /// Triples stored in segments (columns + side tables).
    pub n_regular: usize,
    /// The page-encoding scheme the segments were built with.
    encoding: ColumnEncoding,
    /// Leases the *segment* pages (the irregular store leases its own):
    /// freed when the last clone drops. Shared across clones so the extent
    /// is freed exactly once.
    _lease: std::sync::Arc<sordf_columnar::PageLease>,
}

impl ClusteredStore {
    pub fn segment(&self, class: ClassId) -> &ClassSegment {
        &self.segments[class.0 as usize]
    }

    /// Find the segment containing subject `s`, if any.
    pub fn segment_of_subject(&self, pool: &BufferPool, s: Oid) -> Option<(&ClassSegment, usize)> {
        for seg in &self.segments {
            if let Some(row) = seg.row_of(pool, s) {
                return Some((seg, row));
            }
        }
        None
    }

    /// Total triples stored (regular + irregular).
    pub fn n_triples(&self) -> usize {
        self.n_regular + self.irregular.len()
    }

    /// The page-encoding scheme this store was built with.
    pub fn encoding(&self) -> ColumnEncoding {
        self.encoding
    }

    /// Bytes a scan of the segment columns must touch (encoded size),
    /// excluding the irregular store (accounted separately).
    pub fn segment_used_bytes(&self) -> usize {
        let mut n = 0;
        for seg in &self.segments {
            if let SubjectIds::Sparse { subjects } = &seg.subjects {
                n += subjects.used_bytes();
            }
            n += seg.columns.iter().map(|c| c.used_bytes()).sum::<usize>();
            n += seg
                .multi
                .iter()
                .map(|m| m.s.used_bytes() + m.o.used_bytes())
                .sum::<usize>();
        }
        n
    }

    /// Bytes the segments would occupy without page compression.
    pub fn segment_plain_bytes(&self) -> usize {
        let mut n = 0;
        for seg in &self.segments {
            if let SubjectIds::Sparse { subjects } = &seg.subjects {
                n += subjects.plain_bytes();
            }
            n += seg.columns.iter().map(|c| c.plain_bytes()).sum::<usize>();
            n += seg
                .multi
                .iter()
                .map(|m| m.s.plain_bytes() + m.o.plain_bytes())
                .sum::<usize>();
        }
        n
    }
}

/// Build a clustered store from SPO-sorted triples.
///
/// * `dense` = true: subjects were renumbered by [`crate::reorganize`]
///   (class ranges are contiguous) — Table I's "Clustered" scheme.
/// * `dense` = false: parse-order OIDs; explicit subject columns —
///   Table I's "ParseOrder" scheme with CS tables.
///
/// Refreshes `schema` column statistics (min/max/non-null) from the built
/// columns' zone maps, so stats stay valid after reorganization.
pub fn build_clustered(
    disk: &std::sync::Arc<DiskManager>,
    triples_spo: &[Triple],
    schema: &mut EmergentSchema,
    spec: &ClusterSpec,
    dense: bool,
) -> ClusteredStore {
    build_clustered_with(
        disk,
        triples_spo,
        schema,
        spec,
        dense,
        ColumnEncoding::default(),
    )
}

/// [`build_clustered`] with an explicit page-encoding scheme.
pub fn build_clustered_with(
    disk: &std::sync::Arc<DiskManager>,
    triples_spo: &[Triple],
    schema: &mut EmergentSchema,
    spec: &ClusterSpec,
    dense: bool,
    encoding: ColumnEncoding,
) -> ClusteredStore {
    debug_assert!(
        triples_spo
            .windows(2)
            .all(|w| w[0].key_spo() <= w[1].key_spo()),
        "build_clustered() requires SPO-sorted triples"
    );
    let n_classes = schema.classes.len();

    // Per-class subject row mapping.
    let mut subjects_per_class: Vec<Vec<u64>> = vec![Vec::new(); n_classes];
    for (&s, &class) in &schema.assignment {
        subjects_per_class[class.0 as usize].push(s.raw());
    }
    for v in subjects_per_class.iter_mut() {
        v.sort_unstable();
    }
    // row lookup: subject raw -> row (sparse needs a map; dense arithmetic).
    let row_of = |_class: usize, s: Oid, subjects: &[u64]| -> usize {
        if dense {
            let base = subjects
                .first()
                .map(|&x| Oid::from_raw(x).payload())
                .unwrap_or(0);
            (s.payload() - base) as usize
        } else {
            subjects
                .binary_search(&s.raw())
                // sordf-lint: allow(L3) — the router assigned `s` to this segment, so membership is guaranteed.
                .expect("assigned subject missing")
        }
    };
    if dense {
        // Contiguity check: clustering must have produced dense ranges.
        for (ci, subs) in subjects_per_class.iter().enumerate() {
            if let (Some(&first), Some(&last)) = (subs.first(), subs.last()) {
                let span = Oid::from_raw(last).payload() - Oid::from_raw(first).payload() + 1;
                assert_eq!(
                    span as usize,
                    subs.len(),
                    "class {ci} subject OIDs are not contiguous; run reorganize() first"
                );
            }
        }
    }

    // Staging buffers.
    let mut col_data: Vec<Vec<Vec<u64>>> = schema
        .classes
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            vec![
                vec![sordf_columnar::column::NULL_SENTINEL; subjects_per_class[ci].len()];
                c.columns.len()
            ]
        })
        .collect();
    let mut multi_data: Vec<Vec<Vec<(u64, u64)>>> = schema
        .classes
        .iter()
        .map(|c| vec![Vec::new(); c.multi_props.len()])
        .collect();
    let mut irregular: Vec<Triple> = Vec::new();
    let mut n_regular = 0usize;

    schema.place_triples(triples_spo, |t, home| match home {
        TripleHome::Column { class, col } => {
            let ci = class.0 as usize;
            let row = row_of(ci, t.s, &subjects_per_class[ci]);
            col_data[ci][col][row] = t.o.raw();
            n_regular += 1;
        }
        TripleHome::Multi { class, mp } => {
            multi_data[class.0 as usize][mp].push((t.s.raw(), t.o.raw()));
            n_regular += 1;
        }
        TripleHome::Irregular => irregular.push(t),
    });

    // Materialize segments.
    let mut segments = Vec::with_capacity(n_classes);
    for (ci, class) in schema.classes.iter_mut().enumerate() {
        let subs = &subjects_per_class[ci];
        let n = subs.len();
        let subjects = if dense {
            let base = subs
                .first()
                .map(|&x| Oid::from_raw(x).payload())
                .unwrap_or(0);
            SubjectIds::Dense { base }
        } else {
            SubjectIds::Sparse {
                subjects: Column::from_slice_with(disk, subs, encoding),
            }
        };
        let mut columns = Vec::with_capacity(class.columns.len());
        for (coli, data) in col_data[ci].iter().enumerate() {
            let col = Column::from_slice_with(disk, data, encoding);
            // Refresh schema stats from the physical column.
            let stats = &mut class.columns[coli].stats;
            stats.n_nonnull = (col.len() - col.n_nulls()) as u64;
            stats.min = col.zonemap().global_min();
            stats.max = col.zonemap().global_max();
            columns.push(col);
        }
        let mut multi = Vec::with_capacity(class.multi_props.len());
        for (mi, pairs) in multi_data[ci].iter_mut().enumerate() {
            pairs.sort_unstable();
            let s_col = Column::from_slice_with(
                disk,
                &pairs.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
                encoding,
            );
            let o_col = Column::from_slice_with(
                disk,
                &pairs.iter().map(|&(_, o)| o).collect::<Vec<_>>(),
                encoding,
            );
            let stats = &mut class.multi_props[mi].stats;
            stats.n_nonnull = pairs.len() as u64;
            stats.min = o_col.zonemap().global_min();
            stats.max = o_col.zonemap().global_max();
            multi.push(MultiTable { s: s_col, o: o_col });
        }
        let sorted_by = if dense {
            spec.sort_keys
                .get(&class.id)
                .copied()
                .filter(|&c| c < columns.len())
        } else {
            None
        };
        segments.push(ClassSegment {
            class: class.id,
            n,
            subjects,
            columns,
            multi,
            sorted_by,
        });
    }

    let irregular_store = BaselineStore::build_with(disk, &irregular, encoding);
    let mut pages = Vec::new();
    for seg in &segments {
        if let SubjectIds::Sparse { subjects } = &seg.subjects {
            pages.extend_from_slice(subjects.page_ids());
        }
        for col in &seg.columns {
            pages.extend_from_slice(col.page_ids());
        }
        for mt in &seg.multi {
            pages.extend_from_slice(mt.s.page_ids());
            pages.extend_from_slice(mt.o.page_ids());
        }
    }
    ClusteredStore {
        segments,
        irregular: irregular_store,
        n_regular,
        encoding,
        _lease: std::sync::Arc::new(sordf_columnar::PageLease::new(
            std::sync::Arc::clone(disk),
            pages,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reorg::reorganize;
    use crate::triple_set::TripleSet;
    use sordf_model::Term;
    use sordf_schema::SchemaConfig;
    use std::sync::Arc;

    fn make_ts() -> TripleSet {
        let mut ts = TripleSet::new();
        let mut add = |s: String, p: &str, o: Term| {
            ts.add(&sordf_model::TermTriple::new(
                Term::iri(s),
                Term::iri(format!("http://e/{p}")),
                o,
            ))
            .unwrap();
        };
        for i in 0..20u64 {
            add(
                format!("http://e/item{i}"),
                "price",
                Term::int(i as i64 * 10),
            );
            add(
                format!("http://e/item{i}"),
                "sold",
                Term::date(&format!("1996-01-{:02}", (i % 28) + 1)),
            );
            if i % 5 == 0 {
                // type-noise second value for price -> irregular exception
                add(
                    format!("http://e/item{i}"),
                    "price",
                    Term::str(format!("n/a-{i}")),
                );
            }
            if i % 2 == 0 {
                // multi-valued tags (>10% of subjects have 2) -> side table
                add(
                    format!("http://e/item{i}"),
                    "tag",
                    Term::iri(format!("http://e/t{}", i % 3)),
                );
                add(
                    format!("http://e/item{i}"),
                    "tag",
                    Term::iri(format!("http://e/t{}", (i + 1) % 3)),
                );
            } else {
                add(
                    format!("http://e/item{i}"),
                    "tag",
                    Term::iri(format!("http://e/t{}", i % 3)),
                );
            }
        }
        ts
    }

    fn build(
        dense: bool,
    ) -> (
        Arc<DiskManager>,
        BufferPool,
        EmergentSchema,
        ClusteredStore,
        TripleSet,
    ) {
        let mut ts = make_ts();
        let spo = ts.sorted_spo();
        let mut schema = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
        let spec = ClusterSpec::auto(&schema);
        if dense {
            reorganize(&mut ts, &mut schema, &spec);
        }
        let spo = ts.sorted_spo();
        let dm = Arc::new(DiskManager::temp().unwrap());
        let store = build_clustered(&dm, &spo, &mut schema, &spec, dense);
        let pool = BufferPool::new(Arc::clone(&dm), 256);
        (dm, pool, schema, store, ts)
    }

    #[test]
    fn dense_segments_roundtrip_subjects() {
        let (_dm, pool, schema, store, _ts) = build(true);
        let seg = &store.segments[0];
        assert_eq!(seg.n as u64, schema.classes[0].n_subjects);
        for row in 0..seg.n {
            let s = seg.subject_at(&pool, row);
            assert_eq!(seg.row_of(&pool, s), Some(row));
        }
        assert!(seg.dense_range().is_some());
    }

    #[test]
    fn sparse_segments_roundtrip_subjects() {
        let (_dm, pool, _schema, store, _ts) = build(false);
        let seg = &store.segments[0];
        for row in 0..seg.n {
            let s = seg.subject_at(&pool, row);
            assert_eq!(seg.row_of(&pool, s), Some(row));
        }
        assert!(seg.dense_range().is_none());
        assert_eq!(seg.row_of(&pool, Oid::iri(999_999)), None);
    }

    #[test]
    fn every_triple_has_exactly_one_home() {
        for dense in [false, true] {
            let (_dm, _pool, _schema, store, ts) = build(dense);
            assert_eq!(store.n_triples(), ts.len(), "dense={dense}");
        }
    }

    #[test]
    fn sorted_segment_supports_range_rows() {
        let (_dm, pool, schema, store, ts) = build(true);
        let sold = ts.dict.iri_oid("http://e/sold").unwrap();
        let class = schema
            .classes
            .iter()
            .find(|c| c.column_of(sold).is_some())
            .unwrap();
        let col = class.column_of(sold).unwrap();
        let seg = store.segment(class.id);
        assert_eq!(seg.sorted_by, Some(col));
        let lo = Oid::from_date_days(sordf_model::date::parse_date("1996-01-05").unwrap()).unwrap();
        let hi = Oid::from_date_days(sordf_model::date::parse_date("1996-01-10").unwrap()).unwrap();
        let rows = seg
            .sorted_row_range(&pool, col, lo.raw(), hi.raw())
            .unwrap();
        // Verify against a full scan.
        let vals = seg.columns[col].to_vec(&pool, 0..seg.n);
        let expect = vals
            .iter()
            .filter(|&&v| v >= lo.raw() && v <= hi.raw())
            .count();
        assert_eq!(rows.len(), expect);
        assert!(expect > 0);
        // All values inside the range, sorted.
        let in_range = seg.columns[col].to_vec(&pool, rows);
        assert!(in_range.windows(2).all(|w| w[0] <= w[1]));
        assert!(in_range.iter().all(|&v| v >= lo.raw() && v <= hi.raw()));
    }

    #[test]
    fn multi_table_lookup() {
        let (_dm, pool, schema, store, ts) = build(true);
        let tag = ts.dict.iri_oid("http://e/tag").unwrap();
        let class = schema
            .classes
            .iter()
            .find(|c| c.multi_of(tag).is_some())
            .expect("tag class");
        let mp = class.multi_of(tag).unwrap();
        let seg = store.segment(class.id);
        let table = &seg.multi[mp];
        // Sum of per-subject rows equals table length.
        let mut total = 0;
        for row in 0..seg.n {
            let s = seg.subject_at(&pool, row);
            total += table.rows_of(&pool, s).len();
        }
        assert_eq!(total, table.s.len());
        assert!(total >= 30, "20 subjects, half with 2 tags");
    }

    #[test]
    fn irregular_store_holds_type_exceptions() {
        let (_dm, pool, _schema, store, ts) = build(true);
        let price = ts.dict.iri_oid("http://e/price").unwrap();
        // The 4 string-typed price values are exceptions to the INT column.
        let exceptions = store.irregular.scan_p(&pool, price);
        assert_eq!(exceptions.len(), 4);
        assert!(exceptions
            .iter()
            .all(|&(_, o)| o.tag() == sordf_model::TypeTag::Str));
    }
}
