//! Generation pinning: the immutable unit a query executes against.
//!
//! A [`StoreGeneration`] bundles everything one *physical generation* of the
//! store consists of — the dictionary, the base triples and whichever store
//! layouts have been built over them. It is immutable once published, with
//! one carefully-scoped exception: the dictionary keeps growing *within* a
//! generation (inserts intern new terms, strictly append-only, through the
//! dictionary's own internal pool locks), which never invalidates an OID a
//! reader already holds.
//!
//! Queries pin a [`GenerationHandle`] (an `Arc` clone) plus a delta view at
//! query start and never look back at shared mutable state: a concurrent
//! reorganization builds a *new* `StoreGeneration` — with its own,
//! renumbered dictionary — and swaps the handle; in-flight queries keep the
//! old generation alive until they drop their pins. Readers never block on
//! a rebuild, and since the dictionary interns through `&self` (lock-free
//! reads, short internal writer locks per pool), a pinned dictionary never
//! blocks interning writers either — pins are plain `Arc` clones.

use std::ops::Deref;
use std::sync::Arc;

use sordf_columnar::ColumnEncoding;
use sordf_model::{Dictionary, Triple};
use sordf_schema::EmergentSchema;

use crate::baseline::BaselineStore;
use crate::clustered::ClusteredStore;
use crate::delta::DeltaView;
use crate::reorg::{ClusterSpec, ReorgReport};
use crate::triple_set::TripleSet;

/// One physical generation of the store. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct StoreGeneration {
    /// The dictionary this generation's OIDs are numbered by. Append-only
    /// within the generation (interning goes through the dictionary's
    /// internal pool locks, `&self`); replaced wholesale — never renumbered
    /// in place — by a generation swap.
    pub dict: Arc<Dictionary>,
    /// Base triples (parse order), encoded under `dict`'s numbering.
    pub triples: Arc<Vec<Triple>>,
    /// Exhaustive permutation indexes (ParseOrder scheme), if built.
    pub baseline: Option<Arc<BaselineStore>>,
    /// The frozen emergent schema, if discovered.
    pub schema: Option<Arc<EmergentSchema>>,
    /// Sparse CS tables over parse-order OIDs (with the schema they use).
    pub cs_parse_order: Option<(Arc<ClusteredStore>, Arc<EmergentSchema>)>,
    /// The fully self-organized store (clustered OIDs, dense segments).
    pub clustered: Option<Arc<ClusteredStore>>,
    /// Clustering spec used for the clustered build (kept for reporting).
    pub spec: ClusterSpec,
    /// The clustering report, if self-organized.
    pub reorg_report: Option<ReorgReport>,
    /// String-pool size at the last string sort: interning past this
    /// watermark breaks string-OID value order until the next swap.
    pub strings_sorted_len: usize,
    /// Page-encoding scheme every layout of this generation is built with;
    /// part of the physical identity a plan cache must key on.
    pub encoding: ColumnEncoding,
}

/// The shared handle queries clone at query start and a swap replaces
/// atomically (under the owner's state lock).
pub type GenerationHandle = Arc<StoreGeneration>;

impl StoreGeneration {
    /// A staging generation: dictionary + triples, nothing built yet.
    pub fn staging(dict: Dictionary, triples: Vec<Triple>) -> StoreGeneration {
        StoreGeneration::staging_with(dict, triples, ColumnEncoding::default())
    }

    /// [`StoreGeneration::staging`] with an explicit page-encoding scheme.
    pub fn staging_with(
        dict: Dictionary,
        triples: Vec<Triple>,
        encoding: ColumnEncoding,
    ) -> StoreGeneration {
        StoreGeneration {
            dict: Arc::new(dict),
            triples: Arc::new(triples),
            baseline: None,
            schema: None,
            cs_parse_order: None,
            clustered: None,
            spec: ClusterSpec::none(),
            reorg_report: None,
            strings_sorted_len: 0,
            encoding,
        }
    }

    /// Has any store layout been built over this generation?
    pub fn any_built(&self) -> bool {
        self.baseline.is_some() || self.cs_parse_order.is_some() || self.clustered.is_some()
    }

    /// Pin this generation's dictionary: an `Arc` clone that keeps the
    /// dictionary alive for the pin's lifetime. Pins are free — they hold
    /// no lock, so they never block (or are blocked by) interning writers.
    pub fn pin_dict(&self) -> DictPin {
        DictPin::new(Arc::clone(&self.dict))
    }

    /// Materialize the logical triple set this generation + `view` describe:
    /// a clone of the dictionary and the base triples with the view's
    /// tombstones filtered out and its visible inserts appended. This is
    /// the input a background rebuild works from — fully owned, so the
    /// rebuild touches no shared state while it runs.
    pub fn fold_into_triple_set(&self, view: Option<&DeltaView>) -> TripleSet {
        let dict = self.dict.as_ref().clone();
        let triples = match view {
            None => self.triples.as_ref().clone(),
            Some(v) => {
                let mut t: Vec<Triple> = if v.n_tombstones() == 0 {
                    self.triples.as_ref().clone()
                } else {
                    self.triples
                        .iter()
                        .filter(|t| !v.is_deleted(**t))
                        .copied()
                        .collect()
                };
                t.extend_from_slice(v.inserts());
                t
            }
        };
        TripleSet { dict, triples }
    }

    /// Check this generation's cross-structure invariants; panics (via
    /// `assert!`) on violation. Debug/stress builds call this after every
    /// build and swap — it is deliberately cheap enough (no per-triple work
    /// beyond one count) to run there unconditionally.
    pub fn debug_validate(&self) {
        assert!(
            self.strings_sorted_len <= self.dict.n_strings(),
            "strings_sorted_len {} exceeds string pool size {} — the sort \
             watermark may only lag the (append-only) pool, never lead it",
            self.strings_sorted_len,
            self.dict.n_strings()
        );
        for (store, label) in [
            (
                self.cs_parse_order.as_ref().map(|(c, _)| c),
                "cs_parse_order",
            ),
            (self.clustered.as_ref(), "clustered"),
        ] {
            let Some(store) = store else { continue };
            assert_eq!(
                store.n_triples(),
                self.triples.len(),
                "{label} store triple count must match the base triple set \
                 (regular + irregular partitions are exhaustive)"
            );
            let n_classes = match label {
                "cs_parse_order" => self
                    .cs_parse_order
                    .as_ref()
                    .map(|(_, s)| s.classes.len())
                    .unwrap_or(0),
                _ => self.schema.as_ref().map(|s| s.classes.len()).unwrap_or(0),
            };
            for seg in &store.segments {
                assert!(
                    (seg.class.0 as usize) < n_classes,
                    "{label} segment references class {} outside its schema \
                     ({} classes)",
                    seg.class.0,
                    n_classes
                );
            }
        }
    }
}

/// An owned pin on a generation's dictionary: an `Arc` clone that keeps
/// the dictionary alive for the pin's lifetime, so a query can carry one
/// pinned `&Dictionary` through parsing and execution without borrowing
/// from the database's internal state. Holds no lock — the dictionary's
/// interning is interior-mutable, so pinned readers and interning writers
/// proceed independently.
#[must_use = "bind the DictPin for the query's lifetime; it keeps the pinned dictionary alive"]
pub struct DictPin {
    dict: Arc<Dictionary>,
}

impl DictPin {
    /// Pin `dict`.
    pub fn new(dict: Arc<Dictionary>) -> DictPin {
        DictPin { dict }
    }
}

impl Deref for DictPin {
    type Target = Dictionary;

    fn deref(&self) -> &Dictionary {
        &self.dict
    }
}

impl std::fmt::Debug for DictPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DictPin").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::{Oid, Term, TermTriple};

    fn sample_generation() -> StoreGeneration {
        let mut ts = TripleSet::new();
        for i in 0..4u64 {
            ts.add(&TermTriple::new(
                Term::iri(format!("http://e/s{i}")),
                Term::iri("http://e/p"),
                Term::int(i as i64),
            ))
            .unwrap();
        }
        StoreGeneration::staging(ts.dict, ts.triples)
    }

    #[test]
    fn dict_pin_outlives_generation_handle() {
        let gen = Arc::new(sample_generation());
        let pin = gen.pin_dict();
        let s0 = pin.iri_oid("http://e/s0").unwrap();
        // Drop every other handle: the pin alone keeps the dictionary alive.
        drop(gen);
        assert_eq!(pin.iri_oid("http://e/s0"), Some(s0));
    }

    #[test]
    fn concurrent_pins_and_interning_coexist() {
        let gen = sample_generation();
        let a = gen.pin_dict();
        let b = gen.pin_dict();
        assert_eq!(a.n_iris(), b.n_iris());
        // A held pin does not block interning — the pool grows in place and
        // both pins observe the new entry.
        let fresh = gen.dict.encode_iri("http://e/fresh");
        assert_eq!(a.iri_oid("http://e/fresh"), Some(fresh));
    }

    #[test]
    fn fold_applies_tombstones_and_inserts() {
        let gen = sample_generation();
        let p = gen.dict.iri_oid("http://e/p").unwrap();
        let s0 = gen.dict.iri_oid("http://e/s0").unwrap();
        let mut delta = crate::delta::DeltaStore::new();
        let extra = Triple::new(s0, p, Oid::from_int(99).unwrap());
        let _ = delta.insert_run(vec![extra]);
        let _ = delta.delete(&[Triple::new(s0, p, Oid::from_int(0).unwrap())]);
        let folded = gen.fold_into_triple_set(delta.current_view());
        assert_eq!(folded.triples.len(), 4, "one deleted, one inserted");
        assert!(folded.triples.contains(&extra));
        // No view: a plain clone.
        assert_eq!(gen.fold_into_triple_set(None).triples.len(), 4);
    }
}
