//! Subject clustering: the OID reorganization of §II-B.
//!
//! "Given the discovered CS's, to obtain real locality we would like to
//! order the OIDs in a meaningful way. For S OIDs: we group them by
//! characteristic sets; within a characteristic set, we can then further
//! sub-order them on some index keys. … Similarly, the O OIDs used for
//! literals should be ordered in a way that is meaningful to SPARQL value
//! comparison semantics."
//!
//! [`reorganize`] permutes the IRI dictionary so that every class's subjects
//! occupy one dense OID range (sub-ordered by an optional per-class sort-key
//! property), sorts the string-literal pool lexicographically, rewrites all
//! triples, and updates the schema's subject assignment in place.

use crate::triple_set::TripleSet;
use sordf_model::{FxHashMap, Oid, TypeTag};
use sordf_schema::{ClassId, EmergentSchema};

/// Physical clustering choices. Sort keys are identified by **column
/// index** within the class (stable across OID reorganization, unlike
/// predicate OIDs, which get renumbered along with every other IRI).
#[derive(Debug, Clone, Default)]
pub struct ClusterSpec {
    /// Per class: the column whose values sub-order the class's subjects
    /// (Table I sub-orders LINEITEM on `shipdate`, ORDERS on `orderdate`).
    pub sort_keys: FxHashMap<ClassId, usize>,
}

impl ClusterSpec {
    /// No sub-ordering: subjects grouped by class only.
    pub fn none() -> ClusterSpec {
        ClusterSpec::default()
    }

    /// Sub-order one class by the given column index.
    pub fn with_sort_key(mut self, class: ClassId, col: usize) -> ClusterSpec {
        self.sort_keys.insert(class, col);
        self
    }

    /// Sub-order one class by the column storing `pred`.
    pub fn with_sort_pred(self, schema: &EmergentSchema, class: ClassId, pred: Oid) -> ClusterSpec {
        match schema.class(class).column_of(pred) {
            Some(col) => self.with_sort_key(class, col),
            None => self,
        }
    }

    /// Heuristic choice: sub-order each class by its first non-nullable
    /// date column, falling back to dateTime / integer / decimal columns.
    /// (A production system would use workload analysis here, as the paper
    /// acknowledges; dates are TPC-H's natural clustering keys.)
    pub fn auto(schema: &EmergentSchema) -> ClusterSpec {
        let mut spec = ClusterSpec::none();
        for class in &schema.classes {
            let pick = |ty: TypeTag| {
                class
                    .columns
                    .iter()
                    .position(|c| {
                        c.ty == ty && Some(c.pred) != schema.type_pred && c.presence > 0.99
                    })
                    .or_else(|| {
                        class
                            .columns
                            .iter()
                            .position(|c| c.ty == ty && Some(c.pred) != schema.type_pred)
                    })
            };
            if let Some(col) = [TypeTag::Date, TypeTag::DateTime, TypeTag::Int, TypeTag::Dec]
                .into_iter()
                .find_map(pick)
            {
                spec.sort_keys.insert(class.id, col);
            }
        }
        spec
    }
}

/// What [`reorganize`] did, for logging and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReorgReport {
    /// Subjects placed into dense class ranges.
    pub n_subjects_clustered: u64,
    /// Total IRIs in the dictionary (subjects + predicates + other objects).
    pub n_iris: u64,
    /// String literals re-numbered into lexicographic order.
    pub n_strings_sorted: u64,
    /// First subject OID payload of each class (ascending by ClassId).
    pub class_bases: Vec<u64>,
}

/// Perform subject clustering and literal re-numbering in place.
///
/// Afterwards: class `c`'s subjects are exactly the IRI OIDs
/// `[report.class_bases[c], report.class_bases[c] + n_subjects(c))`;
/// string-literal OID order equals lexicographic order; `ts.triples` are
/// rewritten (parse order preserved); `schema.assignment` keys are remapped.
pub fn reorganize(
    ts: &mut TripleSet,
    schema: &mut EmergentSchema,
    spec: &ClusterSpec,
) -> ReorgReport {
    let n_iris = ts.dict.n_iris() as u64;

    // 1. Collect sort-key values (smallest matching-type object per subject).
    let mut key_of: FxHashMap<Oid, u64> = FxHashMap::default();
    if !spec.sort_keys.is_empty() {
        // (class, predicate) -> expected tag
        let mut keyed: FxHashMap<(ClassId, Oid), TypeTag> = FxHashMap::default();
        for (&class, &col) in &spec.sort_keys {
            let cdef = schema.class(class);
            if let Some(c) = cdef.columns.get(col) {
                keyed.insert((class, c.pred), c.ty);
            }
        }
        for t in &ts.triples {
            let Some(class) = schema.class_of(t.s) else {
                continue;
            };
            let Some(&ty) = keyed.get(&(class, t.p)) else {
                continue;
            };
            if !t.o.is_null() && t.o.tag() == ty {
                key_of
                    .entry(t.s)
                    .and_modify(|k| *k = (*k).min(t.o.raw()))
                    .or_insert(t.o.raw());
            }
        }
    }

    // 2. Order subjects: by class, then (has key, key, old payload).
    let n_classes = schema.classes.len();
    let mut per_class: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n_classes];
    for (&s, &class) in &schema.assignment {
        assert!(
            s.is_iri(),
            "subjects must be (skolemized) IRIs for clustering"
        );
        let key = key_of.get(&s).copied().unwrap_or(u64::MAX);
        per_class[class.0 as usize].push((key, s.payload()));
    }
    for list in per_class.iter_mut() {
        list.sort_unstable();
    }

    // 3. Dense new numbering: class ranges first, all other IRIs after.
    let mut new_of_old = vec![u64::MAX; n_iris as usize];
    let mut next = 0u64;
    let mut class_bases = Vec::with_capacity(n_classes);
    let mut n_subjects_clustered = 0u64;
    for list in &per_class {
        class_bases.push(next);
        for &(_, old) in list {
            new_of_old[old as usize] = next;
            next += 1;
            n_subjects_clustered += 1;
        }
    }
    for slot in new_of_old.iter_mut() {
        if *slot == u64::MAX {
            *slot = next;
            next += 1;
        }
    }

    // 4. Permute the dictionary pools.
    ts.dict.apply_iri_permutation(&new_of_old);
    let str_map = ts.dict.sort_strings();

    // 5. Rewrite every triple.
    let remap = |o: Oid| -> Oid {
        if o.is_null() {
            return o;
        }
        match o.tag() {
            TypeTag::Iri => Oid::iri(new_of_old[o.payload() as usize]),
            TypeTag::Str => Oid::string(str_map[o.payload() as usize]),
            _ => o,
        }
    };
    for t in ts.triples.iter_mut() {
        t.s = remap(t.s);
        t.p = remap(t.p);
        t.o = remap(t.o);
    }

    // 6. Remap every OID the schema holds: the subject assignment, the
    //    predicate of each column/side table (predicates are IRIs and were
    //    renumbered like everything else), and stale IRI/string stats.
    let old_assignment = std::mem::take(&mut schema.assignment);
    schema.assignment = old_assignment
        .into_iter()
        .map(|(s, c)| (remap(s), c))
        .collect();
    schema.type_pred = schema.type_pred.map(remap);
    for class in schema.classes.iter_mut() {
        for col in class.columns.iter_mut() {
            col.pred = remap(col.pred);
            if matches!(col.ty, TypeTag::Iri | TypeTag::Str) {
                col.stats.min = None; // refreshed by the clustered builder
                col.stats.max = None;
            }
        }
        for mp in class.multi_props.iter_mut() {
            mp.pred = remap(mp.pred);
            if matches!(mp.ty, TypeTag::Iri | TypeTag::Str) {
                mp.stats.min = None;
                mp.stats.max = None;
            }
        }
        class.reindex();
    }

    ReorgReport {
        n_subjects_clustered,
        n_iris,
        n_strings_sorted: str_map.len() as u64,
        class_bases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Term;
    use sordf_schema::SchemaConfig;

    /// Two classes: items (with a date) and tags; interleaved parse order.
    fn make_ts() -> TripleSet {
        let mut ts = TripleSet::new();
        let mut add = |s: String, p: &str, o: Term| {
            ts.add(&sordf_model::TermTriple::new(
                Term::iri(s),
                Term::iri(format!("http://e/{p}")),
                o,
            ))
            .unwrap();
        };
        // Interleave items and tags so parse order is maximally unhelpful;
        // give items *descending* dates so sub-ordering must reorder them.
        for i in 0..10u64 {
            add(
                format!("http://e/item{i}"),
                "price",
                Term::int(100 - i as i64),
            );
            add(
                format!("http://e/item{i}"),
                "sold",
                Term::date(&format!("1996-01-{:02}", 28 - i * 2)),
            );
            add(
                format!("http://e/tag{i}"),
                "label",
                Term::str(format!("tag-{}", 9 - i)),
            );
        }
        ts
    }

    fn discover(ts: &TripleSet) -> EmergentSchema {
        let spo = ts.sorted_spo();
        sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default())
    }

    #[test]
    fn subjects_become_dense_ranges() {
        let mut ts = make_ts();
        let mut schema = discover(&ts);
        let report = reorganize(&mut ts, &mut schema, &ClusterSpec::none());
        assert_eq!(report.n_subjects_clustered, 20);
        assert_eq!(report.class_bases.len(), 2);
        // Every class's subjects occupy exactly [base, base + n).
        for class in &schema.classes {
            let base = report.class_bases[class.id.0 as usize];
            let mut payloads: Vec<u64> = schema
                .assignment
                .iter()
                .filter(|&(_, &c)| c == class.id)
                .map(|(s, _)| s.payload())
                .collect();
            payloads.sort_unstable();
            let expect: Vec<u64> = (base..base + class.n_subjects).collect();
            assert_eq!(payloads, expect, "class {}", class.name);
        }
    }

    #[test]
    fn triples_decode_identically_after_reorg() {
        let mut ts = make_ts();
        let decode_all = |ts: &TripleSet| -> Vec<(Term, Term, Term)> {
            let mut v: Vec<_> = ts
                .triples
                .iter()
                .map(|t| {
                    (
                        ts.dict.decode(t.s).unwrap(),
                        ts.dict.decode(t.p).unwrap(),
                        ts.dict.decode(t.o).unwrap(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        let before = decode_all(&ts);
        let mut schema = discover(&ts);
        reorganize(&mut ts, &mut schema, &ClusterSpec::none());
        let after = decode_all(&ts);
        assert_eq!(before, after, "reorganization must be a bijective renaming");
    }

    #[test]
    fn sort_key_orders_subjects_by_date() {
        let mut ts = make_ts();
        let mut schema = discover(&ts);
        let sold = ts.dict.iri_oid("http://e/sold").unwrap();
        let item_class = schema
            .classes
            .iter()
            .find(|c| c.column_of(sold).is_some())
            .map(|c| c.id)
            .unwrap();
        let spec = ClusterSpec::none().with_sort_pred(&schema, item_class, sold);
        reorganize(&mut ts, &mut schema, &spec);
        // Walk item subjects in OID order; their sold dates must ascend.
        let sold_new = ts.dict.iri_oid("http://e/sold").unwrap();
        let mut dates: Vec<(u64, u64)> = ts
            .triples
            .iter()
            .filter(|t| t.p == sold_new)
            .map(|t| (t.s.payload(), t.o.raw()))
            .collect();
        dates.sort_unstable();
        assert!(
            dates.windows(2).all(|w| w[0].1 <= w[1].1),
            "dates ascend with subject OID"
        );
    }

    #[test]
    fn string_literals_sorted_lexicographically() {
        let mut ts = make_ts();
        let mut schema = discover(&ts);
        reorganize(&mut ts, &mut schema, &ClusterSpec::none());
        // tag-0 < tag-1 < ... must hold on OIDs now.
        let get = |s: &str| ts.dict.string_oid(s).unwrap();
        for i in 0..9 {
            assert!(get(&format!("tag-{i}")) < get(&format!("tag-{}", i + 1)));
        }
    }

    #[test]
    fn auto_spec_picks_date_column() {
        let ts = make_ts();
        let schema = discover(&ts);
        let spec = ClusterSpec::auto(&schema);
        let sold = ts.dict.iri_oid("http://e/sold").unwrap();
        assert!(spec.sort_keys.iter().any(|(&class, &col)| {
            schema.class(class).columns.get(col).map(|c| c.pred) == Some(sold)
        }));
    }
}
