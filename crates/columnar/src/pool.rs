//! Sharded LRU buffer pool over a [`DiskManager`].
//!
//! The pool is the only path from operators to stored pages, which makes the
//! paper's cold/hot distinction reproducible: a *cold* run calls
//! [`BufferPool::clear`] first (every page fault goes to the file, optionally
//! with synthetic latency), a *hot* run reuses the warm cache. The stats
//! counters double as the locality metric ("pages touched") reported by the
//! benchmark harnesses.
//!
//! # Threading model
//!
//! The pool is `Send + Sync` and built for concurrent readers: morsel workers
//! and concurrent queries share one pool. The page map is split into lock
//! *shards* keyed by a `PageId` hash — each shard owns its slice of the
//! capacity and its own LRU order, so two workers touching different pages
//! almost never contend on the same mutex. Counters are relaxed atomics and
//! page reads happen outside any lock; when two threads miss on the same page
//! simultaneously, both read it and the loser adopts the winner's frame
//! (never leaving a stale LRU entry behind — see `try_get`).
//!
//! # Page recycling
//!
//! Page ids are recycled by generation GC ([`DiskManager::free_pages`]), so
//! a cached frame for a freed id would silently serve stale data once the id
//! is reallocated. The pool therefore registers an invalidation hook with
//! its disk manager on construction: freed pages are dropped from the cache
//! *before* they enter the free list. The pool's internals live behind an
//! `Arc` so the hook holds only a `Weak` — a dropped pool prunes itself from
//! the manager's hook list instead of leaking.

use crate::disk::{DiskManager, PageId};
use parking_lot::Mutex;
use sordf_model::ModelError;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use sordf_model::fxhash::FxHashMap;

/// Default maximum number of lock shards. [`BufferPool::new`] scales the
/// actual count with capacity (one shard per [`MIN_PAGES_PER_SHARD`] pages,
/// capped here) so that small pools keep a near-global LRU instead of
/// splitting a tiny budget into thrash-prone slivers.
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Capacity granted per shard before another shard is worth its skew: below
/// this, partitioning the LRU costs more in premature evictions (a hot set
/// hashing into one shard's sliver) than the extra mutex relieves.
pub const MIN_PAGES_PER_SHARD: usize = 32;

/// Cumulative pool counters (monotone; use deltas around a query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests satisfied from the cache.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Pages evicted to stay within capacity.
    pub evictions: u64,
}

impl PoolStats {
    /// Stats delta since `earlier`. Saturating: counters are relaxed atomics
    /// bumped by concurrent threads, so a snapshot pair taken mid-update can
    /// observe one counter "ahead" of the other — a delta must clamp at zero
    /// instead of panicking in debug builds.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// A pinned page: wraps the page buffer and derefs to its full value slice.
/// Holding a guard does not block eviction — the data simply stays alive
/// until the last guard drops.
#[must_use = "dropping a PageGuard releases the pin; bind it for the scan's lifetime"]
pub struct PageGuard {
    data: Arc<Vec<u64>>,
}

impl std::ops::Deref for PageGuard {
    type Target = [u64];

    #[inline]
    fn deref(&self) -> &[u64] {
        &self.data
    }
}

struct Frame {
    data: Arc<Vec<u64>>,
    last_used: u64,
}

struct ShardInner {
    frames: FxHashMap<PageId, Frame>,
    /// (last_used, page) ordered set driving LRU eviction.
    lru: BTreeSet<(u64, PageId)>,
    tick: u64,
}

/// One lock shard: a slice of the capacity with its own LRU order.
struct Shard {
    capacity: usize,
    inner: Mutex<ShardInner>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            capacity,
            inner: Mutex::new(ShardInner {
                frames: FxHashMap::default(),
                lru: BTreeSet::new(),
                tick: 0,
            }),
        }
    }
}

/// The shared pool state. Lives behind an `Arc` so the disk manager's
/// free-page invalidation hook can hold a `Weak` reference (see the
/// [module docs](self)); all real logic lives here, [`BufferPool`] is the
/// thin public handle.
struct PoolInner {
    disk: Arc<DiskManager>,
    capacity: usize,
    shards: Box<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Synthetic extra latency per page read, in nanoseconds (0 = off).
    read_latency_ns: AtomicU64,
}

/// The sharded LRU page cache. See the [module docs](self). Cheap to pass
/// by reference; internally one `Arc` to the shared state.
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// A pool caching at most `capacity` pages (64 KiB each). The shard
    /// count scales with capacity — one shard per [`MIN_PAGES_PER_SHARD`]
    /// pages, at most [`DEFAULT_POOL_SHARDS`] — so small pools keep a
    /// near-global LRU while large pools get contention relief.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        let shards = (capacity / MIN_PAGES_PER_SHARD).clamp(1, DEFAULT_POOL_SHARDS);
        BufferPool::with_shards(disk, capacity, shards)
    }

    /// A pool with an explicit shard count. `n_shards = 1` restores the
    /// single global LRU (strict LRU semantics across all pages — used by
    /// eviction-order tests); more shards trade strictness of the global
    /// recency order for lower lock contention. Capacity is split across
    /// shards (remainder pages go to the first shards).
    pub fn with_shards(disk: Arc<DiskManager>, capacity: usize, n_shards: usize) -> BufferPool {
        assert!(capacity > 0, "pool capacity must be positive");
        assert!(n_shards > 0, "pool must have at least one shard");
        assert!(n_shards <= capacity, "more shards than capacity pages");
        let base = capacity / n_shards;
        let rem = capacity % n_shards;
        let shards: Box<[Shard]> = (0..n_shards)
            .map(|i| Shard::new(base + usize::from(i < rem)))
            .collect();
        let inner = Arc::new(PoolInner {
            disk: Arc::clone(&disk),
            capacity,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            read_latency_ns: AtomicU64::new(0),
        });
        // Freed (recyclable) pages must leave the cache before their ids are
        // reused; the Weak lets a dropped pool prune itself from the hook list.
        let weak: Weak<PoolInner> = Arc::downgrade(&inner);
        disk.register_invalidate_hook(Box::new(move |pages| match weak.upgrade() {
            Some(pool) => {
                pool.invalidate(pages);
                true
            }
            None => false,
        }));
        BufferPool { inner }
    }

    /// The disk manager this pool reads from.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.inner.disk
    }

    /// Configure synthetic per-miss latency (models a disk for cold runs).
    pub fn set_read_latency_ns(&self, ns: u64) {
        // ordering: Relaxed — a standalone config knob; readers only need to
        // see *some* recent value, nothing else is published through it.
        self.inner.read_latency_ns.store(ns, Ordering::Relaxed);
    }

    /// Pin a page for slice access. One pin per page is the contract of
    /// vectorized operators: the guard keeps the data alive (even across
    /// eviction), so a scan pays the pool's lock + lookup once per 8192
    /// values instead of once per value.
    pub fn pin(&self, id: PageId) -> PageGuard {
        PageGuard { data: self.get(id) }
    }

    /// Fallible [`BufferPool::pin`].
    pub fn try_pin(&self, id: PageId) -> Result<PageGuard, ModelError> {
        Ok(PageGuard {
            data: self.try_get(id)?,
        })
    }

    /// Fetch a page, from cache or disk. The returned `Arc` stays valid even
    /// if the page is evicted while in use.
    ///
    /// Panics if the page cannot be read after retries; use
    /// [`BufferPool::try_get`] where a read failure must be recoverable
    /// (the `sordf` facade catches this at the query boundary, so one bad
    /// read fails one query, not the process).
    pub fn get(&self, id: PageId) -> Arc<Vec<u64>> {
        self.try_get(id)
            // sordf-lint: allow(L3) — the documented contract of this API:
            // infallible callers opt into the panic; fallible ones use try_get.
            .unwrap_or_else(|e| panic!("buffer pool: {e}"))
    }

    /// Fetch a page, surfacing read failures as [`ModelError::PageRead`]
    /// after a bounded, capped-exponential-backoff retry loop (transient
    /// I/O errors are retried rather than poisoning any pool state — no
    /// lock is held across the read).
    // lock-order: acquires(pool_shard)
    pub fn try_get(&self, id: PageId) -> Result<Arc<Vec<u64>>, ModelError> {
        self.inner.try_get(id)
    }

    /// Drop every cached page — the next run is *cold*.
    // lock-order: acquires(pool_shard)
    pub fn clear(&self) {
        for shard in self.inner.shards.iter() {
            let mut inner = shard.inner.lock();
            inner.frames.clear();
            inner.lru.clear();
        }
    }

    /// Drop the cached frames of exactly `pages` (recycled ids). Called via
    /// the disk manager's free-page hook; also usable directly by tests.
    // lock-order: acquires(pool_shard)
    pub fn invalidate(&self, pages: &[PageId]) {
        self.inner.invalidate(pages);
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        // ordering: Relaxed — statistics snapshot; the three loads need not
        // be mutually consistent (PoolStats::since clamps at zero for that).
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of pages currently cached.
    // lock-order: acquires(pool_shard)
    pub fn cached_pages(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.inner.lock().frames.len())
            .sum()
    }

    /// Pool capacity in pages (summed across shards).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of lock shards.
    pub fn n_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Assert the internal invariants of every shard (debug/test hook):
    /// `frames` and `lru` describe the same page set, every LRU entry carries
    /// the live recency of its frame, no recency tick exceeds the shard's
    /// clock, every cached page hashes to the shard caching it, and no shard
    /// exceeds its capacity slice. Panics with a description on violation.
    // lock-order: acquires(pool_shard)
    pub fn check_invariants(&self) {
        for (si, shard) in self.inner.shards.iter().enumerate() {
            let inner = shard.inner.lock();
            assert_eq!(
                inner.frames.len(),
                inner.lru.len(),
                "shard {si}: frames ({}) and lru ({}) diverged",
                inner.frames.len(),
                inner.lru.len()
            );
            assert!(
                inner.frames.len() <= shard.capacity.max(1),
                "shard {si}: {} frames exceed shard capacity {}",
                inner.frames.len(),
                shard.capacity
            );
            for &(t, id) in &inner.lru {
                let frame_tick = inner.frames.get(&id).map(|f| f.last_used);
                assert_eq!(
                    frame_tick,
                    Some(t),
                    "shard {si}: LRU entry ({t}, {id:?}) diverged from frames \
                     (frame tick {frame_tick:?})"
                );
                assert!(
                    t <= inner.tick,
                    "shard {si}: LRU tick {t} is ahead of the shard clock {}",
                    inner.tick
                );
                assert!(
                    std::ptr::eq(self.inner.shard_of(id), shard),
                    "shard {si}: caches page {id:?} that hashes to another shard"
                );
            }
            for (id, frame) in &inner.frames {
                assert!(
                    frame.last_used <= inner.tick,
                    "shard {si}: frame {id:?} tick {} is ahead of the shard clock {}",
                    frame.last_used,
                    inner.tick
                );
            }
        }
    }
}

impl PoolInner {
    /// The shard owning a page. Fibonacci hashing spreads sequential page
    /// ids (columns allocate pages contiguously) across shards, so one
    /// scanning worker cycles through locks instead of hammering one.
    #[inline]
    fn shard_of(&self, id: PageId) -> &Shard {
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    // lock-order: acquires(pool_shard)
    fn try_get(&self, id: PageId) -> Result<Arc<Vec<u64>>, ModelError> {
        // ordering: Relaxed — hits/misses/evictions are monotone statistics
        // counters, read only via saturating deltas; the shard mutex carries
        // every happens-before edge the cache state itself needs.
        let shard = self.shard_of(id);
        {
            let mut inner = shard.inner.lock();
            let tick = inner.tick + 1;
            inner.tick = tick;
            if let Some(frame) = inner.frames.get_mut(&id) {
                let old = frame.last_used;
                frame.last_used = tick;
                let data = Arc::clone(&frame.data);
                inner.lru.remove(&(old, id));
                inner.lru.insert((tick, id));
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(data);
            }
        }
        // Miss: read outside the lock so concurrent readers are not
        // serialized on I/O (double reads of the same page are possible and
        // resolved below).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let latency = self.read_latency_ns.load(Ordering::Relaxed);
        if latency > 0 {
            spin_wait_ns(latency);
        }
        let data = Arc::new(self.read_page_retrying(id)?);
        let mut inner = shard.inner.lock();
        let tick = inner.tick + 1;
        inner.tick = tick;
        if let Some(frame) = inner.frames.get_mut(&id) {
            // A concurrent miss inserted this page while we were reading.
            // Adopt that frame and refresh its recency; inserting a second
            // frame here would overwrite the winner's but leave its stale
            // (last_used, id) entry dangling in the LRU set — a later
            // eviction would then remove a live frame while the dangling
            // entry survives, diverging `frames` from `lru`.
            let old = frame.last_used;
            frame.last_used = tick;
            let data = Arc::clone(&frame.data);
            inner.lru.remove(&(old, id));
            inner.lru.insert((tick, id));
            return Ok(data);
        }
        while inner.frames.len() >= shard.capacity.max(1) {
            if let Some(&(t, victim)) = inner.lru.iter().next() {
                inner.lru.remove(&(t, victim));
                inner.frames.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
        inner.frames.insert(
            id,
            Frame {
                data: Arc::clone(&data),
                last_used: tick,
            },
        );
        inner.lru.insert((tick, id));
        Ok(data)
    }

    /// Read a page with a *bounded* retry loop: transient errors back off
    /// exponentially (100 µs doubling, capped at 5 ms) so a persistently
    /// failing page surfaces [`ModelError::PageRead`] after ~6 attempts in
    /// well under a second instead of spinning a query thread, while a
    /// genuinely transient hiccup gets room to clear.
    fn read_page_retrying(&self, id: PageId) -> Result<Vec<u64>, ModelError> {
        const ATTEMPTS: u32 = 6;
        const BASE_BACKOFF_US: u64 = 100;
        const MAX_BACKOFF_US: u64 = 5_000;
        let mut last_err = None;
        for attempt in 0..ATTEMPTS {
            match self.disk.read_page(id) {
                Ok(vals) => return Ok(vals),
                Err(e) => {
                    // Only plausibly-transient errors are worth retrying; a
                    // short read (truncated / never-written page) or a
                    // NotFound can never succeed on the second attempt.
                    let transient = matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
                    );
                    last_err = Some(e);
                    if !transient {
                        break;
                    }
                    if attempt + 1 < ATTEMPTS {
                        let us = (BASE_BACKOFF_US << attempt).min(MAX_BACKOFF_US);
                        std::thread::sleep(std::time::Duration::from_micros(us));
                    }
                }
            }
        }
        Err(ModelError::PageRead {
            page: id.0,
            msg: last_err.map(|e| e.to_string()).unwrap_or_default(),
        })
    }

    // lock-order: acquires(pool_shard)
    fn invalidate(&self, pages: &[PageId]) {
        for &id in pages {
            let shard = self.shard_of(id);
            let mut inner = shard.inner.lock();
            if let Some(frame) = inner.frames.remove(&id) {
                inner.lru.remove(&(frame.last_used, id));
            }
        }
    }
}

/// Busy-wait for sub-millisecond synthetic latencies (thread::sleep is far
/// too coarse at this scale and would distort cold timings).
fn spin_wait_ns(ns: u64) {
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CountingFault;

    fn pool_with_pages(n_pages: u64, capacity: usize) -> (BufferPool, Vec<PageId>) {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let ids: Vec<PageId> = (0..n_pages)
            .map(|i| {
                let id = dm.alloc_page();
                dm.write_page(id, &[i * 100]).unwrap();
                id
            })
            .collect();
        (BufferPool::new(dm, capacity), ids)
    }

    /// Like `pool_with_pages` but with one global LRU shard, for tests that
    /// assert strict cross-page eviction order.
    fn single_shard_pool(n_pages: u64, capacity: usize) -> (BufferPool, Vec<PageId>) {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let ids: Vec<PageId> = (0..n_pages)
            .map(|i| {
                let id = dm.alloc_page();
                dm.write_page(id, &[i * 100]).unwrap();
                id
            })
            .collect();
        (BufferPool::with_shards(dm, capacity, 1), ids)
    }

    #[test]
    fn hit_after_miss() {
        let (pool, ids) = pool_with_pages(1, 4);
        assert_eq!(pool.get(ids[0])[0], 0);
        assert_eq!(pool.get(ids[0])[0], 0);
        let s = pool.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (pool, ids) = single_shard_pool(3, 2);
        pool.get(ids[0]);
        pool.get(ids[1]);
        pool.get(ids[0]); // 0 now more recent than 1
        pool.get(ids[2]); // evicts 1
        assert_eq!(pool.cached_pages(), 2);
        let before = pool.stats();
        pool.get(ids[0]); // still cached
        assert_eq!(pool.stats().hits, before.hits + 1);
        pool.get(ids[1]); // was evicted -> miss
        assert_eq!(pool.stats().misses, before.misses + 1);
        pool.check_invariants();
    }

    #[test]
    fn clear_makes_next_access_cold() {
        let (pool, ids) = pool_with_pages(2, 4);
        pool.get(ids[0]);
        pool.get(ids[1]);
        pool.clear();
        assert_eq!(pool.cached_pages(), 0);
        let before = pool.stats();
        pool.get(ids[0]);
        assert_eq!(pool.stats().since(&before).misses, 1);
    }

    #[test]
    fn data_survives_eviction_for_holders() {
        let (pool, ids) = single_shard_pool(3, 1);
        let held = pool.get(ids[0]);
        pool.get(ids[1]);
        pool.get(ids[2]);
        // ids[0] has been evicted but our Arc is still valid.
        assert_eq!(held[0], 0);
        assert!(pool.stats().evictions >= 2);
    }

    #[test]
    fn stats_delta() {
        let (pool, ids) = pool_with_pages(2, 4);
        let t0 = pool.stats();
        pool.get(ids[0]);
        pool.get(ids[0]);
        let d = pool.stats().since(&t0);
        assert_eq!((d.misses, d.hits), (1, 1));
    }

    #[test]
    fn stats_delta_saturates_on_torn_snapshots() {
        // A snapshot pair taken around concurrent updates can observe the
        // "later" snapshot behind the earlier one per counter; the delta
        // clamps at zero instead of panicking on underflow.
        let newer = PoolStats {
            hits: 5,
            misses: 2,
            evictions: 0,
        };
        let older = PoolStats {
            hits: 7,
            misses: 1,
            evictions: 3,
        };
        let d = newer.since(&older);
        assert_eq!((d.hits, d.misses, d.evictions), (0, 1, 0));
    }

    #[test]
    fn capacity_splits_across_shards() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let pool = BufferPool::with_shards(dm, 10, 4);
        assert_eq!(pool.capacity(), 10);
        assert_eq!(pool.n_shards(), 4);
        let per_shard: usize = pool.inner.shards.iter().map(|s| s.capacity).sum();
        assert_eq!(per_shard, 10);
        assert!(pool
            .inner
            .shards
            .iter()
            .all(|s| s.capacity == 2 || s.capacity == 3));
    }

    #[test]
    fn shard_count_scales_with_capacity() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        // Tiny pools keep a single global LRU; big pools cap at the default.
        assert_eq!(BufferPool::new(Arc::clone(&dm), 2).n_shards(), 1);
        assert_eq!(BufferPool::new(Arc::clone(&dm), 31).n_shards(), 1);
        assert_eq!(BufferPool::new(Arc::clone(&dm), 64).n_shards(), 2);
        assert_eq!(
            BufferPool::new(Arc::clone(&dm), 4096).n_shards(),
            DEFAULT_POOL_SHARDS
        );
    }

    #[test]
    fn sharded_pool_respects_total_capacity() {
        let (pool, ids) = pool_with_pages(64, 8);
        for &id in &ids {
            pool.get(id);
        }
        assert!(
            pool.cached_pages() <= pool.capacity(),
            "{} cached > capacity {}",
            pool.cached_pages(),
            pool.capacity()
        );
        pool.check_invariants();
    }

    #[test]
    fn missing_page_surfaces_error_not_panic() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let pool = BufferPool::new(dm, 4);
        // Never allocated or written: the read fails with a short read.
        let err = pool.try_get(PageId(999)).unwrap_err();
        match err {
            ModelError::PageRead { page, .. } => assert_eq!(page, 999),
            other => panic!("unexpected error {other:?}"),
        }
        // The failure left no partial state behind.
        assert_eq!(pool.cached_pages(), 0);
        pool.check_invariants();
    }

    #[test]
    fn transient_read_faults_are_retried_with_backoff() {
        let (pool, ids) = pool_with_pages(1, 4);
        // Two transient failures, then success: the bounded backoff loop
        // must absorb them without surfacing an error.
        pool.disk()
            .set_fault(Some(Arc::new(CountingFault::fail_reads(
                2,
                std::io::ErrorKind::WouldBlock,
            ))));
        assert_eq!(pool.get(ids[0])[0], 0);
        pool.disk().set_fault(None);
        pool.check_invariants();
    }

    #[test]
    fn persistent_read_fault_surfaces_bounded_page_read_error() {
        let (pool, ids) = pool_with_pages(1, 4);
        // More transient failures than the retry budget: the loop must give
        // up with PageRead instead of spinning, and consume exactly its
        // bounded attempt budget.
        let fault = Arc::new(CountingFault::fail_reads(
            1_000,
            std::io::ErrorKind::WouldBlock,
        ));
        pool.disk().set_fault(Some(fault));
        let t0 = std::time::Instant::now();
        let err = pool.try_get(ids[0]).unwrap_err();
        assert!(matches!(err, ModelError::PageRead { .. }));
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "retry loop must be bounded"
        );
        pool.disk().set_fault(None);
        assert_eq!(pool.get(ids[0])[0], 0, "recovers once the fault clears");
        pool.check_invariants();
    }

    #[test]
    fn non_transient_read_fault_fails_fast() {
        let (pool, ids) = pool_with_pages(1, 4);
        pool.disk()
            .set_fault(Some(Arc::new(CountingFault::fail_reads(
                1,
                std::io::ErrorKind::NotFound,
            ))));
        let err = pool.try_get(ids[0]).unwrap_err();
        assert!(matches!(err, ModelError::PageRead { .. }));
        // A single injected fault consumed: no retries burned the budget.
        pool.disk().set_fault(None);
        assert_eq!(pool.get(ids[0])[0], 0);
    }

    #[test]
    fn freed_pages_are_invalidated_through_the_hook() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let pool = BufferPool::new(Arc::clone(&dm), 8);
        let id = dm.alloc_page();
        dm.write_page(id, &[41]).unwrap();
        assert_eq!(pool.get(id)[0], 41);
        assert_eq!(pool.cached_pages(), 1);
        // Free + reallocate the id with different content: the hook must
        // have dropped the stale frame, so the pool re-reads from disk.
        dm.free_pages(&[id]);
        assert_eq!(pool.cached_pages(), 0, "freed page left the cache");
        let id2 = dm.alloc_page();
        assert_eq!(id2, id, "the id was recycled");
        dm.write_page(id2, &[42]).unwrap();
        assert_eq!(pool.get(id2)[0], 42, "no stale frame served");
        pool.check_invariants();
    }

    #[test]
    fn dropped_pool_prunes_its_hook() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let id = dm.alloc_page();
        dm.write_page(id, &[7]).unwrap();
        {
            let pool = BufferPool::new(Arc::clone(&dm), 8);
            pool.get(id);
        }
        // The pool is gone; freeing must not fire into a dead hook (the
        // Weak upgrade fails and the hook self-prunes).
        dm.free_pages(&[id]);
        dm.free_pages(&[dm.alloc_page()]);
    }

    /// The PR-3 regression: two threads missing on the same page both insert;
    /// before the fix the second `frames.insert` overwrote the first frame
    /// but left its stale `(last_used, id)` entry in the LRU set, so a later
    /// eviction removed a live frame while a dangling entry survived. Hammer
    /// one hot page (plus eviction pressure) from 8 threads through a
    /// capacity-2 pool and assert the frames/LRU invariants hold throughout.
    #[test]
    fn concurrent_misses_keep_frames_and_lru_aligned() {
        for n_shards in [1, 2] {
            let dm = Arc::new(DiskManager::temp().unwrap());
            let ids: Vec<PageId> = (0..4u64)
                .map(|i| {
                    let id = dm.alloc_page();
                    dm.write_page(id, &[i * 100]).unwrap();
                    id
                })
                .collect();
            let pool = BufferPool::with_shards(dm, 2, n_shards);
            std::thread::scope(|s| {
                for t in 0..8usize {
                    let pool = &pool;
                    let ids = &ids;
                    s.spawn(move || {
                        for i in 0..2000usize {
                            // Everyone hammers the hot page; half the threads
                            // interleave other pages to force evictions and
                            // re-misses of the hot page.
                            let id = if t % 2 == 0 || i % 3 == 0 {
                                ids[0]
                            } else {
                                ids[1 + (i + t) % 3]
                            };
                            let data = pool.get(id);
                            let want = ids.iter().position(|&x| x == id).unwrap() as u64 * 100;
                            assert_eq!(data[0], want, "corrupt frame for {id:?}");
                            if i % 64 == 0 {
                                pool.check_invariants();
                            }
                        }
                    });
                }
            });
            pool.check_invariants();
            assert!(pool.cached_pages() <= pool.capacity());
        }
    }
}
