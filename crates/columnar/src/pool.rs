//! LRU buffer pool over a [`DiskManager`].
//!
//! The pool is the only path from operators to stored pages, which makes the
//! paper's cold/hot distinction reproducible: a *cold* run calls
//! [`BufferPool::clear`] first (every page fault goes to the file, optionally
//! with synthetic latency), a *hot* run reuses the warm cache. The stats
//! counters double as the locality metric ("pages touched") reported by the
//! benchmark harnesses.

use crate::disk::{DiskManager, PageId};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sordf_model::fxhash::FxHashMap;

/// Cumulative pool counters (monotone; use deltas around a query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests satisfied from the cache.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Pages evicted to stay within capacity.
    pub evictions: u64,
}

impl PoolStats {
    /// Stats delta since `earlier`.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// A pinned page: wraps the page buffer and derefs to its full value slice.
/// Holding a guard does not block eviction — the data simply stays alive
/// until the last guard drops.
pub struct PageGuard {
    data: Arc<Vec<u64>>,
}

impl std::ops::Deref for PageGuard {
    type Target = [u64];

    #[inline]
    fn deref(&self) -> &[u64] {
        &self.data
    }
}

struct Frame {
    data: Arc<Vec<u64>>,
    last_used: u64,
}

struct PoolInner {
    frames: FxHashMap<PageId, Frame>,
    /// (last_used, page) ordered set driving LRU eviction.
    lru: BTreeSet<(u64, PageId)>,
    tick: u64,
}

/// The LRU page cache. See the [module docs](self).
pub struct BufferPool {
    disk: Arc<DiskManager>,
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Synthetic extra latency per page read, in nanoseconds (0 = off).
    read_latency_ns: AtomicU64,
}

impl BufferPool {
    /// A pool caching at most `capacity` pages (64 KiB each).
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "pool capacity must be positive");
        BufferPool {
            disk,
            capacity,
            inner: Mutex::new(PoolInner {
                frames: FxHashMap::default(),
                lru: BTreeSet::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            read_latency_ns: AtomicU64::new(0),
        }
    }

    /// The disk manager this pool reads from.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Configure synthetic per-miss latency (models a disk for cold runs).
    pub fn set_read_latency_ns(&self, ns: u64) {
        self.read_latency_ns.store(ns, Ordering::Relaxed);
    }

    /// Pin a page for slice access. One pin per page is the contract of
    /// vectorized operators: the guard keeps the data alive (even across
    /// eviction), so a scan pays the pool's lock + lookup once per 8192
    /// values instead of once per value.
    pub fn pin(&self, id: PageId) -> PageGuard {
        PageGuard { data: self.get(id) }
    }

    /// Fetch a page, from cache or disk. The returned `Arc` stays valid even
    /// if the page is evicted while in use.
    pub fn get(&self, id: PageId) -> Arc<Vec<u64>> {
        {
            let mut inner = self.inner.lock();
            let tick = inner.tick + 1;
            inner.tick = tick;
            if let Some(frame) = inner.frames.get_mut(&id) {
                let old = frame.last_used;
                frame.last_used = tick;
                let data = Arc::clone(&frame.data);
                inner.lru.remove(&(old, id));
                inner.lru.insert((tick, id));
                self.hits.fetch_add(1, Ordering::Relaxed);
                return data;
            }
        }
        // Miss: read outside the lock so concurrent readers are not serialized
        // on I/O (double reads of the same page are possible but harmless).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let latency = self.read_latency_ns.load(Ordering::Relaxed);
        if latency > 0 {
            spin_wait_ns(latency);
        }
        let data = Arc::new(self.disk.read_page(id).expect("page read failed"));
        let mut inner = self.inner.lock();
        let tick = inner.tick + 1;
        inner.tick = tick;
        while inner.frames.len() >= self.capacity {
            if let Some(&(t, victim)) = inner.lru.iter().next() {
                inner.lru.remove(&(t, victim));
                inner.frames.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
        inner.frames.insert(id, Frame { data: Arc::clone(&data), last_used: tick });
        inner.lru.insert((tick, id));
        data
    }

    /// Drop every cached page — the next run is *cold*.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.lru.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Busy-wait for sub-millisecond synthetic latencies (thread::sleep is far
/// too coarse at this scale and would distort cold timings).
fn spin_wait_ns(ns: u64) {
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_pages(n_pages: u64, capacity: usize) -> (BufferPool, Vec<PageId>) {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let ids: Vec<PageId> = (0..n_pages)
            .map(|i| {
                let id = dm.alloc_page();
                dm.write_page(id, &[i * 100]).unwrap();
                id
            })
            .collect();
        (BufferPool::new(dm, capacity), ids)
    }

    #[test]
    fn hit_after_miss() {
        let (pool, ids) = pool_with_pages(1, 4);
        assert_eq!(pool.get(ids[0])[0], 0);
        assert_eq!(pool.get(ids[0])[0], 0);
        let s = pool.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (pool, ids) = pool_with_pages(3, 2);
        pool.get(ids[0]);
        pool.get(ids[1]);
        pool.get(ids[0]); // 0 now more recent than 1
        pool.get(ids[2]); // evicts 1
        assert_eq!(pool.cached_pages(), 2);
        let before = pool.stats();
        pool.get(ids[0]); // still cached
        assert_eq!(pool.stats().hits, before.hits + 1);
        pool.get(ids[1]); // was evicted -> miss
        assert_eq!(pool.stats().misses, before.misses + 1);
    }

    #[test]
    fn clear_makes_next_access_cold() {
        let (pool, ids) = pool_with_pages(2, 4);
        pool.get(ids[0]);
        pool.get(ids[1]);
        pool.clear();
        assert_eq!(pool.cached_pages(), 0);
        let before = pool.stats();
        pool.get(ids[0]);
        assert_eq!(pool.stats().since(&before).misses, 1);
    }

    #[test]
    fn data_survives_eviction_for_holders() {
        let (pool, ids) = pool_with_pages(3, 1);
        let held = pool.get(ids[0]);
        pool.get(ids[1]);
        pool.get(ids[2]);
        // ids[0] has been evicted but our Arc is still valid.
        assert_eq!(held[0], 0);
        assert!(pool.stats().evictions >= 2);
    }

    #[test]
    fn stats_delta() {
        let (pool, ids) = pool_with_pages(2, 4);
        let t0 = pool.stats();
        pool.get(ids[0]);
        pool.get(ids[0]);
        let d = pool.stats().since(&t0);
        assert_eq!((d.misses, d.hits), (1, 1));
    }
}
