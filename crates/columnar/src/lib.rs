//! # sordf-columnar
//!
//! The paged columnar storage substrate underneath the `sordf` RDF store —
//! the stand-in for the MonetDB kernel's BAT storage in this reproduction.
//!
//! * [`DiskManager`] — page-granular file I/O (64 KiB pages of 8192 u64s).
//! * [`BufferPool`] — an LRU page cache with `Arc` handout and
//!   hit/miss/read statistics. "Cold" runs in the paper's Table I are
//!   reproduced by [`BufferPool::clear`]; optional synthetic per-read latency
//!   models a spinning disk deterministically.
//! * [`Column`] / [`ColumnBuilder`] — immutable u64 columns stored across
//!   pages, with per-page [`ZoneMap`]s (min/max/null-count) built at write
//!   time, chunked access for vectorized operators, and binary search over
//!   sorted columns.
//! * [`Bitmap`] — packed bitsets used for NULL masks and selection vectors.
//!
//! Every access to stored data in the engine goes through a [`BufferPool`],
//! so the paper's locality arguments (how many pages a plan touches) are
//! directly measurable via [`PoolStats`].

pub mod bitmap;
pub mod column;
pub mod compress;
pub mod disk;
pub mod fault;
pub mod pool;
pub mod zonemap;

pub use bitmap::Bitmap;
pub use column::Chunk;
pub use column::{Column, ColumnBuilder, ColumnEncoding};
pub use compress::PageEnc;
pub use disk::{DiskManager, PageId, PageLease, PAGE_BYTES, VALS_PER_PAGE};
pub use fault::{CountingFault, DiskFault, WriteFault};
pub use pool::{BufferPool, PageGuard, PoolStats, DEFAULT_POOL_SHARDS, MIN_PAGES_PER_SHARD};
pub use zonemap::{PageStats, ZoneMap};

/// Compile-time thread-safety audit: the shared storage layer must be
/// usable from morsel workers and concurrent queries without wrappers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DiskManager>();
    assert_send_sync::<BufferPool>();
    assert_send_sync::<Column>();
    assert_send_sync::<Chunk>();
    assert_send_sync::<PageGuard>();
    assert_send_sync::<ZoneMap>();
};
