//! Page-granular file storage.
//!
//! A [`DiskManager`] owns one database file and hands out fixed-size pages.
//! Pages hold 8192 little-endian u64 values (64 KiB) — all sordf columns are
//! u64-typed (tagged OIDs), so one page type suffices.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// u64 values per page.
pub const VALS_PER_PAGE: usize = 8192;
/// Bytes per page.
pub const PAGE_BYTES: usize = VALS_PER_PAGE * 8;

/// Identifier of a page within a database file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

/// Owns the database file; allocates, writes and reads pages.
///
/// Writing happens only during bulk load / reorganization (columns are
/// immutable once built), so there is no write-ahead logging — crash
/// consistency is out of scope for this reproduction, as it is for the
/// paper's experiments.
pub struct DiskManager {
    file: File,
    path: PathBuf,
    next_page: AtomicU64,
    /// Guards against interleaved allocation+write races during parallel load.
    write_lock: Mutex<()>,
    delete_on_drop: bool,
}

impl DiskManager {
    /// Create (truncate) a database file at `path`.
    pub fn create(path: &Path) -> io::Result<DiskManager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskManager {
            file,
            path: path.to_path_buf(),
            next_page: AtomicU64::new(0),
            write_lock: Mutex::new(()),
            delete_on_drop: false,
        })
    }

    /// Create a database file in the system temp directory that is deleted
    /// when the manager drops. Used by tests, examples and benches.
    pub fn temp() -> io::Result<DiskManager> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — fetch_add's atomicity alone guarantees unique
        // temp-file names; no memory is published through the counter.
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("sordf-{}-{}.db", std::process::id(), n));
        let mut dm = DiskManager::create(&path)?;
        dm.delete_on_drop = true;
        Ok(dm)
    }

    /// The file path backing this manager.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages allocated so far.
    pub fn n_pages(&self) -> u64 {
        // ordering: Relaxed — an informational snapshot of the allocation
        // counter; page *contents* are published by write_page's file I/O.
        self.next_page.load(Ordering::Relaxed)
    }

    /// Allocate a fresh page id.
    pub fn alloc_page(&self) -> PageId {
        // ordering: Relaxed — allocation needs only fetch_add's atomicity
        // for uniqueness; nothing is read through the returned id until a
        // write_page/read_page pair synchronizes the data itself.
        PageId(self.next_page.fetch_add(1, Ordering::Relaxed))
    }

    /// Write a full page of values. `vals` may be shorter than a page
    /// (the final page of a column); the remainder is zero-filled.
    // lock-order: acquires(disk_write)
    pub fn write_page(&self, id: PageId, vals: &[u64]) -> io::Result<()> {
        assert!(vals.len() <= VALS_PER_PAGE, "page overflow");
        let mut buf = vec![0u8; PAGE_BYTES];
        for (i, v) in vals.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        let _guard = self.write_lock.lock();
        self.write_at(&buf, id.0 * PAGE_BYTES as u64)
    }

    /// Read a page into a freshly allocated value buffer.
    pub fn read_page(&self, id: PageId) -> io::Result<Vec<u64>> {
        let mut buf = vec![0u8; PAGE_BYTES];
        self.read_at(&mut buf, id.0 * PAGE_BYTES as u64)?;
        let mut vals = vec![0u64; VALS_PER_PAGE];
        for (v, chunk) in vals.iter_mut().zip(buf.chunks_exact(8)) {
            let mut le = [0u8; 8];
            le.copy_from_slice(chunk);
            *v = u64::from_le_bytes(le);
        }
        Ok(vals)
    }

    #[cfg(unix)]
    fn write_at(&self, buf: &[u8], off: u64) -> io::Result<()> {
        self.file.write_all_at(buf, off)
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        // The file is created by us with whole-page writes, so short reads
        // only happen on corruption; surface them as errors.
        self.file.read_exact_at(buf, off)
    }

    #[cfg(not(unix))]
    fn write_at(&self, _buf: &[u8], _off: u64) -> io::Result<()> {
        Err(unsupported_platform())
    }

    #[cfg(not(unix))]
    fn read_at(&self, _buf: &mut [u8], _off: u64) -> io::Result<()> {
        Err(unsupported_platform())
    }
}

/// Positional page I/O needs `FileExt`, which std only provides on unix
/// targets. Off-unix the crate still compiles; page reads and writes fail
/// gracefully with `ErrorKind::Unsupported` instead of panicking.
#[cfg(not(unix))]
fn unsupported_platform() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "sordf-columnar page I/O requires a unix target (positional file I/O)",
    )
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_roundtrip() {
        let dm = DiskManager::temp().unwrap();
        let p0 = dm.alloc_page();
        let p1 = dm.alloc_page();
        let a: Vec<u64> = (0..VALS_PER_PAGE as u64).collect();
        let b: Vec<u64> = (0..100).map(|i| i * 7).collect();
        dm.write_page(p0, &a).unwrap();
        dm.write_page(p1, &b).unwrap();
        assert_eq!(dm.read_page(p0).unwrap(), a);
        let rb = dm.read_page(p1).unwrap();
        assert_eq!(&rb[..100], &b[..]);
        assert!(rb[100..].iter().all(|&v| v == 0), "tail zero-filled");
        assert_eq!(dm.n_pages(), 2);
    }

    #[test]
    fn temp_file_removed_on_drop() {
        let path;
        {
            let dm = DiskManager::temp().unwrap();
            path = dm.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn out_of_order_page_writes() {
        let dm = DiskManager::temp().unwrap();
        let ids: Vec<PageId> = (0..4).map(|_| dm.alloc_page()).collect();
        for (i, &id) in ids.iter().enumerate().rev() {
            dm.write_page(id, &[i as u64; 10]).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(dm.read_page(id).unwrap()[0], i as u64);
        }
    }
}
