//! Page-granular file storage.
//!
//! A [`DiskManager`] owns one database file and hands out fixed-size pages.
//! Pages hold 8192 little-endian u64 values (64 KiB) — all sordf columns are
//! u64-typed (tagged OIDs), so one page type suffices.
//!
//! Pages are recycled, not leaked: [`DiskManager::free_pages`] returns dead
//! extents to a free list that [`DiskManager::alloc_page`] drains before
//! growing the file, and a [`PageLease`] ties a built structure's pages to
//! its lifetime so a swapped-out store generation gives its extents back
//! when the last pin on it drops. Crash consistency of *logical* data is
//! the job of the WAL + manifest layer in `sordf-storage`; this layer's
//! contract is narrower: page writes either complete fully or surface an
//! `io::Error`, short transfers and `EINTR` are retried, and
//! [`DiskManager::flush`] surfaces `fsync` failures instead of swallowing
//! them.
//!
//! For fault-injection tests a [`DiskFault`] shim can be installed with
//! [`DiskManager::set_fault`]: it can fail reads transiently, tear a write
//! mid-page, or truncate individual transfers to exercise the retry loops.

use crate::fault::{DiskFault, WriteFault};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// u64 values per page.
pub const VALS_PER_PAGE: usize = 8192;
/// Bytes per page.
pub const PAGE_BYTES: usize = VALS_PER_PAGE * 8;

/// Identifier of a page within a database file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

/// A cache-invalidation callback registered by a buffer pool: called with
/// the page ids being freed; returns `false` when the pool is gone and the
/// hook should be dropped.
pub type InvalidateHook = Box<dyn Fn(&[PageId]) -> bool + Send + Sync>;

/// Owns the database file; allocates, writes, reads and recycles pages.
///
/// Writing happens only during bulk load / reorganization (columns are
/// immutable once built). Logical crash consistency lives a layer up (the
/// WAL + manifest in `sordf-storage`); this type guarantees only physical
/// honesty: full transfers or surfaced errors, and an explicit
/// [`flush`](DiskManager::flush) for durability barriers.
pub struct DiskManager {
    file: File,
    path: PathBuf,
    next_page: AtomicU64,
    /// Guards against interleaved allocation+write races during parallel load.
    write_lock: Mutex<()>,
    /// Freed page ids, reused by `alloc_page` before the file grows.
    free: Mutex<Vec<u64>>,
    /// Pool invalidation callbacks, run before a page id is recycled.
    hooks: Mutex<Vec<InvalidateHook>>,
    /// Fast-path flag: a fault shim is installed.
    // ordering: Relaxed — the flag only gates an optional test shim; the
    // shim Arc itself is published by the `fault` mutex.
    fault_armed: AtomicBool,
    /// The installed fault shim, if any (tests only).
    fault: Mutex<Option<Arc<dyn DiskFault>>>,
    delete_on_drop: bool,
}

impl DiskManager {
    /// Create (truncate) a database file at `path`.
    pub fn create(path: &Path) -> io::Result<DiskManager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskManager {
            file,
            path: path.to_path_buf(),
            next_page: AtomicU64::new(0),
            write_lock: Mutex::new(()),
            free: Mutex::new(Vec::new()),
            hooks: Mutex::new(Vec::new()),
            fault_armed: AtomicBool::new(false),
            fault: Mutex::new(None),
            delete_on_drop: false,
        })
    }

    /// Create a database file in the system temp directory that is deleted
    /// when the manager drops. Used by tests, examples and benches.
    pub fn temp() -> io::Result<DiskManager> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — fetch_add's atomicity alone guarantees unique
        // temp-file names; no memory is published through the counter.
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("sordf-{}-{}.db", std::process::id(), n));
        let mut dm = DiskManager::create(&path)?;
        dm.delete_on_drop = true;
        Ok(dm)
    }

    /// The file path backing this manager.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages ever allocated (the file's high-water mark in
    /// pages). Freed-and-reused pages do not advance this.
    pub fn n_pages(&self) -> u64 {
        // ordering: Relaxed — an informational snapshot of the allocation
        // counter; page *contents* are published by write_page's file I/O.
        self.next_page.load(Ordering::Relaxed)
    }

    /// Number of freed pages currently awaiting reuse.
    pub fn n_free_pages(&self) -> usize {
        self.free.lock().len()
    }

    /// Allocate a page id, preferring the free list over file growth.
    pub fn alloc_page(&self) -> PageId {
        if let Some(id) = self.free.lock().pop() {
            return PageId(id);
        }
        // ordering: Relaxed — allocation needs only fetch_add's atomicity
        // for uniqueness; nothing is read through the returned id until a
        // write_page/read_page pair synchronizes the data itself.
        PageId(self.next_page.fetch_add(1, Ordering::Relaxed))
    }

    /// Return dead pages to the free list for reuse. Registered buffer
    /// pools are invalidated first so no stale cached frame can ever be
    /// served for a recycled id.
    pub fn free_pages(&self, pages: &[PageId]) {
        if pages.is_empty() {
            return;
        }
        self.hooks.lock().retain(|hook| hook(pages));
        let mut free = self.free.lock();
        free.extend(pages.iter().map(|p| p.0));
    }

    /// Register a cache-invalidation hook (see [`InvalidateHook`]). Buffer
    /// pools call this on construction; hooks returning `false` are pruned.
    pub fn register_invalidate_hook(&self, hook: InvalidateHook) {
        self.hooks.lock().push(hook);
    }

    /// Install (or clear) a fault-injection shim. Testing only: every page
    /// read and write consults the shim while one is installed.
    pub fn set_fault(&self, fault: Option<Arc<dyn DiskFault>>) {
        // ordering: Relaxed — the mutex below publishes the shim; the flag
        // is a best-effort fast path that tolerates staleness either way.
        self.fault_armed.store(fault.is_some(), Ordering::Relaxed);
        *self.fault.lock() = fault;
    }

    fn current_fault(&self) -> Option<Arc<dyn DiskFault>> {
        // ordering: Relaxed — see set_fault; a racing reader that misses
        // the flag flip just takes one more fault-free I/O.
        if !self.fault_armed.load(Ordering::Relaxed) {
            return None;
        }
        self.fault.lock().clone()
    }

    /// Durability barrier: flush file contents and metadata to stable
    /// storage, surfacing the `fsync` error instead of swallowing it.
    pub fn flush(&self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Write a full page of values. `vals` may be shorter than a page
    /// (the final page of a column); the remainder is zero-filled.
    // lock-order: acquires(disk_write)
    pub fn write_page(&self, id: PageId, vals: &[u64]) -> io::Result<()> {
        assert!(vals.len() <= VALS_PER_PAGE, "page overflow");
        let mut buf = vec![0u8; PAGE_BYTES];
        for (i, v) in vals.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        let _guard = self.write_lock.lock();
        self.write_at(&buf, id.0 * PAGE_BYTES as u64, id)
    }

    /// Read a page into a freshly allocated value buffer.
    pub fn read_page(&self, id: PageId) -> io::Result<Vec<u64>> {
        let mut buf = vec![0u8; PAGE_BYTES];
        self.read_at(&mut buf, id.0 * PAGE_BYTES as u64, id)?;
        let mut vals = vec![0u64; VALS_PER_PAGE];
        for (v, chunk) in vals.iter_mut().zip(buf.chunks_exact(8)) {
            let mut le = [0u8; 8];
            le.copy_from_slice(chunk);
            *v = u64::from_le_bytes(le);
        }
        Ok(vals)
    }

    /// Positional write that loops on short transfers and `EINTR` instead
    /// of assuming the kernel moves the whole buffer in one call.
    #[cfg(unix)]
    fn write_at(&self, buf: &[u8], off: u64, id: PageId) -> io::Result<()> {
        let fault = self.current_fault();
        let mut done = 0usize;
        while done < buf.len() {
            let mut limit = buf.len();
            if let Some(f) = fault.as_ref() {
                match f.write_fault(id) {
                    Some(WriteFault::Error(kind)) => {
                        return Err(io::Error::new(kind, "injected write fault"));
                    }
                    Some(WriteFault::Torn { bytes, kind }) => {
                        // Tear the page: persist a prefix, then fail as if
                        // the process died mid-write.
                        let end = (done + bytes).min(buf.len());
                        while done < end {
                            match self.file.write_at(&buf[done..end], off + done as u64) {
                                Ok(n) => done += n,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                Err(e) => return Err(e),
                            }
                        }
                        return Err(io::Error::new(kind, "injected torn write"));
                    }
                    Some(WriteFault::Short(n)) => limit = (done + n.max(1)).min(buf.len()),
                    None => {}
                }
            }
            match self.file.write_at(&buf[done..limit], off + done as u64) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "write_at returned 0 bytes",
                    ));
                }
                Ok(n) => done += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Positional read that loops on short transfers and `EINTR`. A true
    /// EOF inside a page means corruption and surfaces `UnexpectedEof`.
    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], off: u64, id: PageId) -> io::Result<()> {
        if let Some(f) = self.current_fault() {
            if let Some(kind) = f.read_fault(id) {
                return Err(io::Error::new(kind, "injected read fault"));
            }
        }
        let mut done = 0usize;
        while done < buf.len() {
            match self.file.read_at(&mut buf[done..], off + done as u64) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "page truncated: EOF inside a page",
                    ));
                }
                Ok(n) => done += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    #[cfg(not(unix))]
    fn write_at(&self, _buf: &[u8], _off: u64, _id: PageId) -> io::Result<()> {
        Err(unsupported_platform())
    }

    #[cfg(not(unix))]
    fn read_at(&self, _buf: &mut [u8], _off: u64, _id: PageId) -> io::Result<()> {
        Err(unsupported_platform())
    }
}

impl std::fmt::Debug for DiskManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskManager")
            .field("path", &self.path)
            .field("n_pages", &self.n_pages())
            .field("n_free_pages", &self.n_free_pages())
            .finish_non_exhaustive()
    }
}

/// Positional page I/O needs `FileExt`, which std only provides on unix
/// targets. Off-unix the crate still compiles; page reads and writes fail
/// gracefully with `ErrorKind::Unsupported` instead of panicking.
#[cfg(not(unix))]
fn unsupported_platform() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "sordf-columnar page I/O requires a unix target (positional file I/O)",
    )
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        if self.delete_on_drop {
            // sordf-lint: allow(L7) — best-effort temp-file cleanup in Drop;
            // there is no caller to surface the error to and the data is
            // disposable by construction.
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Ties a built structure's pages to its lifetime: when the last clone of
/// the lease drops (i.e. the last `Arc<StoreGeneration>` pin on a
/// swapped-out generation), the pages return to the manager's free list.
/// This is what bounds file growth across background reorganization swaps.
pub struct PageLease {
    dm: Arc<DiskManager>,
    pages: Vec<PageId>,
}

impl PageLease {
    /// Lease `pages` from `dm`; they are freed when the lease drops.
    pub fn new(dm: Arc<DiskManager>, pages: Vec<PageId>) -> PageLease {
        PageLease { dm, pages }
    }

    /// Number of leased pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }
}

impl Drop for PageLease {
    fn drop(&mut self) {
        self.dm.free_pages(&self.pages);
    }
}

impl std::fmt::Debug for PageLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageLease")
            .field("n_pages", &self.pages.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CountingFault;

    #[test]
    fn page_roundtrip() {
        let dm = DiskManager::temp().unwrap();
        let p0 = dm.alloc_page();
        let p1 = dm.alloc_page();
        let a: Vec<u64> = (0..VALS_PER_PAGE as u64).collect();
        let b: Vec<u64> = (0..100).map(|i| i * 7).collect();
        dm.write_page(p0, &a).unwrap();
        dm.write_page(p1, &b).unwrap();
        assert_eq!(dm.read_page(p0).unwrap(), a);
        let rb = dm.read_page(p1).unwrap();
        assert_eq!(&rb[..100], &b[..]);
        assert!(rb[100..].iter().all(|&v| v == 0), "tail zero-filled");
        assert_eq!(dm.n_pages(), 2);
    }

    #[test]
    fn temp_file_removed_on_drop() {
        let path;
        {
            let dm = DiskManager::temp().unwrap();
            path = dm.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn out_of_order_page_writes() {
        let dm = DiskManager::temp().unwrap();
        let ids: Vec<PageId> = (0..4).map(|_| dm.alloc_page()).collect();
        for (i, &id) in ids.iter().enumerate().rev() {
            dm.write_page(id, &[i as u64; 10]).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(dm.read_page(id).unwrap()[0], i as u64);
        }
    }

    #[test]
    fn freed_pages_are_reused_before_growth() {
        let dm = DiskManager::temp().unwrap();
        let ids: Vec<PageId> = (0..8).map(|_| dm.alloc_page()).collect();
        assert_eq!(dm.n_pages(), 8);
        dm.free_pages(&ids[2..6]);
        assert_eq!(dm.n_free_pages(), 4);
        for _ in 0..4 {
            let id = dm.alloc_page();
            assert!(ids[2..6].contains(&id), "free list drained first");
        }
        assert_eq!(dm.n_free_pages(), 0);
        assert_eq!(dm.n_pages(), 8, "no file growth while frees are pending");
        assert_eq!(dm.alloc_page(), PageId(8), "then the file grows again");
    }

    #[test]
    fn page_lease_returns_pages_on_last_drop() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let pages: Vec<PageId> = (0..3).map(|_| dm.alloc_page()).collect();
        let lease = Arc::new(PageLease::new(Arc::clone(&dm), pages));
        let clone = Arc::clone(&lease);
        drop(lease);
        assert_eq!(dm.n_free_pages(), 0, "a live clone still holds the lease");
        drop(clone);
        assert_eq!(dm.n_free_pages(), 3, "last drop frees the extent");
    }

    #[test]
    fn invalidate_hooks_run_and_prune() {
        use std::sync::atomic::AtomicUsize;
        let dm = DiskManager::temp().unwrap();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        dm.register_invalidate_hook(Box::new(move |pages| {
            // ordering: Relaxed — test counter only.
            seen2.fetch_add(pages.len(), Ordering::Relaxed);
            true
        }));
        dm.register_invalidate_hook(Box::new(|_| false));
        dm.free_pages(&[PageId(0), PageId(1)]);
        // ordering: Relaxed — test counter only.
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        dm.free_pages(&[PageId(2)]);
        assert_eq!(seen.load(Ordering::Relaxed), 3, "live hook keeps firing");
    }

    #[test]
    fn transient_read_fault_surfaces_and_clears() {
        let dm = DiskManager::temp().unwrap();
        let id = dm.alloc_page();
        dm.write_page(id, &[7; 4]).unwrap();
        let fault = Arc::new(CountingFault::fail_reads(2, io::ErrorKind::Other));
        dm.set_fault(Some(fault));
        assert!(dm.read_page(id).is_err());
        assert!(dm.read_page(id).is_err());
        assert_eq!(dm.read_page(id).unwrap()[0], 7, "fault budget exhausted");
        dm.set_fault(None);
        assert_eq!(dm.read_page(id).unwrap()[0], 7);
    }

    #[test]
    fn short_writes_are_retried_to_completion() {
        let dm = DiskManager::temp().unwrap();
        let id = dm.alloc_page();
        let vals: Vec<u64> = (0..VALS_PER_PAGE as u64).map(|i| i ^ 0xabcd).collect();
        dm.set_fault(Some(Arc::new(CountingFault::short_writes(512))));
        dm.write_page(id, &vals).unwrap();
        dm.set_fault(None);
        assert_eq!(dm.read_page(id).unwrap(), vals, "looped to a full page");
    }

    #[test]
    fn torn_write_surfaces_an_error() {
        let dm = DiskManager::temp().unwrap();
        let id = dm.alloc_page();
        dm.write_page(id, &[1; VALS_PER_PAGE]).unwrap();
        dm.set_fault(Some(Arc::new(CountingFault::torn_writes(
            1,
            100,
            io::ErrorKind::Other,
        ))));
        let err = dm.write_page(id, &[2; VALS_PER_PAGE]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        dm.set_fault(None);
        let back = dm.read_page(id).unwrap();
        assert_eq!(&back[..12], &[2; 12], "a torn prefix did land");
        assert_eq!(back[VALS_PER_PAGE - 1], 1, "the tail kept the old data");
    }
}
