//! Fault injection: labeled crash points and a disk fault shim.
//!
//! Two orthogonal mechanisms validate the durability layer:
//!
//! * **Crash points** — `crash_point!("wal.pre_sync")` marks a spot where a
//!   process death would be maximally inconvenient. The marker compiles to
//!   nothing unless the using crate enables its `crash_points` feature; an
//!   armed build aborts the process (no destructors — indistinguishable
//!   from SIGKILL) when the environment selects that label:
//!   `SORDF_CRASH_POINT=<label>` picks the point and the optional
//!   `SORDF_CRASH_HITS=<n>` aborts on the n-th hit instead of the first.
//!
//! * **[`DiskFault`]** — a shim the [`DiskManager`](crate::DiskManager)
//!   consults on every page transfer while installed, able to fail reads
//!   transiently, tear a write mid-page, or truncate single transfers to
//!   exercise the short-write retry loops. Always compiled (it is plain
//!   runtime state), costs one relaxed atomic load when disarmed.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::disk::PageId;

/// Abort the process if the environment arms the named crash point. Called
/// through [`crash_point!`](crate::crash_point) — which compiles the call
/// out entirely unless the using crate's `crash_points` feature is on —
/// never directly.
pub fn maybe_crash(name: &str) {
    static HITS: AtomicU64 = AtomicU64::new(0);
    if std::env::var("SORDF_CRASH_POINT").as_deref() != Ok(name) {
        return;
    }
    let target: u64 = std::env::var("SORDF_CRASH_HITS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    // ordering: Relaxed — a per-process hit counter for one armed label;
    // only fetch_add's atomicity matters.
    if HITS.fetch_add(1, Ordering::Relaxed) + 1 >= target {
        eprintln!("sordf: crash point {name:?} armed — aborting");
        std::process::abort();
    }
}

/// Mark a labeled crash point. Expands to a [`maybe_crash`] call only when
/// the **using** crate enables its `crash_points` feature (each crate
/// forwards the feature down to `sordf-columnar`); otherwise it compiles
/// to nothing, keeping production write paths branch-free.
#[macro_export]
macro_rules! crash_point {
    ($name:literal) => {
        #[cfg(feature = "crash_points")]
        $crate::fault::maybe_crash($name);
    };
}

/// What an injected write fault does to the current transfer.
#[derive(Debug, Clone, Copy)]
pub enum WriteFault {
    /// Fail without transferring anything (e.g. a transient `EIO`).
    Error(io::ErrorKind),
    /// Persist only the first `bytes` of the remaining buffer, then fail —
    /// the on-disk image is torn, as after a mid-write crash.
    Torn { bytes: usize, kind: io::ErrorKind },
    /// Let the transfer succeed but move at most `n` bytes, forcing the
    /// caller's short-write loop to go around again.
    Short(usize),
}

/// A disk fault shim: consulted by [`DiskManager`](crate::DiskManager) on
/// every page transfer while installed via `set_fault`.
pub trait DiskFault: Send + Sync {
    /// Fault to inject for a page read, or `None` to let it through.
    fn read_fault(&self, _id: PageId) -> Option<io::ErrorKind> {
        None
    }
    /// Fault to inject for a page write, or `None` to let it through.
    fn write_fault(&self, _id: PageId) -> Option<WriteFault> {
        None
    }
}

/// A budgeted [`DiskFault`]: injects its configured fault for the first
/// `budget` transfers (any page), then lets everything through. Covers the
/// common test shapes — N failing reads, persistently short writes, one
/// torn write — without each test hand-rolling a shim.
pub struct CountingFault {
    budget: AtomicU64,
    on_read: Option<io::ErrorKind>,
    on_write: Option<WriteFault>,
}

impl CountingFault {
    fn with_budget(
        budget: u64,
        on_read: Option<io::ErrorKind>,
        on_write: Option<WriteFault>,
    ) -> CountingFault {
        CountingFault {
            budget: AtomicU64::new(budget),
            on_read,
            on_write,
        }
    }

    /// Fail the next `n` page reads with `kind`.
    pub fn fail_reads(n: u64, kind: io::ErrorKind) -> CountingFault {
        CountingFault::with_budget(n, Some(kind), None)
    }

    /// Fail the next `n` page writes with `kind` (nothing transferred).
    pub fn fail_writes(n: u64, kind: io::ErrorKind) -> CountingFault {
        CountingFault::with_budget(n, None, Some(WriteFault::Error(kind)))
    }

    /// Cap every write transfer at `n` bytes (unlimited budget): each
    /// syscall succeeds short, exercising the retry loop.
    pub fn short_writes(n: usize) -> CountingFault {
        CountingFault::with_budget(u64::MAX, None, Some(WriteFault::Short(n)))
    }

    /// Tear the next `n` writes: persist `bytes`, then fail with `kind`.
    pub fn torn_writes(n: u64, bytes: usize, kind: io::ErrorKind) -> CountingFault {
        CountingFault::with_budget(n, None, Some(WriteFault::Torn { bytes, kind }))
    }

    fn take(&self) -> bool {
        // ordering: Relaxed — a test-only budget counter; only the
        // fetch_update's atomicity matters.
        self.budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }
}

impl DiskFault for CountingFault {
    fn read_fault(&self, _id: PageId) -> Option<io::ErrorKind> {
        match self.on_read {
            Some(kind) if self.take() => Some(kind),
            _ => None,
        }
    }

    fn write_fault(&self, _id: PageId) -> Option<WriteFault> {
        match self.on_write {
            Some(f) if self.take() => Some(f),
            _ => None,
        }
    }
}
