//! Immutable paged u64 columns.
//!
//! A [`Column`] is built once (bulk load / reorganization) and then only
//! read. Values are raw u64s — in sordf these are tagged OIDs, with
//! `u64::MAX` as the NULL sentinel. Zone maps are collected during the build
//! at zero extra cost.

use crate::disk::{DiskManager, PageId, VALS_PER_PAGE};
use crate::pool::BufferPool;
use crate::zonemap::{PageStats, ZoneMap};
use std::ops::Range;
use std::sync::Arc;

/// The NULL sentinel stored in columns for missing values
/// (`sordf_model::Oid::NULL` has the same representation).
pub const NULL_SENTINEL: u64 = u64::MAX;

/// Append-only builder; call [`ColumnBuilder::finish`] to seal the column.
pub struct ColumnBuilder<'a> {
    disk: &'a DiskManager,
    buf: Vec<u64>,
    pages: Vec<PageId>,
    stats: Vec<PageStats>,
    cur: PageStats,
    len: usize,
    n_nulls: usize,
}

impl<'a> ColumnBuilder<'a> {
    pub fn new(disk: &'a DiskManager) -> ColumnBuilder<'a> {
        ColumnBuilder {
            disk,
            buf: Vec::with_capacity(VALS_PER_PAGE),
            pages: Vec::new(),
            stats: Vec::new(),
            cur: PageStats::empty(),
            len: 0,
            n_nulls: 0,
        }
    }

    /// Append one value (`NULL_SENTINEL` for NULL).
    #[inline]
    pub fn push(&mut self, v: u64) {
        if v == NULL_SENTINEL {
            self.n_nulls += 1;
        } else {
            self.cur.add(v);
        }
        self.buf.push(v);
        self.len += 1;
        if self.buf.len() == VALS_PER_PAGE {
            self.flush_page();
        }
    }

    /// Append many values.
    pub fn extend_from_slice(&mut self, vs: &[u64]) {
        for &v in vs {
            self.push(v);
        }
    }

    fn flush_page(&mut self) {
        let id = self.disk.alloc_page();
        self.disk.write_page(id, &self.buf).expect("column page write failed");
        self.pages.push(id);
        self.stats.push(self.cur);
        self.cur = PageStats::empty();
        self.buf.clear();
    }

    /// Seal the column.
    pub fn finish(mut self) -> Column {
        if !self.buf.is_empty() {
            self.flush_page();
        }
        Column {
            pages: Arc::new(self.pages),
            len: self.len,
            n_nulls: self.n_nulls,
            zonemap: Arc::new(ZoneMap::new(self.stats)),
        }
    }
}

/// An immutable on-disk column of u64 values. Cheap to clone (all internals
/// shared); reads go through a [`BufferPool`].
#[derive(Debug, Clone)]
pub struct Column {
    pages: Arc<Vec<PageId>>,
    len: usize,
    n_nulls: usize,
    zonemap: Arc<ZoneMap>,
}

/// One page worth of column values, with its global position.
pub struct Chunk {
    /// Global index of `values()[0]`.
    pub start: usize,
    data: Arc<Vec<u64>>,
    local: Range<usize>,
}

impl Chunk {
    /// The values of this chunk.
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.data[self.local.clone()]
    }
}

impl Column {
    /// Build a column directly from a slice (convenience for loading).
    pub fn from_slice(disk: &DiskManager, vals: &[u64]) -> Column {
        let mut b = ColumnBuilder::new(disk);
        b.extend_from_slice(vals);
        b.finish()
    }

    /// An empty column (no pages).
    pub fn empty() -> Column {
        Column {
            pages: Arc::new(Vec::new()),
            len: 0,
            n_nulls: 0,
            zonemap: Arc::new(ZoneMap::default()),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL sentinels stored.
    pub fn n_nulls(&self) -> usize {
        self.n_nulls
    }

    /// Number of pages the column spans.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// The column's zone map (one entry per page).
    pub fn zonemap(&self) -> &ZoneMap {
        &self.zonemap
    }

    /// Random access to one value. Prefer [`Column::chunks`] in hot paths.
    #[inline]
    pub fn value(&self, pool: &BufferPool, idx: usize) -> u64 {
        assert!(idx < self.len, "column index {idx} out of bounds (len {})", self.len);
        let page = pool.get(self.pages[idx / VALS_PER_PAGE]);
        page[idx % VALS_PER_PAGE]
    }

    /// Iterate page-aligned chunks covering `range`.
    pub fn chunks<'c>(
        &'c self,
        pool: &'c BufferPool,
        range: Range<usize>,
    ) -> impl Iterator<Item = Chunk> + 'c {
        let range = range.start.min(self.len)..range.end.min(self.len);
        ChunkIter { col: self, pool, next: range.start, end: range.end }
    }

    /// Fetch the values at `rows` (ascending row indices), reusing each page
    /// fetch across consecutive rows. The workhorse of RDFscan.
    pub fn gather(&self, pool: &BufferPool, rows: &[usize]) -> Vec<u64> {
        let mut out = Vec::with_capacity(rows.len());
        let mut cur_page = usize::MAX;
        let mut page: Option<Arc<Vec<u64>>> = None;
        for &r in rows {
            debug_assert!(r < self.len);
            let p = r / VALS_PER_PAGE;
            if p != cur_page {
                page = Some(pool.get(self.pages[p]));
                cur_page = p;
            }
            out.push(page.as_ref().unwrap()[r % VALS_PER_PAGE]);
        }
        out
    }

    /// Materialize a range into a Vec (tests / small results).
    pub fn to_vec(&self, pool: &BufferPool, range: Range<usize>) -> Vec<u64> {
        let mut out = Vec::with_capacity(range.len());
        for chunk in self.chunks(pool, range) {
            out.extend_from_slice(chunk.values());
        }
        out
    }

    /// For an ascending-sorted column: first index with `value >= v`.
    /// Uses the zone map to locate the page, then searches within it.
    pub fn lower_bound(&self, pool: &BufferPool, v: u64) -> usize {
        self.search(pool, |x| x < v)
    }

    /// For an ascending-sorted column: first index with `value > v`.
    pub fn upper_bound(&self, pool: &BufferPool, v: u64) -> usize {
        self.search(pool, |x| x <= v)
    }

    /// Partition point within `range` of a column whose values are sorted
    /// *within that range*: first index where `pred(value)` is false.
    /// Used by permutation indexes where the secondary column is sorted only
    /// inside runs of equal primary values.
    pub fn partition_point_in(
        &self,
        pool: &BufferPool,
        range: Range<usize>,
        pred: impl Fn(u64) -> bool,
    ) -> usize {
        let (mut lo, mut hi) = (range.start, range.end.min(self.len));
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.value(pool, mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First index in `range` with `value >= v` (range-sorted column).
    pub fn lower_bound_in(&self, pool: &BufferPool, range: Range<usize>, v: u64) -> usize {
        self.partition_point_in(pool, range, |x| x < v)
    }

    /// First index in `range` with `value > v` (range-sorted column).
    pub fn upper_bound_in(&self, pool: &BufferPool, range: Range<usize>, v: u64) -> usize {
        self.partition_point_in(pool, range, |x| x <= v)
    }

    /// Generic partition point: first index where `pred(value)` is false,
    /// given that `pred` is monotone (true-prefix) over the sorted column.
    fn search(&self, pool: &BufferPool, pred: impl Fn(u64) -> bool) -> usize {
        if self.len == 0 {
            return 0;
        }
        // Find the first page whose max fails the predicate.
        let zm = &self.zonemap;
        let mut lo_page = 0usize;
        let mut hi_page = self.pages.len();
        while lo_page < hi_page {
            let mid = (lo_page + hi_page) / 2;
            let st = zm.page(mid);
            // A page with only NULLs cannot appear in sorted index columns;
            // treat its max conservatively.
            let page_max = if st.n_nonnull > 0 { st.max } else { NULL_SENTINEL };
            if pred(page_max) {
                lo_page = mid + 1;
            } else {
                hi_page = mid;
            }
        }
        if lo_page == self.pages.len() {
            return self.len;
        }
        let page = pool.get(self.pages[lo_page]);
        let page_start = lo_page * VALS_PER_PAGE;
        let page_len = (self.len - page_start).min(VALS_PER_PAGE);
        let within = page[..page_len].partition_point(|&x| pred(x));
        page_start + within
    }
}

struct ChunkIter<'c> {
    col: &'c Column,
    pool: &'c BufferPool,
    next: usize,
    end: usize,
}

impl Iterator for ChunkIter<'_> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        if self.next >= self.end {
            return None;
        }
        let page_idx = self.next / VALS_PER_PAGE;
        let page_start = page_idx * VALS_PER_PAGE;
        let local_start = self.next - page_start;
        let local_end = (self.end - page_start).min(VALS_PER_PAGE);
        let data = self.pool.get(self.col.pages[page_idx]);
        let chunk = Chunk { start: self.next, data, local: local_start..local_end };
        self.next = page_start + local_end;
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(vals: &[u64]) -> (Arc<DiskManager>, BufferPool, Column) {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let col = Column::from_slice(&dm, vals);
        let pool = BufferPool::new(Arc::clone(&dm), 64);
        (dm, pool, col)
    }

    #[test]
    fn roundtrip_multi_page() {
        let vals: Vec<u64> = (0..3 * VALS_PER_PAGE as u64 + 17).collect();
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.len(), vals.len());
        assert_eq!(col.n_pages(), 4);
        assert_eq!(col.to_vec(&pool, 0..vals.len()), vals);
        assert_eq!(col.value(&pool, 0), 0);
        assert_eq!(col.value(&pool, vals.len() - 1), vals.len() as u64 - 1);
    }

    #[test]
    fn chunk_boundaries() {
        let vals: Vec<u64> = (0..2 * VALS_PER_PAGE as u64).collect();
        let (_dm, pool, col) = setup(&vals);
        let lo = VALS_PER_PAGE - 5;
        let hi = VALS_PER_PAGE + 5;
        let chunks: Vec<(usize, Vec<u64>)> = col
            .chunks(&pool, lo..hi)
            .map(|c| (c.start, c.values().to_vec()))
            .collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, lo);
        assert_eq!(chunks[0].1, (lo as u64..VALS_PER_PAGE as u64).collect::<Vec<_>>());
        assert_eq!(chunks[1].0, VALS_PER_PAGE);
        assert_eq!(chunks[1].1, (VALS_PER_PAGE as u64..hi as u64).collect::<Vec<_>>());
    }

    #[test]
    fn bounds_on_sorted_column() {
        let vals: Vec<u64> = (0..20_000u64).map(|i| i * 2).collect(); // evens
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.lower_bound(&pool, 0), 0);
        assert_eq!(col.lower_bound(&pool, 9), 5); // first value >= 9 is 10 at idx 5
        assert_eq!(col.lower_bound(&pool, 10), 5);
        assert_eq!(col.upper_bound(&pool, 10), 6);
        assert_eq!(col.lower_bound(&pool, 40_000), 20_000);
        assert_eq!(col.upper_bound(&pool, 39_998), 20_000);
    }

    #[test]
    fn bounds_with_duplicates() {
        let mut vals = vec![5u64; 10_000];
        vals.extend(vec![7u64; 10_000]);
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.lower_bound(&pool, 5), 0);
        assert_eq!(col.upper_bound(&pool, 5), 10_000);
        assert_eq!(col.lower_bound(&pool, 6), 10_000);
        assert_eq!(col.lower_bound(&pool, 7), 10_000);
        assert_eq!(col.upper_bound(&pool, 7), 20_000);
    }

    #[test]
    fn gather_across_pages() {
        let vals: Vec<u64> = (0..2 * VALS_PER_PAGE as u64 + 100).map(|i| i * 3).collect();
        let (_dm, pool, col) = setup(&vals);
        let rows = vec![0, 5, VALS_PER_PAGE - 1, VALS_PER_PAGE, 2 * VALS_PER_PAGE + 50];
        let got = col.gather(&pool, &rows);
        let expect: Vec<u64> = rows.iter().map(|&r| vals[r]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn range_restricted_bounds() {
        // Two runs: [10,20,30,...] then [5,15,25,...]; each run sorted.
        let mut vals: Vec<u64> = (0..1000).map(|i| 10 + i * 10).collect();
        vals.extend((0..1000).map(|i| 5 + i * 10));
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.lower_bound_in(&pool, 0..1000, 25), 2); // 30 at idx 2
        assert_eq!(col.upper_bound_in(&pool, 0..1000, 30), 3);
        assert_eq!(col.lower_bound_in(&pool, 1000..2000, 25), 1002);
        assert_eq!(col.lower_bound_in(&pool, 1000..2000, 0), 1000);
        assert_eq!(col.upper_bound_in(&pool, 1000..2000, 99_999), 2000);
    }

    #[test]
    fn null_tracking_and_zonemap() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let mut b = ColumnBuilder::new(&dm);
        b.push(10);
        b.push(NULL_SENTINEL);
        b.push(30);
        let col = b.finish();
        assert_eq!(col.n_nulls(), 1);
        let st = col.zonemap().page(0);
        assert_eq!((st.min, st.max, st.n_nonnull), (10, 30, 2));
    }

    #[test]
    fn empty_column() {
        let (_dm, pool, col) = setup(&[]);
        assert!(col.is_empty());
        assert_eq!(col.lower_bound(&pool, 5), 0);
        assert_eq!(col.chunks(&pool, 0..0).count(), 0);
    }

    #[test]
    fn zonemap_matches_contents() {
        let vals: Vec<u64> = (0..VALS_PER_PAGE as u64 * 2).collect();
        let (_dm, _pool, col) = setup(&vals);
        let zm = col.zonemap();
        assert_eq!(zm.page(0).min, 0);
        assert_eq!(zm.page(0).max, VALS_PER_PAGE as u64 - 1);
        assert_eq!(zm.page(1).min, VALS_PER_PAGE as u64);
        assert_eq!(zm.candidate_pages(3, 5), vec![0]);
    }
}
