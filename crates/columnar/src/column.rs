//! Immutable paged u64 columns.
//!
//! A [`Column`] is built once (bulk load / reorganization) and then only
//! read. Values are raw u64s — in sordf these are tagged OIDs, with
//! `u64::MAX` as the NULL sentinel. Zone maps are collected during the build
//! at zero extra cost.

use crate::compress::{self, PageEnc};
use crate::disk::{DiskManager, PageId, VALS_PER_PAGE};
use crate::pool::{BufferPool, PageGuard};
use crate::zonemap::{PageStats, ZoneMap};
use std::ops::Range;
use std::sync::Arc;

/// The NULL sentinel stored in columns for missing values
/// (`sordf_model::Oid::NULL` has the same representation).
pub const NULL_SENTINEL: u64 = u64::MAX;

/// One page worth of NULL sentinels. Pages whose zone-map entry records zero
/// non-null values store exactly this content, so chunks over them can be
/// served from here without a buffer-pool request.
static NULL_PAGE: [u64; VALS_PER_PAGE] = [NULL_SENTINEL; VALS_PER_PAGE];

/// Column-level encoding scheme: whether the builder may compress pages.
/// The per-page choice (FOR vs constant vs plain) stays with the size
/// heuristic in [`crate::compress`]; this knob only disables it wholesale —
/// for the plain arm of differential tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColumnEncoding {
    /// Raw 64-bit values on every page (the pre-compression layout).
    Plain,
    /// Per-page size heuristic: FOR/const where they shrink the page,
    /// plain otherwise.
    #[default]
    Compressed,
}

/// Append-only builder; call [`ColumnBuilder::finish`] to seal the column.
pub struct ColumnBuilder<'a> {
    disk: &'a DiskManager,
    encoding: ColumnEncoding,
    buf: Vec<u64>,
    pages: Vec<PageId>,
    stats: Vec<PageStats>,
    encs: Vec<PageEnc>,
    used_words: usize,
    cur: PageStats,
    len: usize,
    n_nulls: usize,
}

impl<'a> ColumnBuilder<'a> {
    pub fn new(disk: &'a DiskManager) -> ColumnBuilder<'a> {
        ColumnBuilder::new_with(disk, ColumnEncoding::default())
    }

    /// A builder with an explicit encoding scheme.
    pub fn new_with(disk: &'a DiskManager, encoding: ColumnEncoding) -> ColumnBuilder<'a> {
        ColumnBuilder {
            disk,
            encoding,
            buf: Vec::with_capacity(VALS_PER_PAGE),
            pages: Vec::new(),
            stats: Vec::new(),
            encs: Vec::new(),
            used_words: 0,
            cur: PageStats::empty(),
            len: 0,
            n_nulls: 0,
        }
    }

    /// Append one value (`NULL_SENTINEL` for NULL).
    #[inline]
    pub fn push(&mut self, v: u64) {
        if v == NULL_SENTINEL {
            self.n_nulls += 1;
        } else {
            self.cur.add(v);
        }
        self.buf.push(v);
        self.len += 1;
        if self.buf.len() == VALS_PER_PAGE {
            self.flush_page();
        }
    }

    /// Append many values.
    pub fn extend_from_slice(&mut self, vs: &[u64]) {
        for &v in vs {
            self.push(v);
        }
    }

    fn flush_page(&mut self) {
        // Per-page encoding choice: the size heuristic picks the layout,
        // and the encoded image (when one exists) is what hits the disk.
        let (enc, image) = match self.encoding {
            ColumnEncoding::Plain => (PageEnc::Plain, None),
            ColumnEncoding::Compressed => compress::choose(&self.buf),
        };
        self.used_words += enc.used_words(self.buf.len());
        let id = self.disk.alloc_page();
        self.disk
            .write_page(id, image.as_deref().unwrap_or(&self.buf))
            // sordf-lint: allow(L3) — push() is an infallible bulk-load API
            // by design; a failed page write during a build is fatal (the
            // half-built column could never be read back).
            .expect("column page write failed");
        self.pages.push(id);
        self.stats.push(self.cur);
        self.encs.push(enc);
        self.cur = PageStats::empty();
        self.buf.clear();
    }

    /// Seal the column.
    pub fn finish(mut self) -> Column {
        if !self.buf.is_empty() {
            self.flush_page();
        }
        Column {
            pages: Arc::new(self.pages),
            encs: Arc::new(self.encs),
            used_words: self.used_words,
            len: self.len,
            n_nulls: self.n_nulls,
            zonemap: Arc::new(ZoneMap::new(self.stats)),
        }
    }
}

/// An immutable on-disk column of u64 values. Cheap to clone (all internals
/// shared); reads go through a [`BufferPool`].
#[derive(Debug, Clone)]
pub struct Column {
    pages: Arc<Vec<PageId>>,
    /// Per-page encoding, aligned with `pages`.
    encs: Arc<Vec<PageEnc>>,
    /// Total 64-bit words the pages actually use (compressed footprint).
    used_words: usize,
    len: usize,
    n_nulls: usize,
    zonemap: Arc<ZoneMap>,
}

/// Backing storage of a [`Chunk`]: a pinned pool page (plain layout), a
/// block decoded from an encoded page, or the shared NULL buffer for pages
/// the zone map proves are entirely NULL.
enum ChunkData {
    Pinned(PageGuard),
    /// The decode-into-register-block path: values of a FOR or constant
    /// page materialized for this chunk's local range.
    Decoded(Vec<u64>),
    AllNull,
}

std::thread_local! {
    /// Reusable decode buffers for encoded chunks. Scan loops materialize
    /// one page per chunk; without reuse every chunk pays a 64 KiB
    /// alloc + free, which on hot scans costs as much as the decode itself.
    /// Buffers return here when their [`Chunk`] drops (capped so an
    /// occasional burst of live chunks cannot pin memory forever).
    static DECODE_SCRATCH: std::cell::RefCell<Vec<Vec<u64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Most chunks a scan holds live at once is one per joined column; 16
/// covers the widest star the engine plans with headroom.
const DECODE_SCRATCH_MAX: usize = 16;

fn scratch_take() -> Vec<u64> {
    DECODE_SCRATCH
        .with(|s| s.borrow_mut().pop())
        .map(|mut v| {
            v.clear();
            v
        })
        .unwrap_or_default()
}

fn scratch_put(v: Vec<u64>) {
    if v.capacity() == 0 {
        return;
    }
    DECODE_SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        if s.len() < DECODE_SCRATCH_MAX {
            s.push(v);
        }
    });
}

impl Drop for Chunk {
    fn drop(&mut self) {
        if let ChunkData::Decoded(v) = std::mem::replace(&mut self.data, ChunkData::AllNull) {
            scratch_put(v);
        }
    }
}

/// One page worth of column values, with its global position.
pub struct Chunk {
    /// Global index of `values()[0]`.
    pub start: usize,
    data: ChunkData,
    local: Range<usize>,
}

impl Chunk {
    /// The values of this chunk.
    #[inline]
    pub fn values(&self) -> &[u64] {
        match &self.data {
            ChunkData::Pinned(g) => &g[self.local.clone()],
            ChunkData::Decoded(v) => v,
            ChunkData::AllNull => &NULL_PAGE[self.local.clone()],
        }
    }

    /// True when the whole page holds only NULL sentinels (served without a
    /// pool request).
    #[inline]
    pub fn is_all_null(&self) -> bool {
        matches!(self.data, ChunkData::AllNull)
    }
}

impl Column {
    /// Build a column directly from a slice (convenience for loading).
    pub fn from_slice(disk: &DiskManager, vals: &[u64]) -> Column {
        Column::from_slice_with(disk, vals, ColumnEncoding::default())
    }

    /// [`Column::from_slice`] with an explicit encoding scheme.
    pub fn from_slice_with(disk: &DiskManager, vals: &[u64], encoding: ColumnEncoding) -> Column {
        let mut b = ColumnBuilder::new_with(disk, encoding);
        b.extend_from_slice(vals);
        b.finish()
    }

    /// An empty column (no pages).
    pub fn empty() -> Column {
        Column {
            pages: Arc::new(Vec::new()),
            encs: Arc::new(Vec::new()),
            used_words: 0,
            len: 0,
            n_nulls: 0,
            zonemap: Arc::new(ZoneMap::default()),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL sentinels stored.
    pub fn n_nulls(&self) -> usize {
        self.n_nulls
    }

    /// Number of pages the column spans.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// The backing page ids, in column order. Used by store builders to
    /// assemble a [`crate::PageLease`] so a dropped store returns its
    /// extents to the disk manager's free list.
    pub fn page_ids(&self) -> &[PageId] {
        &self.pages
    }

    /// The column's zone map (one entry per page).
    pub fn zonemap(&self) -> &ZoneMap {
        &self.zonemap
    }

    /// Encoding of page `p`.
    pub fn page_enc(&self, p: usize) -> PageEnc {
        self.encs[p]
    }

    /// Bytes the column's pages actually use — the compressed footprint a
    /// full scan must read, as opposed to `n_pages() * PAGE_BYTES` of
    /// allocated extent.
    pub fn used_bytes(&self) -> usize {
        self.used_words * 8
    }

    /// Bytes the same values would use uncompressed (8 per value).
    pub fn plain_bytes(&self) -> usize {
        self.len * 8
    }

    /// Page counts by encoding: `(plain, for, const)`.
    pub fn encoding_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for e in self.encs.iter() {
            match e {
                PageEnc::Plain => counts.0 += 1,
                PageEnc::For { .. } => counts.1 += 1,
                PageEnc::Const { .. } => counts.2 += 1,
            }
        }
        counts
    }

    /// Random access to one value. Prefer [`Column::chunks`] in hot paths.
    #[inline]
    pub fn value(&self, pool: &BufferPool, idx: usize) -> u64 {
        assert!(
            idx < self.len,
            "column index {idx} out of bounds (len {})",
            self.len
        );
        let p = idx / VALS_PER_PAGE;
        match self.encs[p] {
            PageEnc::Plain => pool.get(self.pages[p])[idx % VALS_PER_PAGE],
            PageEnc::Const { value } => value,
            PageEnc::For { base, width } => {
                compress::for_get(&pool.get(self.pages[p]), base, width, idx % VALS_PER_PAGE)
            }
        }
    }

    /// Global row range covered by page `p`, clamped to the column length.
    #[inline]
    pub fn page_rows(&self, p: usize) -> Range<usize> {
        let start = p * VALS_PER_PAGE;
        start..(start + VALS_PER_PAGE).min(self.len)
    }

    /// Pin the part of page `p` covering local rows `local`, serving all-NULL
    /// pages from the shared sentinel buffer — and constant pages from
    /// column metadata — without touching the pool. Encoded pages decode
    /// their local range into a register block here; plain pages hand out
    /// the pinned slice directly.
    fn pin_local(&self, pool: &BufferPool, p: usize, local: Range<usize>) -> Chunk {
        let start = p * VALS_PER_PAGE + local.start;
        if self.zonemap.page(p).n_nonnull == 0 {
            return Chunk {
                start,
                data: ChunkData::AllNull,
                local,
            };
        }
        let data = match self.encs[p] {
            PageEnc::Plain => ChunkData::Pinned(pool.pin(self.pages[p])),
            PageEnc::Const { value } => {
                let mut vals = scratch_take();
                vals.resize(local.len(), value);
                ChunkData::Decoded(vals)
            }
            PageEnc::For { base, width } => {
                let page = pool.pin(self.pages[p]);
                let mut vals = scratch_take();
                compress::for_decode_range(&page, base, width, local.start, local.end, &mut vals);
                ChunkData::Decoded(vals)
            }
        };
        Chunk { start, data, local }
    }

    /// Pin one whole page (clamped to the column length) as a [`Chunk`].
    pub fn pin_page(&self, pool: &BufferPool, p: usize) -> Chunk {
        let rows = self.page_rows(p);
        self.pin_local(
            pool,
            p,
            rows.start - p * VALS_PER_PAGE..rows.end - p * VALS_PER_PAGE,
        )
    }

    /// Pin the part of page `p` that falls inside `range` (global rows).
    /// Lets operators drive a page loop themselves — e.g. to pin several
    /// aligned columns' pages in lockstep — while zone-map checks happen
    /// before this call. `range` must overlap page `p`.
    pub fn pin_page_in(&self, pool: &BufferPool, p: usize, range: Range<usize>) -> Chunk {
        let page_start = p * VALS_PER_PAGE;
        let rows = self.page_rows(p);
        let start = range.start.max(rows.start);
        let end = range.end.min(rows.end);
        debug_assert!(start <= end, "range {range:?} does not overlap page {p}");
        self.pin_local(pool, p, start - page_start..end - page_start)
    }

    /// Iterate page-aligned chunks covering `range`.
    pub fn chunks<'c>(
        &'c self,
        pool: &'c BufferPool,
        range: Range<usize>,
    ) -> impl Iterator<Item = Chunk> + 'c {
        let range = range.start.min(self.len)..range.end.min(self.len);
        ChunkIter {
            col: self,
            pool,
            next: range.start,
            end: range.end,
        }
    }

    /// Run `f` over page-aligned chunks covering `range` — each page is
    /// pinned exactly once for the duration of its callback.
    pub fn for_each_chunk(
        &self,
        pool: &BufferPool,
        range: Range<usize>,
        mut f: impl FnMut(&Chunk),
    ) {
        for chunk in self.chunks(pool, range) {
            f(&chunk);
        }
    }

    /// Run `f` over the page-aligned chunks of two columns that share page
    /// geometry (equal lengths, built page-parallel — e.g. the (s, o)
    /// columns of a side table or two keys of a permutation index), pinning
    /// one page of each per step.
    pub fn for_each_chunk_pair(
        a: &Column,
        b: &Column,
        pool: &BufferPool,
        range: Range<usize>,
        mut f: impl FnMut(&Chunk, &Chunk),
    ) {
        debug_assert_eq!(a.len, b.len, "paired columns must share page geometry");
        let mut bc = b.chunks(pool, range.clone());
        for ac in a.chunks(pool, range) {
            // sordf-lint: allow(L3) — the debug_assert above states the
            // invariant: equal-length columns yield equal chunk sequences.
            let bc = bc.next().expect("paired columns share page geometry");
            f(&ac, &bc);
        }
    }

    /// Like [`Column::for_each_chunk`], but consult `keep(page, stats)`
    /// *before* each page is pinned; pages rejected there are skipped without
    /// ever being requested from the pool (zone-map pruning at chunk
    /// granularity).
    pub fn for_each_chunk_pruned(
        &self,
        pool: &BufferPool,
        range: Range<usize>,
        mut keep: impl FnMut(usize, &PageStats) -> bool,
        mut f: impl FnMut(&Chunk),
    ) {
        let range = range.start.min(self.len)..range.end.min(self.len);
        if range.start >= range.end {
            return;
        }
        let first_page = range.start / VALS_PER_PAGE;
        let last_page = (range.end - 1) / VALS_PER_PAGE;
        for p in first_page..=last_page {
            if !keep(p, self.zonemap.page(p)) {
                continue;
            }
            let page_start = p * VALS_PER_PAGE;
            let local = range.start.max(page_start) - page_start
                ..range.end.min(page_start + VALS_PER_PAGE) - page_start;
            f(&self.pin_local(pool, p, local));
        }
    }

    /// Fetch the values at `rows` (ascending row indices), pinning each page
    /// once across consecutive rows. All-NULL pages are answered from the
    /// zone map without a pool request. The workhorse of RDFjoin.
    pub fn gather(&self, pool: &BufferPool, rows: &[usize]) -> Vec<u64> {
        let mut out = Vec::with_capacity(rows.len());
        let mut cur_page = usize::MAX;
        let mut page: Option<PageGuard> = None;
        let mut enc = PageEnc::Plain;
        for &r in rows {
            debug_assert!(r < self.len);
            let p = r / VALS_PER_PAGE;
            if p != cur_page {
                cur_page = p;
                // All-NULL pages answer from the zone map, constant pages
                // from encoding metadata; only plain/FOR pages need a pin.
                enc = if self.zonemap.page(p).n_nonnull == 0 {
                    PageEnc::Const {
                        value: NULL_SENTINEL,
                    }
                } else {
                    self.encs[p]
                };
                page = (!matches!(enc, PageEnc::Const { .. })).then(|| pool.pin(self.pages[p]));
            }
            out.push(match (enc, &page) {
                (PageEnc::Const { value }, _) => value,
                (PageEnc::Plain, Some(g)) => g[r % VALS_PER_PAGE],
                (PageEnc::For { base, width }, Some(g)) => {
                    compress::for_get(g, base, width, r % VALS_PER_PAGE)
                }
                // A page is pinned exactly when its encoding needs one.
                _ => unreachable!("unpinned non-constant page in gather"),
            });
        }
        out
    }

    /// Materialize a range into a Vec (tests / small results).
    pub fn to_vec(&self, pool: &BufferPool, range: Range<usize>) -> Vec<u64> {
        let mut out = Vec::with_capacity(range.len());
        for chunk in self.chunks(pool, range) {
            out.extend_from_slice(chunk.values());
        }
        out
    }

    /// For an ascending-sorted column: first index with `value >= v`.
    /// Uses the zone map to locate the page, then searches within it.
    pub fn lower_bound(&self, pool: &BufferPool, v: u64) -> usize {
        self.search(pool, |x| x < v)
    }

    /// For an ascending-sorted column: first index with `value > v`.
    pub fn upper_bound(&self, pool: &BufferPool, v: u64) -> usize {
        self.search(pool, |x| x <= v)
    }

    /// Partition point within `range` of a column whose values are sorted
    /// *within that range*: first index where `pred(value)` is false.
    /// Used by permutation indexes where the secondary column is sorted only
    /// inside runs of equal primary values.
    ///
    /// Page-hoisted: a first binary search over *pages* probes one value per
    /// narrowing step (the last in-range value of the middle page), then the
    /// boundary page is pinned once and searched as a slice — `O(log pages)`
    /// pool requests instead of `O(log rows)`.
    pub fn partition_point_in(
        &self,
        pool: &BufferPool,
        range: Range<usize>,
        pred: impl Fn(u64) -> bool,
    ) -> usize {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        if start >= end {
            return start;
        }
        // Find the page holding the partition point: the first in-range page
        // whose last in-range value fails the predicate (if every page
        // passes, the answer is `end`).
        let first_page = start / VALS_PER_PAGE;
        let last_page = (end - 1) / VALS_PER_PAGE;
        if first_page == last_page {
            let page_start = first_page * VALS_PER_PAGE;
            let chunk = self.pin_local(pool, first_page, start - page_start..end - page_start);
            return chunk.start + chunk.values().partition_point(|&x| pred(x));
        }
        let (mut lo_p, mut hi_p) = (first_page, last_page + 1);
        while lo_p < hi_p {
            let mid = lo_p + (hi_p - lo_p) / 2;
            let page_last = ((mid + 1) * VALS_PER_PAGE).min(end) - 1;
            if pred(self.value(pool, page_last)) {
                lo_p = mid + 1;
            } else {
                hi_p = mid;
            }
        }
        if lo_p > last_page {
            return end;
        }
        // Pin the boundary page once and finish with a slice search over its
        // in-range part.
        let page_start = lo_p * VALS_PER_PAGE;
        let local =
            start.max(page_start) - page_start..end.min(page_start + VALS_PER_PAGE) - page_start;
        let chunk = self.pin_local(pool, lo_p, local);
        chunk.start + chunk.values().partition_point(|&x| pred(x))
    }

    /// First index in `range` with `value >= v` (range-sorted column).
    pub fn lower_bound_in(&self, pool: &BufferPool, range: Range<usize>, v: u64) -> usize {
        self.partition_point_in(pool, range, |x| x < v)
    }

    /// First index in `range` with `value > v` (range-sorted column).
    pub fn upper_bound_in(&self, pool: &BufferPool, range: Range<usize>, v: u64) -> usize {
        self.partition_point_in(pool, range, |x| x <= v)
    }

    /// Generic partition point: first index where `pred(value)` is false,
    /// given that `pred` is monotone (true-prefix) over the sorted column.
    fn search(&self, pool: &BufferPool, pred: impl Fn(u64) -> bool) -> usize {
        if self.len == 0 {
            return 0;
        }
        // Find the first page whose max fails the predicate.
        let zm = &self.zonemap;
        let mut lo_page = 0usize;
        let mut hi_page = self.pages.len();
        while lo_page < hi_page {
            let mid = (lo_page + hi_page) / 2;
            let st = zm.page(mid);
            // A page with only NULLs cannot appear in sorted index columns;
            // treat its max conservatively.
            let page_max = if st.n_nonnull > 0 {
                st.max
            } else {
                NULL_SENTINEL
            };
            if pred(page_max) {
                lo_page = mid + 1;
            } else {
                hi_page = mid;
            }
        }
        if lo_page == self.pages.len() {
            return self.len;
        }
        let chunk = self.pin_page(pool, lo_page);
        chunk.start + chunk.values().partition_point(|&x| pred(x))
    }
}

struct ChunkIter<'c> {
    col: &'c Column,
    pool: &'c BufferPool,
    next: usize,
    end: usize,
}

impl Iterator for ChunkIter<'_> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        if self.next >= self.end {
            return None;
        }
        let page_idx = self.next / VALS_PER_PAGE;
        let page_start = page_idx * VALS_PER_PAGE;
        let local_start = self.next - page_start;
        let local_end = (self.end - page_start).min(VALS_PER_PAGE);
        let chunk = self
            .col
            .pin_local(self.pool, page_idx, local_start..local_end);
        self.next = page_start + local_end;
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(vals: &[u64]) -> (Arc<DiskManager>, BufferPool, Column) {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let col = Column::from_slice(&dm, vals);
        let pool = BufferPool::new(Arc::clone(&dm), 64);
        (dm, pool, col)
    }

    #[test]
    fn roundtrip_multi_page() {
        let vals: Vec<u64> = (0..3 * VALS_PER_PAGE as u64 + 17).collect();
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.len(), vals.len());
        assert_eq!(col.n_pages(), 4);
        assert_eq!(col.to_vec(&pool, 0..vals.len()), vals);
        assert_eq!(col.value(&pool, 0), 0);
        assert_eq!(col.value(&pool, vals.len() - 1), vals.len() as u64 - 1);
    }

    #[test]
    fn chunk_boundaries() {
        let vals: Vec<u64> = (0..2 * VALS_PER_PAGE as u64).collect();
        let (_dm, pool, col) = setup(&vals);
        let lo = VALS_PER_PAGE - 5;
        let hi = VALS_PER_PAGE + 5;
        let chunks: Vec<(usize, Vec<u64>)> = col
            .chunks(&pool, lo..hi)
            .map(|c| (c.start, c.values().to_vec()))
            .collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, lo);
        assert_eq!(
            chunks[0].1,
            (lo as u64..VALS_PER_PAGE as u64).collect::<Vec<_>>()
        );
        assert_eq!(chunks[1].0, VALS_PER_PAGE);
        assert_eq!(
            chunks[1].1,
            (VALS_PER_PAGE as u64..hi as u64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bounds_on_sorted_column() {
        let vals: Vec<u64> = (0..20_000u64).map(|i| i * 2).collect(); // evens
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.lower_bound(&pool, 0), 0);
        assert_eq!(col.lower_bound(&pool, 9), 5); // first value >= 9 is 10 at idx 5
        assert_eq!(col.lower_bound(&pool, 10), 5);
        assert_eq!(col.upper_bound(&pool, 10), 6);
        assert_eq!(col.lower_bound(&pool, 40_000), 20_000);
        assert_eq!(col.upper_bound(&pool, 39_998), 20_000);
    }

    #[test]
    fn bounds_with_duplicates() {
        let mut vals = vec![5u64; 10_000];
        vals.extend(vec![7u64; 10_000]);
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.lower_bound(&pool, 5), 0);
        assert_eq!(col.upper_bound(&pool, 5), 10_000);
        assert_eq!(col.lower_bound(&pool, 6), 10_000);
        assert_eq!(col.lower_bound(&pool, 7), 10_000);
        assert_eq!(col.upper_bound(&pool, 7), 20_000);
    }

    #[test]
    fn gather_across_pages() {
        let vals: Vec<u64> = (0..2 * VALS_PER_PAGE as u64 + 100).map(|i| i * 3).collect();
        let (_dm, pool, col) = setup(&vals);
        let rows = vec![
            0,
            5,
            VALS_PER_PAGE - 1,
            VALS_PER_PAGE,
            2 * VALS_PER_PAGE + 50,
        ];
        let got = col.gather(&pool, &rows);
        let expect: Vec<u64> = rows.iter().map(|&r| vals[r]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn range_restricted_bounds() {
        // Two runs: [10,20,30,...] then [5,15,25,...]; each run sorted.
        let mut vals: Vec<u64> = (0..1000).map(|i| 10 + i * 10).collect();
        vals.extend((0..1000).map(|i| 5 + i * 10));
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.lower_bound_in(&pool, 0..1000, 25), 2); // 30 at idx 2
        assert_eq!(col.upper_bound_in(&pool, 0..1000, 30), 3);
        assert_eq!(col.lower_bound_in(&pool, 1000..2000, 25), 1002);
        assert_eq!(col.lower_bound_in(&pool, 1000..2000, 0), 1000);
        assert_eq!(col.upper_bound_in(&pool, 1000..2000, 99_999), 2000);
    }

    #[test]
    fn null_tracking_and_zonemap() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let mut b = ColumnBuilder::new(&dm);
        b.push(10);
        b.push(NULL_SENTINEL);
        b.push(30);
        let col = b.finish();
        assert_eq!(col.n_nulls(), 1);
        let st = col.zonemap().page(0);
        assert_eq!((st.min, st.max, st.n_nonnull), (10, 30, 2));
    }

    #[test]
    fn empty_column() {
        let (_dm, pool, col) = setup(&[]);
        assert!(col.is_empty());
        assert_eq!(col.lower_bound(&pool, 5), 0);
        assert_eq!(col.chunks(&pool, 0..0).count(), 0);
    }

    #[test]
    fn chunk_range_edges() {
        // 3 full pages + a 17-value tail.
        let vals: Vec<u64> = (0..3 * VALS_PER_PAGE as u64 + 17).collect();
        let (_dm, pool, col) = setup(&vals);
        let cases: Vec<Range<usize>> = vec![
            0..0,                                 // empty at start
            VALS_PER_PAGE..VALS_PER_PAGE,         // empty on a boundary
            col.len()..col.len(),                 // empty at end
            5..9,                                 // inside one page
            0..VALS_PER_PAGE,                     // exactly one page
            VALS_PER_PAGE..2 * VALS_PER_PAGE,     // page-aligned interior
            VALS_PER_PAGE - 1..VALS_PER_PAGE + 1, // straddles a boundary
            7..2 * VALS_PER_PAGE + 3,             // mid-page to mid-page
            3 * VALS_PER_PAGE..col.len(),         // the partial tail page
            0..col.len(),                         // everything
            col.len() - 1..col.len() + 100,       // end clamped past len
        ];
        for r in cases {
            let want: Vec<u64> = vals[r.start.min(vals.len())..r.end.min(vals.len())].to_vec();
            let mut got = Vec::new();
            let mut expect_start = r.start.min(vals.len());
            col.for_each_chunk(&pool, r.clone(), |c| {
                assert_eq!(c.start, expect_start, "chunk start for {r:?}");
                expect_start += c.values().len();
                got.extend_from_slice(c.values());
            });
            assert_eq!(got, want, "range {r:?}");
        }
    }

    #[test]
    fn all_null_pages_skip_the_pool() {
        // Page 0: all NULL. Page 1: data. Page 2 (partial): all NULL.
        let mut vals = vec![NULL_SENTINEL; VALS_PER_PAGE];
        vals.extend((0..VALS_PER_PAGE as u64).map(|i| i * 2));
        vals.extend(vec![NULL_SENTINEL; 100]);
        let (_dm, pool, col) = setup(&vals);
        let before = pool.stats();
        let got = col.to_vec(&pool, 0..vals.len());
        assert_eq!(got, vals);
        let d = pool.stats().since(&before);
        assert_eq!(d.hits + d.misses, 1, "only the non-NULL page is requested");

        // Chunks report the fast path.
        let flags: Vec<bool> = col
            .chunks(&pool, 0..vals.len())
            .map(|c| c.is_all_null())
            .collect();
        assert_eq!(flags, vec![true, false, true]);

        // gather over the NULL pages also stays out of the pool.
        let before = pool.stats();
        let rows: Vec<usize> = vec![0, 1, 2 * VALS_PER_PAGE + 5, 2 * VALS_PER_PAGE + 99];
        assert_eq!(col.gather(&pool, &rows), vec![NULL_SENTINEL; 4]);
        let d = pool.stats().since(&before);
        assert_eq!(d.hits + d.misses, 0);
    }

    #[test]
    fn chunked_scan_requests_one_page_per_page() {
        let vals: Vec<u64> = (0..4 * VALS_PER_PAGE as u64).collect();
        let (_dm, pool, col) = setup(&vals);
        let before = pool.stats();
        let mut n = 0u64;
        col.for_each_chunk(&pool, 0..col.len(), |c| n += c.values().len() as u64);
        assert_eq!(n, vals.len() as u64);
        let d = pool.stats().since(&before);
        assert_eq!(
            d.hits + d.misses,
            4,
            "one pool request per page, not per value"
        );
    }

    #[test]
    fn pruned_chunks_never_pin_rejected_pages() {
        let vals: Vec<u64> = (0..4 * VALS_PER_PAGE as u64).collect();
        let (_dm, pool, col) = setup(&vals);
        // Keep only pages overlapping [2.5 pages, 3.2 pages).
        let lo = (2 * VALS_PER_PAGE + VALS_PER_PAGE / 2) as u64;
        let hi = (3 * VALS_PER_PAGE + VALS_PER_PAGE / 5) as u64;
        let before = pool.stats();
        let mut got = Vec::new();
        let mut skipped = 0;
        col.for_each_chunk_pruned(
            &pool,
            0..col.len(),
            |_, st| {
                let keep = st.overlaps(lo, hi);
                if !keep {
                    skipped += 1;
                }
                keep
            },
            |c| got.extend(c.values().iter().copied().filter(|&v| v >= lo && v <= hi)),
        );
        assert_eq!(skipped, 2);
        let want: Vec<u64> = (lo..=hi).collect();
        assert_eq!(got, want);
        let d = pool.stats().since(&before);
        assert_eq!(d.hits + d.misses, 2, "pruned pages are never requested");
    }

    #[test]
    fn partition_point_pins_pages_not_values() {
        let vals: Vec<u64> = (0..16 * VALS_PER_PAGE as u64).map(|i| i * 2).collect();
        let (_dm, pool, col) = setup(&vals);
        for probe in [
            0u64,
            77,
            VALS_PER_PAGE as u64 * 13 + 5,
            vals.len() as u64 * 2,
        ] {
            let before = pool.stats();
            let got = col.lower_bound_in(&pool, 0..col.len(), probe);
            let want = vals.partition_point(|&x| x < probe);
            assert_eq!(got, want, "probe {probe}");
            let d = pool.stats().since(&before);
            // ceil(log2(16 pages + 1)) probes + the final pinned page —
            // versus log2(131072 rows) = 17 per-value probes before hoisting.
            assert!(
                d.hits + d.misses <= 6,
                "{} pool requests for probe {probe}",
                d.hits + d.misses
            );
        }
        // Single-page ranges resolve with exactly one pool request.
        let before = pool.stats();
        let r = 10..200;
        assert_eq!(
            col.upper_bound_in(&pool, r.clone(), 100),
            vals[r].partition_point(|&x| x <= 100) + 10
        );
        let d = pool.stats().since(&before);
        assert_eq!(d.hits + d.misses, 1);
    }

    #[test]
    fn partition_point_in_empty_and_clamped_ranges() {
        let vals: Vec<u64> = (0..2 * VALS_PER_PAGE as u64).collect();
        let (_dm, pool, col) = setup(&vals);
        assert_eq!(col.lower_bound_in(&pool, 5..5, 0), 5);
        // Inverted ranges are degenerate; the partition point is `start`,
        // matching the plain binary-search behavior.
        let inverted = Range {
            start: 100,
            end: 50,
        };
        assert_eq!(col.lower_bound_in(&pool, inverted, 0), 100);
        // Range end past len is clamped.
        assert_eq!(
            col.lower_bound_in(&pool, 0..col.len() + 999, u64::MAX),
            col.len()
        );
    }

    #[test]
    fn sorted_runs_compress_and_read_back() {
        // Clustered-OID shape: sorted, small per-page range → FOR pages.
        let vals: Vec<u64> = (0..3 * VALS_PER_PAGE as u64 + 500)
            .map(|i| 1_000_000 + i)
            .collect();
        let (_dm, pool, col) = setup(&vals);
        let (plain, forp, cst) = col.encoding_counts();
        assert_eq!((plain, cst), (0, 0), "sorted runs should all pack");
        assert_eq!(forp, col.n_pages());
        assert!(
            col.used_bytes() * 3 < col.plain_bytes(),
            "FOR should shrink a dense run >= 3x: {} vs {}",
            col.used_bytes(),
            col.plain_bytes()
        );
        // Every access path decodes transparently.
        assert_eq!(col.to_vec(&pool, 0..vals.len()), vals);
        assert_eq!(
            col.value(&pool, VALS_PER_PAGE + 17),
            vals[VALS_PER_PAGE + 17]
        );
        let rows = [
            0usize,
            5,
            VALS_PER_PAGE - 1,
            VALS_PER_PAGE,
            3 * VALS_PER_PAGE + 499,
        ];
        assert_eq!(
            col.gather(&pool, &rows),
            rows.iter().map(|&r| vals[r]).collect::<Vec<_>>()
        );
        assert_eq!(col.lower_bound(&pool, 1_000_000 + 12345), 12345);
    }

    #[test]
    fn plain_encoding_knob_disables_compression() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let vals: Vec<u64> = (0..2 * VALS_PER_PAGE as u64).collect();
        let col = Column::from_slice_with(&dm, &vals, ColumnEncoding::Plain);
        assert_eq!(col.encoding_counts(), (col.n_pages(), 0, 0));
        assert_eq!(col.used_bytes(), col.plain_bytes());
        let pool = BufferPool::new(Arc::clone(&dm), 64);
        assert_eq!(col.to_vec(&pool, 0..vals.len()), vals);
    }

    #[test]
    fn constant_pages_skip_the_pool() {
        // A full page of one repeated value is served from metadata.
        let vals = vec![99u64; VALS_PER_PAGE + 10];
        let (_dm, pool, col) = setup(&vals);
        let (_, _, cst) = col.encoding_counts();
        assert_eq!(cst, 2);
        let before = pool.stats();
        assert_eq!(col.to_vec(&pool, 0..vals.len()), vals);
        assert_eq!(col.value(&pool, 3), 99);
        assert_eq!(col.gather(&pool, &[0, VALS_PER_PAGE + 1]), vec![99, 99]);
        let d = pool.stats().since(&before);
        assert_eq!(d.hits + d.misses, 0, "constant pages never hit the pool");
    }

    #[test]
    fn compressed_matches_plain_on_mixed_content() {
        // NULL-ridden, unsorted, with wide outliers: every page class at once.
        let mut vals = Vec::new();
        for i in 0..(2 * VALS_PER_PAGE + 700) as u64 {
            vals.push(match i % 7 {
                0 => NULL_SENTINEL,
                1 => 5,
                2 => u64::MAX - 2 - i, // wide range → plain page
                _ => 1_000 + (i % 50),
            });
        }
        let dm = Arc::new(DiskManager::temp().unwrap());
        let pool = BufferPool::new(Arc::clone(&dm), 64);
        let plain = Column::from_slice_with(&dm, &vals, ColumnEncoding::Plain);
        let comp = Column::from_slice_with(&dm, &vals, ColumnEncoding::Compressed);
        assert_eq!(
            comp.to_vec(&pool, 0..vals.len()),
            plain.to_vec(&pool, 0..vals.len())
        );
        assert_eq!(comp.n_nulls(), plain.n_nulls());
        let rows: Vec<usize> = (0..vals.len()).step_by(97).collect();
        assert_eq!(comp.gather(&pool, &rows), plain.gather(&pool, &rows));
        for idx in [0, 1, VALS_PER_PAGE, 2 * VALS_PER_PAGE + 699] {
            assert_eq!(comp.value(&pool, idx), plain.value(&pool, idx));
        }
    }

    #[test]
    fn zonemap_matches_contents() {
        let vals: Vec<u64> = (0..VALS_PER_PAGE as u64 * 2).collect();
        let (_dm, _pool, col) = setup(&vals);
        let zm = col.zonemap();
        assert_eq!(zm.page(0).min, 0);
        assert_eq!(zm.page(0).max, VALS_PER_PAGE as u64 - 1);
        assert_eq!(zm.page(1).min, VALS_PER_PAGE as u64);
        assert_eq!(zm.candidate_pages(3, 5), vec![0]);
    }
}
