//! Per-page lightweight compression: frame-of-reference + bit-packing.
//!
//! Every [`crate::Column`] page holds up to [`VALS_PER_PAGE`] logical u64
//! values, but it does not have to *store* 64 bits per value. Sorted and
//! clustered OID runs — the dominant content of a self-organized store —
//! have tiny per-page value ranges, so a frame-of-reference (FOR) page
//! stores one 64-bit base plus fixed-width bit-packed deltas and shrinks
//! the bytes a scan must touch by 3–8x. The engine never sees this: chunk
//! iteration decodes pages into register-sized blocks, and point access
//! (`gather`, binary search) decodes single positions in O(1).
//!
//! ## Page layouts
//!
//! A page's encoding is chosen at build time by a size heuristic and
//! recorded both in the column's in-memory [`PageEnc`] table and in the
//! page's own header word (so pages are self-describing on disk):
//!
//! ```text
//! Plain:  [v0][v1]...[v8191]                      (no header; the legacy layout)
//! FOR:    [header][base][packed deltas...]        (header tag = 1)
//! Const:  [header][value]                         (header tag = 2)
//! ```
//!
//! The header word packs `tag | width << 8 | count << 16`. FOR deltas are
//! `value - base`, packed LSB-first at a fixed `width` of 1..=63 bits;
//! NULLs are stored in-band as the all-ones delta code `(1 << width) - 1`,
//! so a FOR page is only chosen when `max - base` is strictly below that
//! code. A `Const` page stores one repeated value (possibly the NULL
//! sentinel) — it is served straight from column metadata, without a
//! buffer-pool request.
//!
//! All byte-level page layout knowledge lives in this module and
//! `column.rs`; everything else goes through [`crate::Chunk`] and the
//! column accessors (lint rule L8 enforces this).

use crate::disk::VALS_PER_PAGE;

/// The NULL sentinel (same value as `column::NULL_SENTINEL`; redeclared here
/// to keep this module free of circular imports).
const NULL: u64 = u64::MAX;

/// Header tag of a frame-of-reference page.
pub const TAG_FOR: u64 = 1;
/// Header tag of a constant (run-length) page.
pub const TAG_CONST: u64 = 2;

/// Words a FOR page spends before packed data: header + base.
const FOR_PREFIX_WORDS: usize = 2;

/// How one column page is encoded. Carried in column metadata (one entry
/// per page) so readers know the layout before touching the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageEnc {
    /// Raw u64 values, no header — the legacy layout.
    Plain,
    /// Frame-of-reference: `base` + `width`-bit deltas, NULL in-band as the
    /// all-ones delta code.
    For { base: u64, width: u8 },
    /// Every row holds `value` (which may be the NULL sentinel). Served
    /// from metadata alone — no disk page access.
    Const { value: u64 },
}

impl PageEnc {
    /// Words of the 64 KiB page this encoding actually uses for `count`
    /// values — the "bytes a scan must touch" metric reported by
    /// `bench_memory`.
    pub fn used_words(&self, count: usize) -> usize {
        match self {
            PageEnc::Plain => count,
            PageEnc::For { width, .. } => FOR_PREFIX_WORDS + packed_words(count, *width),
            PageEnc::Const { .. } => FOR_PREFIX_WORDS,
        }
    }
}

/// Words needed to bit-pack `count` values at `width` bits each.
#[inline]
pub fn packed_words(count: usize, width: u8) -> usize {
    (count * width as usize).div_ceil(64)
}

/// Pack the page header word.
#[inline]
fn header(tag: u64, width: u8, count: usize) -> u64 {
    debug_assert!(count <= VALS_PER_PAGE);
    tag | (width as u64) << 8 | (count as u64) << 16
}

/// The narrowest delta width (1..=63) whose in-band NULL code stays above
/// `range = max - base`, i.e. the smallest `w` with `range < (1 << w) - 1`.
/// `None` when no width below 64 bits can hold the range.
fn width_for(range: u64) -> Option<u8> {
    (1..=63u8).find(|&w| range < (1u64 << w) - 1)
}

/// Choose the encoding for one page of values by the size heuristic: the
/// cheapest self-describing layout that is strictly smaller than plain.
/// Returns the chosen encoding plus the encoded page image to write (`None`
/// for plain — the caller writes the raw values).
pub fn choose(vals: &[u64]) -> (PageEnc, Option<Vec<u64>>) {
    debug_assert!(!vals.is_empty() && vals.len() <= VALS_PER_PAGE);
    let first = vals[0];
    if vals.iter().all(|&v| v == first) {
        let enc = PageEnc::Const { value: first };
        return (enc, Some(vec![header(TAG_CONST, 0, vals.len()), first]));
    }
    // Frame of reference over the non-null values.
    let mut min = u64::MAX;
    let mut max = 0u64;
    for &v in vals {
        if v != NULL {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if min > max {
        // All NULL (but not uniform — unreachable given the Const check
        // above; kept for safety).
        return (
            PageEnc::Const { value: NULL },
            Some(vec![header(TAG_CONST, 0, vals.len()), NULL]),
        );
    }
    let Some(width) = width_for(max - min) else {
        return (PageEnc::Plain, None);
    };
    let enc = PageEnc::For { base: min, width };
    if enc.used_words(vals.len()) >= vals.len() {
        // Packing would not shrink the page (short tails, wide ranges).
        return (PageEnc::Plain, None);
    }
    let mut out = vec![0u64; enc.used_words(vals.len())];
    out[0] = header(TAG_FOR, width, vals.len());
    out[1] = min;
    let mask = (1u64 << width) - 1;
    for (i, &v) in vals.iter().enumerate() {
        let delta = if v == NULL { mask } else { v - min };
        let bit = i * width as usize;
        let (word, shift) = (bit / 64, (bit % 64) as u32);
        out[FOR_PREFIX_WORDS + word] |= delta << shift;
        if shift as usize + width as usize > 64 {
            out[FOR_PREFIX_WORDS + word + 1] |= delta >> (64 - shift);
        }
    }
    (enc, Some(out))
}

/// Decode position `i` of a FOR page in O(1). `words` is the full page
/// image (header + base + packed deltas).
#[inline]
pub fn for_get(words: &[u64], base: u64, width: u8, i: usize) -> u64 {
    let mask = (1u64 << width) - 1;
    let bit = i * width as usize;
    let (word, shift) = (bit / 64, (bit % 64) as u32);
    let mut delta = words[FOR_PREFIX_WORDS + word] >> shift;
    if shift as usize + width as usize > 64 {
        delta |= words[FOR_PREFIX_WORDS + word + 1] << (64 - shift);
    }
    let delta = delta & mask;
    if delta == mask {
        NULL
    } else {
        base + delta
    }
}

/// Decode positions `lo..hi` of a FOR page into `out` — the
/// decode-into-register-block step chunked scans run per page.
///
/// This is the hottest loop of scan-on-compressed execution, so it unpacks
/// word-at-a-time: a register window (`cur`/`avail`) is refilled once per
/// packed word, and every value between refills costs only a mask, a
/// compare and an add — no per-value position arithmetic or wide loads.
pub fn for_decode_range(
    words: &[u64],
    base: u64,
    width: u8,
    lo: usize,
    hi: usize,
    out: &mut Vec<u64>,
) {
    debug_assert!(lo <= hi);
    let n = hi - lo;
    if n == 0 {
        return;
    }
    let w = width as usize;
    let mask = (1u64 << width) - 1;
    let packed = &words[FOR_PREFIX_WORDS..];
    let bit = lo * w;
    let mut wi = bit >> 6;
    let shift = bit & 63;
    // Window of undecoded bits: `avail` low bits of `cur` are valid.
    let mut cur = packed[wi] >> shift;
    let mut avail = 64 - shift;
    out.extend((0..n).map(|_| {
        let delta = if avail >= w {
            let d = cur & mask;
            cur >>= w;
            avail -= w;
            d
        } else {
            // Straddles the word boundary: splice the next word's low bits
            // onto the `avail` bits still in the window.
            wi += 1;
            let next = packed[wi];
            let d = (cur | next << avail) & mask;
            cur = next >> (w - avail);
            avail = 64 - (w - avail);
            d
        };
        if delta == mask {
            NULL
        } else {
            base + delta
        }
    }));
}

/// First position in `lo..hi` of a FOR page where `pred(value)` is false,
/// given `pred` is monotone (true-prefix) over the positions — O(log n)
/// binary search decoding one position per step.
pub fn for_partition_point(
    words: &[u64],
    base: u64,
    width: u8,
    lo: usize,
    hi: usize,
    pred: impl Fn(u64) -> bool,
) -> usize {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(for_get(words, base, width, mid)) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(vals: &[u64]) -> PageEnc {
        let (enc, image) = choose(vals);
        match enc {
            PageEnc::Plain => assert!(image.is_none()),
            PageEnc::Const { value } => {
                assert!(vals.iter().all(|&v| v == value));
                assert_eq!(image.unwrap().len(), 2);
            }
            PageEnc::For { base, width } => {
                let mut page = image.unwrap();
                assert!(page.len() < vals.len(), "FOR must shrink the page");
                page.resize(VALS_PER_PAGE, 0); // as read_page would return it
                for (i, &v) in vals.iter().enumerate() {
                    assert_eq!(for_get(&page, base, width, i), v, "position {i}");
                }
                let mut dec = Vec::new();
                for_decode_range(&page, base, width, 0, vals.len(), &mut dec);
                assert_eq!(dec, vals);
                // Partial ranges decode identically.
                let (lo, hi) = (vals.len() / 3, 2 * vals.len() / 3);
                let mut part = Vec::new();
                for_decode_range(&page, base, width, lo, hi, &mut part);
                assert_eq!(part, &vals[lo..hi]);
            }
        }
        enc
    }

    #[test]
    fn sequential_run_packs_narrow() {
        let vals: Vec<u64> = (1000..1000 + VALS_PER_PAGE as u64).collect();
        match roundtrip(&vals) {
            PageEnc::For { base, width } => {
                assert_eq!(base, 1000);
                assert_eq!(width, 14, "8191 range needs 14 bits with in-band NULL");
            }
            other => panic!("expected FOR, got {other:?}"),
        }
    }

    #[test]
    fn nulls_are_in_band() {
        let mut vals: Vec<u64> = (0..4096).map(|i| 7 + i % 100).collect();
        vals.extend(std::iter::repeat_n(NULL, 4096));
        match roundtrip(&vals) {
            PageEnc::For { base, width } => {
                assert_eq!(base, 7);
                assert!(width >= 7, "NULL code must clear the 0..=99 range");
            }
            other => panic!("expected FOR, got {other:?}"),
        }
    }

    #[test]
    fn constant_and_all_null_pages() {
        assert!(matches!(
            roundtrip(&vec![42u64; VALS_PER_PAGE]),
            PageEnc::Const { value: 42 }
        ));
        assert!(matches!(
            roundtrip(&vec![NULL; 100]),
            PageEnc::Const { value: NULL }
        ));
        assert!(matches!(roundtrip(&[7]), PageEnc::Const { value: 7 }));
    }

    #[test]
    fn wide_or_tiny_pages_stay_plain() {
        // Range too wide for any width <= 63.
        assert!(matches!(roundtrip(&[0, u64::MAX - 1]), PageEnc::Plain));
        // A short tail where the 2-word prefix erases the packing win.
        assert!(matches!(roundtrip(&[1, 2, 3]), PageEnc::Plain));
    }

    #[test]
    fn width_boundary_values() {
        // range == mask - 1 for width w fits; range == mask needs w + 1.
        for w in [1u8, 7, 13, 31, 62] {
            let mask = (1u64 << w) - 1;
            assert_eq!(width_for(mask - 1), Some(w));
            assert_eq!(width_for(mask), Some(w + 1));
        }
        assert_eq!(width_for((1u64 << 63) - 1), None, "63-bit range overflows");
        assert_eq!(width_for(u64::MAX - 1), None);
        assert_eq!(width_for(0), Some(1));
    }

    #[test]
    fn packed_crossing_word_boundaries() {
        // width 63 forces nearly every value to straddle two words.
        let vals: Vec<u64> = (0..VALS_PER_PAGE as u64)
            .map(|i| i * ((1u64 << 49) / VALS_PER_PAGE as u64))
            .collect();
        match roundtrip(&vals) {
            PageEnc::For { width, .. } => assert!(width >= 40),
            other => panic!("expected FOR, got {other:?}"),
        }
    }

    #[test]
    fn partition_point_matches_slice_search() {
        let vals: Vec<u64> = (0..VALS_PER_PAGE as u64).map(|i| 50 + i * 3).collect();
        let (enc, image) = choose(&vals);
        let PageEnc::For { base, width } = enc else {
            panic!("expected FOR")
        };
        let mut page = image.unwrap();
        page.resize(VALS_PER_PAGE, 0);
        for probe in [0u64, 49, 50, 51, 5000, u64::MAX - 1] {
            let got = for_partition_point(&page, base, width, 0, vals.len(), |x| x < probe);
            assert_eq!(got, vals.partition_point(|&x| x < probe), "probe {probe}");
        }
        // Sub-range searches (secondary sort keys are run-sorted).
        let got = for_partition_point(&page, base, width, 100, 200, |x| x < 500);
        assert_eq!(got, 150);
    }
}
