//! Per-page zone maps (Netezza-style min/max summaries).
//!
//! Built for free while a column is written, zone maps let scans skip pages
//! that cannot contain matches for a range predicate. The paper uses them on
//! the clustered store to push a `shipdate` restriction to the referenced
//! `ORDERS` subject range and vice versa (Table I's "ZoneMaps = Yes" rows).

/// Summary of one page of a column. Min/max are computed over **non-null**
/// values; a page of only NULL sentinels has `n_nonnull == 0` and an
/// inverted (min > max) range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageStats {
    pub min: u64,
    pub max: u64,
    pub n_nonnull: u32,
}

impl PageStats {
    /// Stats of an empty/all-null page.
    pub fn empty() -> PageStats {
        PageStats {
            min: u64::MAX,
            max: 0,
            n_nonnull: 0,
        }
    }

    /// Fold one non-null value into the stats.
    #[inline]
    pub fn add(&mut self, v: u64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.n_nonnull += 1;
    }

    /// Could this page contain a value in `[lo, hi]`?
    #[inline]
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.n_nonnull > 0 && self.min <= hi && self.max >= lo
    }
}

/// The zone map of a whole column: one [`PageStats`] per page.
#[derive(Debug, Clone, Default)]
pub struct ZoneMap {
    pages: Vec<PageStats>,
}

impl ZoneMap {
    pub fn new(pages: Vec<PageStats>) -> ZoneMap {
        ZoneMap { pages }
    }

    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    pub fn page(&self, i: usize) -> &PageStats {
        &self.pages[i]
    }

    /// Indices of pages that may contain values in `[lo, hi]`.
    pub fn candidate_pages(&self, lo: u64, hi: u64) -> Vec<usize> {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, st)| st.overlaps(lo, hi))
            .map(|(i, _)| i)
            .collect()
    }

    /// Overall min over non-null values, if any.
    pub fn global_min(&self) -> Option<u64> {
        self.pages
            .iter()
            .filter(|p| p.n_nonnull > 0)
            .map(|p| p.min)
            .min()
    }

    /// Overall max over non-null values, if any.
    pub fn global_max(&self) -> Option<u64> {
        self.pages
            .iter()
            .filter(|p| p.n_nonnull > 0)
            .map(|p| p.max)
            .max()
    }

    /// Fraction of pages that `[lo, hi]` can skip (the pruning power metric
    /// reported by the zone-map ablation bench).
    pub fn skip_fraction(&self, lo: u64, hi: u64) -> f64 {
        if self.pages.is_empty() {
            return 0.0;
        }
        let kept = self.candidate_pages(lo, hi).len();
        1.0 - kept as f64 / self.pages.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zm(ranges: &[(u64, u64)]) -> ZoneMap {
        ZoneMap::new(
            ranges
                .iter()
                .map(|&(min, max)| PageStats {
                    min,
                    max,
                    n_nonnull: 10,
                })
                .collect(),
        )
    }

    #[test]
    fn overlap_logic() {
        let st = PageStats {
            min: 10,
            max: 20,
            n_nonnull: 5,
        };
        assert!(st.overlaps(15, 18));
        assert!(st.overlaps(0, 10));
        assert!(st.overlaps(20, 99));
        assert!(!st.overlaps(0, 9));
        assert!(!st.overlaps(21, 99));
    }

    #[test]
    fn all_null_page_never_overlaps() {
        let st = PageStats::empty();
        assert!(!st.overlaps(0, u64::MAX));
    }

    #[test]
    fn candidate_pruning() {
        let z = zm(&[(0, 9), (10, 19), (20, 29), (30, 39)]);
        assert_eq!(z.candidate_pages(12, 22), vec![1, 2]);
        assert_eq!(z.candidate_pages(100, 200), Vec::<usize>::new());
        assert_eq!(z.skip_fraction(12, 22), 0.5);
        assert_eq!(z.global_min(), Some(0));
        assert_eq!(z.global_max(), Some(39));
    }

    #[test]
    fn stats_accumulate() {
        let mut st = PageStats::empty();
        for v in [5u64, 3, 9] {
            st.add(v);
        }
        assert_eq!((st.min, st.max, st.n_nonnull), (3, 9, 3));
    }
}
