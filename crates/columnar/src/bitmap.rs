//! Packed bitsets for NULL masks and selection vectors.

/// A fixed-length bitset over `len` positions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of the given length.
    pub fn new(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap of the given length.
    pub fn ones(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over indices of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// In-place intersection. Lengths must match.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union. Lengths must match.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Flip every bit.
    pub fn negate(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.clear_tail();
    }
}

/// Iterator over set-bit positions.
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = Bitmap::new(200);
        for i in [3usize, 64, 65, 127, 128, 199] {
            b.set(i, true);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn ones_and_negate_respect_length() {
        let mut b = Bitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        b.negate();
        assert_eq!(b.count_ones(), 0);
        b.negate();
        assert_eq!(b.count_ones(), 70);
    }

    #[test]
    fn boolean_ops() {
        let mut a = Bitmap::new(10);
        let mut b = Bitmap::new(10);
        a.set(1, true);
        a.set(2, true);
        b.set(2, true);
        b.set(3, true);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![2]);
        a.or_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }
}
