//! Property-based differential tests for the page-compression layer.
//!
//! Two layers of properties, both differential against the plain layout:
//!
//! * **Page level** — for arbitrary value runs, [`compress::choose`] must
//!   produce an image that decodes byte-identically back through
//!   [`compress::for_get`] / [`compress::for_decode_range`], and
//!   [`compress::for_partition_point`] must agree with the slice
//!   `partition_point` on sorted runs.
//! * **Column level** — a [`Column`] built with `ColumnEncoding::Compressed`
//!   must agree with its `ColumnEncoding::Plain` twin on every accessor the
//!   engine uses: point access, `gather`, range decode, and binary search.
//!
//! Deterministic edge-case tests cover the shapes the generator is unlikely
//! to hit: empty columns, all-NULL pages, single-value pages, and ranges too
//! wide for any packed width.

use proptest::prelude::*;
use sordf_columnar::column::NULL_SENTINEL;
use sordf_columnar::compress::{self, PageEnc};
use sordf_columnar::{BufferPool, Column, ColumnEncoding, DiskManager, VALS_PER_PAGE};
use std::sync::Arc;

/// Round-trip one logical page through `choose` and the FOR decoders,
/// asserting the decoded values are identical to the input whatever
/// encoding the size heuristic picked.
fn assert_page_roundtrip(vals: &[u64]) -> PageEnc {
    let (enc, image) = compress::choose(vals);
    match enc {
        PageEnc::Plain => assert!(image.is_none(), "plain pages carry no image"),
        PageEnc::Const { value } => {
            assert!(
                vals.iter().all(|&v| v == value),
                "Const page must be uniform"
            );
            assert_eq!(image.unwrap().len(), 2, "Const image is header + value");
        }
        PageEnc::For { base, width } => {
            let mut page = image.unwrap();
            assert_eq!(page.len(), enc.used_words(vals.len()));
            assert!(
                page.len() < vals.len(),
                "FOR must be strictly smaller than plain"
            );
            // Pages come back from the buffer pool zero-padded to full size.
            page.resize(VALS_PER_PAGE, 0);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(compress::for_get(&page, base, width, i), v, "pos {i}");
            }
            let mut dec = Vec::new();
            compress::for_decode_range(&page, base, width, 0, vals.len(), &mut dec);
            assert_eq!(dec, vals, "full-range decode");
            let (lo, hi) = (vals.len() / 4, vals.len() - vals.len() / 3);
            let mut part = Vec::new();
            compress::for_decode_range(&page, base, width, lo, hi, &mut part);
            assert_eq!(part, &vals[lo..hi], "partial-range decode {lo}..{hi}");
        }
    }
    enc
}

/// Build the same values under both encodings and assert every accessor
/// the engine uses agrees. `probes` drive the binary-search comparison
/// (only meaningful when `vals` is sorted; pass `sorted = true` then).
fn assert_column_differential(vals: &[u64], probes: &[u64], sorted: bool) {
    let dm = Arc::new(DiskManager::temp().unwrap());
    let plain = Column::from_slice_with(&dm, vals, ColumnEncoding::Plain);
    let comp = Column::from_slice_with(&dm, vals, ColumnEncoding::Compressed);
    let pool = BufferPool::new(Arc::clone(&dm), 64);

    assert_eq!(plain.len(), comp.len());
    assert_eq!(plain.n_nulls(), comp.n_nulls());
    // Compression never grows the column beyond the 2-word Const/FOR page
    // prefix a 1-value tail page pays (plain stores 1 word there).
    assert!(
        comp.used_bytes() <= plain.used_bytes().max(16),
        "compression grew the column: {} > {}",
        comp.used_bytes(),
        plain.used_bytes()
    );

    // Full materialization and point access.
    assert_eq!(
        plain.to_vec(&pool, 0..vals.len()),
        comp.to_vec(&pool, 0..vals.len()),
        "to_vec differs"
    );
    assert_eq!(plain.to_vec(&pool, 0..vals.len()), vals, "to_vec vs input");
    // Gather across page boundaries (first/last of each page plus strides).
    let mut rows: Vec<usize> = (0..vals.len()).step_by(vals.len() / 13 + 1).collect();
    for p in 0..plain.n_pages() {
        let r = plain.page_rows(p);
        rows.push(r.start);
        rows.push(r.end - 1);
    }
    assert_eq!(plain.gather(&pool, &rows), comp.gather(&pool, &rows));
    for &i in rows.iter() {
        assert_eq!(plain.value(&pool, i), comp.value(&pool, i), "value({i})");
    }

    // Sorted binary search is only contractual for NULL-free columns (the
    // clustered index columns): zone-map page maxima ignore NULLs, so a
    // mixed value+NULL page is outside the search contract.
    if sorted && plain.n_nulls() == 0 {
        for &probe in probes {
            let expect_lo = vals.partition_point(|&x| x < probe);
            let expect_hi = vals.partition_point(|&x| x <= probe);
            assert_eq!(plain.lower_bound(&pool, probe), expect_lo);
            assert_eq!(comp.lower_bound(&pool, probe), expect_lo, "lb({probe})");
            assert_eq!(plain.upper_bound(&pool, probe), expect_hi);
            assert_eq!(comp.upper_bound(&pool, probe), expect_hi, "ub({probe})");
            // Sub-range search (run-local secondary keys).
            let (lo, hi) = (vals.len() / 5, vals.len() - vals.len() / 5);
            assert_eq!(
                plain.lower_bound_in(&pool, lo..hi, probe),
                comp.lower_bound_in(&pool, lo..hi, probe),
                "lb_in({probe})"
            );
        }
    }
}

/// A sorted OID-like run: small strides from a base, NULLs (which sort
/// last as `u64::MAX`) appended at the tail.
fn sorted_run() -> impl Strategy<Value = Vec<u64>> {
    (
        0u64..1 << 40,
        1u64..512,
        16usize..3 * VALS_PER_PAGE,
        0usize..200,
    )
        .prop_map(|(base, step, n, nulls)| {
            let mut v: Vec<u64> = (0..n as u64).map(|i| base + i * step).collect();
            v.resize(v.len() + nulls, NULL_SENTINEL);
            v
        })
}

/// A clustered (unsorted) run around a base with interleaved NULLs — the
/// shape of non-key property columns after subject clustering.
fn clustered_run() -> impl Strategy<Value = Vec<u64>> {
    (
        0u64..1 << 50,
        proptest::collection::vec((0u64..100_000, 0u32..10), 16..2 * VALS_PER_PAGE),
    )
        .prop_map(|(base, cells)| {
            cells
                .into_iter()
                .map(|(d, tag)| if tag == 0 { NULL_SENTINEL } else { base + d })
                .collect()
        })
}

/// Full-range random values — wide pages the heuristic must leave plain.
fn random_run() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 1..VALS_PER_PAGE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn page_roundtrip_sorted(vals in sorted_run()) {
        for page in vals.chunks(VALS_PER_PAGE) {
            assert_page_roundtrip(page);
        }
    }

    #[test]
    fn page_roundtrip_clustered(vals in clustered_run()) {
        for page in vals.chunks(VALS_PER_PAGE) {
            assert_page_roundtrip(page);
        }
    }

    #[test]
    fn page_roundtrip_random(vals in random_run()) {
        assert_page_roundtrip(&vals);
    }

    #[test]
    fn page_partition_point_matches_slice(
        (base, step, n) in (0u64..1 << 40, 1u64..512, 64usize..VALS_PER_PAGE),
        raw_probes in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let vals: Vec<u64> = (0..n as u64).map(|i| base + i * step).collect();
        let (enc, image) = compress::choose(&vals);
        // The stride keeps the range far below 63 bits, so FOR always wins.
        let PageEnc::For { base, width } = enc else {
            panic!("expected FOR for base {base} step {step} n {n}, got {enc:?}")
        };
        let mut page = image.unwrap();
        page.resize(VALS_PER_PAGE, 0);
        // Mix raw 64-bit probes with in-range ones so both tails get hit.
        for probe in raw_probes.iter().map(|&p| p % (base + n as u64 * step + 2))
            .chain(raw_probes.iter().copied())
        {
            prop_assert_eq!(
                compress::for_partition_point(&page, base, width, 0, vals.len(), |x| x < probe),
                vals.partition_point(|&x| x < probe),
                "probe {}", probe
            );
        }
    }

    #[test]
    fn column_differential_sorted(
        (base, step, n) in (0u64..1 << 40, 1u64..512, 16usize..3 * VALS_PER_PAGE),
        raw_probes in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        // NULL-free: sorted index columns never hold NULLs (search contract).
        let vals: Vec<u64> = (0..n as u64).map(|i| base + i * step).collect();
        let span = *vals.last().unwrap();
        let probes: Vec<u64> = raw_probes.iter().map(|&p| base + p % (span - base + 2))
            .chain([0, base, span, u64::MAX]).collect();
        assert_column_differential(&vals, &probes, true);
    }

    #[test]
    fn column_differential_sorted_null_tail(vals in sorted_run()) {
        // NULLs sort last; access paths must still agree even though the
        // sorted-search contract no longer applies.
        assert_column_differential(&vals, &[], true);
    }

    #[test]
    fn column_differential_clustered(vals in clustered_run()) {
        assert_column_differential(&vals, &[], false);
    }

    #[test]
    fn column_differential_random(vals in random_run()) {
        assert_column_differential(&vals, &[], false);
    }
}

#[test]
fn empty_column_both_encodings() {
    assert_column_differential(&[], &[], true);
    let dm = Arc::new(DiskManager::temp().unwrap());
    let c = Column::from_slice_with(&dm, &[], ColumnEncoding::Compressed);
    assert_eq!(c.len(), 0);
    assert_eq!(c.n_pages(), 0);
    assert_eq!(c.used_bytes(), 0);
}

#[test]
fn all_null_pages_both_encodings() {
    // One partial page, one exact page, and a multi-page run of NULLs.
    for n in [1, 100, VALS_PER_PAGE, VALS_PER_PAGE + 7] {
        let vals = vec![NULL_SENTINEL; n];
        assert_page_roundtrip(&vals[..n.min(VALS_PER_PAGE)]);
        assert_column_differential(&vals, &[0, 1, u64::MAX], true);
    }
}

#[test]
fn single_value_pages_both_encodings() {
    for v in [0u64, 42, u64::MAX - 1] {
        assert!(matches!(
            assert_page_roundtrip(&[v]),
            PageEnc::Const { value } if value == v
        ));
    }
    let vals = vec![7u64; VALS_PER_PAGE + 3];
    assert_column_differential(&vals, &[6, 7, 8], true);
}

#[test]
fn overflow_width_pages_stay_plain() {
    // Ranges >= 2^63 - 1 cannot pack below 64 bits: the page must fall back
    // to plain and still round-trip through the column layer.
    let vals: Vec<u64> = (0..256).map(|i| i * (u64::MAX / 257)).collect();
    assert!(matches!(assert_page_roundtrip(&vals), PageEnc::Plain));
    assert_column_differential(&vals, &[0, u64::MAX / 2, u64::MAX], true);

    // Near-sentinel values: base close to u64::MAX with NULLs in-band.
    let mut near_max: Vec<u64> = (0..512).map(|i| u64::MAX - 600 + i).collect();
    near_max.push(NULL_SENTINEL);
    assert_page_roundtrip(&near_max);
    assert_column_differential(&near_max, &[u64::MAX - 601, u64::MAX - 300], true);
}
