//! SPARQL tokenizer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<http://...>`
    IriRef(String),
    /// `prefix:local` (prefix may be empty)
    PName(String, String),
    /// `?name` or `$name`
    Var(String),
    /// String literal body (escapes resolved), optional language tag.
    Str(String, Option<String>),
    /// Integer literal.
    Int(i64),
    /// Decimal/double literal, scale-4 unscaled.
    Dec(i64),
    /// Bare keyword or identifier (uppercased for comparison elsewhere).
    Word(String),
    /// `^^` datatype marker.
    DtMarker,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Tokenizer error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub pos: usize,
    pub msg: String,
}

/// Tokenize a SPARQL document.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    Ok(tokenize_spanned(src)?.into_iter().map(|(t, _)| t).collect())
}

/// Tokenize a SPARQL document, keeping each token's starting byte offset
/// (`Eof` is positioned at `src.len()`). The offsets drive caret-annotated
/// parse errors (see [`crate::parser::ParseError::render_caret`]).
pub fn tokenize_spanned(src: &str) -> Result<Vec<(Token, usize)>, LexError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let err = |pos: usize, msg: &str| LexError {
        pos,
        msg: msg.to_string(),
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'<' => {
                // IRI or comparison: IRIs have no whitespace and close with '>'.
                if let Some(end) = src[i + 1..].find(|ch: char| ch == '>' || ch.is_whitespace()) {
                    let end_pos = i + 1 + end;
                    if b.get(end_pos) == Some(&b'>') && !src[i + 1..end_pos].is_empty() {
                        out.push((Token::IriRef(src[i + 1..end_pos].to_string()), i));
                        i = end_pos + 1;
                        continue;
                    }
                }
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Token::Le, i));
                    i += 2;
                } else {
                    out.push((Token::Lt, i));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ge, i));
                    i += 2;
                } else {
                    out.push((Token::Gt, i));
                    i += 1;
                }
            }
            b'?' | b'$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(err(i, "empty variable name"));
                }
                out.push((Token::Var(src[start..j].to_string()), i));
                i = j;
            }
            b'"' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= b.len() {
                        return Err(err(i, "unterminated string"));
                    }
                    match b[j] {
                        b'"' => break,
                        b'\\' => {
                            j += 1;
                            match b.get(j) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'r') => s.push('\r'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(err(j, "bad escape")),
                            }
                            j += 1;
                        }
                        _ => {
                            let ch_len = utf8_len(b[j]);
                            s.push_str(&src[j..j + ch_len]);
                            j += ch_len;
                        }
                    }
                }
                j += 1; // closing quote
                        // Language tag?
                let mut lang = None;
                if b.get(j) == Some(&b'@') {
                    let start = j + 1;
                    let mut k = start;
                    while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'-') {
                        k += 1;
                    }
                    lang = Some(src[start..k].to_string());
                    j = k;
                }
                out.push((Token::Str(s, lang), i));
                i = j;
            }
            b'^' => {
                if b.get(i + 1) == Some(&b'^') {
                    out.push((Token::DtMarker, i));
                    i += 2;
                } else {
                    return Err(err(i, "lone '^'"));
                }
            }
            b'{' => {
                out.push((Token::LBrace, i));
                i += 1;
            }
            b'}' => {
                out.push((Token::RBrace, i));
                i += 1;
            }
            b'(' => {
                out.push((Token::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Token::RParen, i));
                i += 1;
            }
            b';' => {
                out.push((Token::Semicolon, i));
                i += 1;
            }
            b',' => {
                out.push((Token::Comma, i));
                i += 1;
            }
            b'*' => {
                out.push((Token::Star, i));
                i += 1;
            }
            b'+' => {
                out.push((Token::Plus, i));
                i += 1;
            }
            b'/' => {
                out.push((Token::Slash, i));
                i += 1;
            }
            b'=' => {
                out.push((Token::Eq, i));
                i += 1;
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ne, i));
                    i += 2;
                } else {
                    out.push((Token::Bang, i));
                    i += 1;
                }
            }
            b'&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push((Token::AndAnd, i));
                    i += 2;
                } else {
                    return Err(err(i, "lone '&'"));
                }
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push((Token::OrOr, i));
                    i += 2;
                } else {
                    return Err(err(i, "lone '|'"));
                }
            }
            b'-' => {
                // Number or minus operator.
                if b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    let (tok, next) = lex_number(src, i)?;
                    out.push((tok, i));
                    i = next;
                } else {
                    out.push((Token::Minus, i));
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(src, i)?;
                out.push((tok, i));
                i = next;
            }
            b'.' => {
                // Dot terminates patterns; numbers starting with '.' are rare
                // in SPARQL and unsupported.
                out.push((Token::Dot, i));
                i += 1;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'-')
                {
                    j += 1;
                }
                // prefixed name?
                if b.get(j) == Some(&b':') {
                    let prefix = src[start..j].to_string();
                    let lstart = j + 1;
                    let mut k = lstart;
                    while k < b.len()
                        && (b[k].is_ascii_alphanumeric() || b[k] == b'_' || b[k] == b'-')
                    {
                        k += 1;
                    }
                    out.push((Token::PName(prefix, src[lstart..k].to_string()), i));
                    i = k;
                } else {
                    out.push((Token::Word(src[start..j].to_string()), i));
                    i = j;
                }
            }
            b':' => {
                // default-prefix pname  :local
                let lstart = i + 1;
                let mut k = lstart;
                while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_' || b[k] == b'-')
                {
                    k += 1;
                }
                out.push((Token::PName(String::new(), src[lstart..k].to_string()), i));
                i = k;
            }
            _ => return Err(err(i, &format!("unexpected character {:?}", c as char))),
        }
    }
    out.push((Token::Eof, src.len()));
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Lex an integer or decimal starting at `i` (may start with '-').
fn lex_number(src: &str, i: usize) -> Result<(Token, usize), LexError> {
    let b = src.as_bytes();
    let mut j = i;
    if b[j] == b'-' {
        j += 1;
    }
    while j < b.len() && b[j].is_ascii_digit() {
        j += 1;
    }
    let mut is_dec = false;
    if j < b.len() && b[j] == b'.' && b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
        is_dec = true;
        j += 1;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
    }
    let text = &src[i..j];
    if is_dec {
        let unscaled = sordf_model::term::parse_decimal(text).ok_or(LexError {
            pos: i,
            msg: format!("bad decimal {text}"),
        })?;
        Ok((Token::Dec(unscaled), j))
    } else {
        let v: i64 = text.parse().map_err(|_| LexError {
            pos: i,
            msg: format!("bad integer {text}"),
        })?;
        Ok((Token::Int(v), j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks = tokenize("SELECT ?a WHERE { ?b <http://e/p> ?a . }").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert_eq!(toks[1], Token::Var("a".into()));
        assert!(toks.contains(&Token::IriRef("http://e/p".into())));
        assert!(toks.contains(&Token::Dot));
    }

    #[test]
    fn comparison_vs_iri() {
        let toks = tokenize("FILTER(?x <= 5 && ?y < 3)").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::AndAnd));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 -7 0.05 -1.25").unwrap();
        assert_eq!(toks[0], Token::Int(42));
        assert_eq!(toks[1], Token::Int(-7));
        assert_eq!(toks[2], Token::Dec(500));
        assert_eq!(toks[3], Token::Dec(-12_500));
    }

    #[test]
    fn strings_with_lang_and_datatype() {
        let toks = tokenize(r#""chat"@fr "1996-01-01"^^xsd:date"#).unwrap();
        assert_eq!(toks[0], Token::Str("chat".into(), Some("fr".into())));
        assert_eq!(toks[1], Token::Str("1996-01-01".into(), None));
        assert_eq!(toks[2], Token::DtMarker);
        assert_eq!(toks[3], Token::PName("xsd".into(), "date".into()));
    }

    #[test]
    fn pnames_and_a() {
        let toks = tokenize("?x a rdfh:lineitem ; rdfh:qty ?q , ?r .").unwrap();
        assert_eq!(toks[1], Token::Word("a".into()));
        assert_eq!(toks[2], Token::PName("rdfh".into(), "lineitem".into()));
        assert!(toks.contains(&Token::Semicolon));
        assert!(toks.contains(&Token::Comma));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT # hi there\n ?a").unwrap();
        assert_eq!(toks.len(), 3); // SELECT, ?a, EOF
    }

    #[test]
    fn errors_carry_position() {
        let e = tokenize("SELECT @").unwrap_err();
        assert_eq!(e.pos, 7);
    }

    #[test]
    fn spanned_tokens_carry_start_offsets() {
        let src = "SELECT ?a WHERE { ?b <http://e/p> ?a . }";
        let toks = tokenize_spanned(src).unwrap();
        for (tok, pos) in &toks {
            match tok {
                Token::Word(w) => assert!(src[*pos..].starts_with(w.as_str())),
                Token::Var(v) => assert!(src[*pos..].starts_with(&format!("?{v}"))),
                Token::IriRef(iri) => assert!(src[*pos..].starts_with(&format!("<{iri}>"))),
                Token::Dot => assert!(src[*pos..].starts_with('.')),
                Token::LBrace => assert!(src[*pos..].starts_with('{')),
                Token::RBrace => assert!(src[*pos..].starts_with('}')),
                Token::Eof => assert_eq!(*pos, src.len()),
                other => panic!("unexpected token {other:?}"),
            }
        }
    }
}
