//! # sordf-sparql
//!
//! A SPARQL 1.1 subset parser producing [`sordf_engine::Query`] plans.
//!
//! Supported surface (everything the paper's workloads and the RDF-H query
//! catalog need):
//!
//! * `PREFIX` declarations, `a` as `rdf:type`, `;` predicate lists and `,`
//!   object lists inside basic graph patterns;
//! * `SELECT [DISTINCT]` with plain variables, `(expr AS ?alias)` and the
//!   aggregates `COUNT/SUM/AVG/MIN/MAX`;
//! * `FILTER` expressions: comparisons, boolean connectives, arithmetic,
//!   typed literals (`xsd:integer/decimal/date/dateTime/boolean`),
//!   language-tagged and plain strings;
//! * `GROUP BY`, `ORDER BY [ASC()|DESC()]`, `LIMIT`, `OFFSET`.
//!
//! Constants are resolved against the (immutable) dictionary; terms the
//! store has never seen map to *impossible* OIDs that match nothing, so
//! queries over unknown IRIs return empty results without mutating the
//! dictionary.

pub mod lexer;
pub mod parser;

pub use parser::{parse_sparql, ParseError};
