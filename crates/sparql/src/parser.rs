//! Recursive-descent SPARQL parser.

use crate::lexer::{tokenize_spanned, LexError, Token};
use sordf_engine::expr::ArithOp;
use sordf_engine::query::OrderKey;
use sordf_engine::{AggFunc, CmpOp, Expr, Query, SelectItem, TriplePattern, VarOrOid};
use sordf_model::{vocab, Dictionary, FxHashMap, Oid, Term, Value};

/// Parse failure with a human-readable message and, when the offending
/// token is known, its byte offset into the query text — the hook protocol
/// front ends use to point at the error (see [`ParseError::render_caret`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    msg: String,
    pos: Option<usize>,
}

impl ParseError {
    /// An error with no usable source position.
    pub fn new(msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            pos: None,
        }
    }

    /// An error anchored at byte offset `pos` of the query text.
    pub fn at(pos: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            pos: Some(pos),
        }
    }

    /// The bare message (no position decoration).
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// Byte offset of the offending token, when known.
    pub fn position(&self) -> Option<usize> {
        self.pos
    }

    /// Render the error against its source text with a caret under the
    /// offending token:
    ///
    /// ```text
    /// SPARQL parse error at line 1, column 22: expected predicate IRI ...
    ///   SELECT ?s WHERE { ?s 42 ?o }
    ///                        ^
    /// ```
    ///
    /// Falls back to the plain message when the error carries no position
    /// or the position does not land inside `src`.
    pub fn render_caret(&self, src: &str) -> String {
        let Some(pos) = self.pos.map(|p| p.min(src.len())) else {
            return format!("SPARQL parse error: {}", self.msg);
        };
        let line_start = src[..pos].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[pos..].find('\n').map_or(src.len(), |i| pos + i);
        let line_no = src[..pos].matches('\n').count() + 1;
        let col = src[line_start..pos].chars().count() + 1;
        let caret_pad: String = src[line_start..pos]
            .chars()
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        format!(
            "SPARQL parse error at line {line_no}, column {col}: {}\n  {}\n  {caret_pad}^",
            self.msg,
            &src[line_start..line_end],
        )
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pos {
            Some(p) => write!(f, "SPARQL parse error at byte {p}: {}", self.msg),
            None => write!(f, "SPARQL parse error: {}", self.msg),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError::at(e.pos, e.msg)
    }
}

/// Parse a SPARQL query against a dictionary (used to resolve constants;
/// never mutated — unknown terms become impossible OIDs).
pub fn parse_sparql(src: &str, dict: &Dictionary) -> Result<Query, ParseError> {
    let tokens = tokenize_spanned(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        dict,
        prefixes: FxHashMap::default(),
        query: Query::default(),
        path_seq: 0,
    };
    p.prefixes.insert(
        "xsd".to_string(),
        "http://www.w3.org/2001/XMLSchema#".to_string(),
    );
    p.prefixes.insert(
        "rdf".to_string(),
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#".to_string(),
    );
    p.parse_query()?;
    Ok(p.query)
}

struct Parser<'d> {
    /// `(token, starting byte offset)` — offsets anchor parse errors.
    tokens: Vec<(Token, usize)>,
    pos: usize,
    dict: &'d Dictionary,
    prefixes: FxHashMap<String, String>,
    query: Query,
    /// Fresh-variable counter for desugared property paths.
    path_seq: usize,
}

impl<'d> Parser<'d> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].0
    }

    /// Byte offset of the token `peek` would return.
    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: &str) -> Result<T, ParseError> {
        Err(ParseError::at(
            self.peek_pos(),
            format!("{msg} (at token {:?})", self.peek()),
        ))
    }

    fn is_word(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_word(&mut self, kw: &str) -> bool {
        if self.is_word(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_word(kw) {
            Ok(())
        } else {
            self.err(&format!("expected {kw}"))
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(&format!("expected {t:?}"))
        }
    }

    // ---- top level --------------------------------------------------------

    fn parse_query(&mut self) -> Result<(), ParseError> {
        while self.is_word("PREFIX") {
            self.bump();
            let Token::PName(prefix, local) = self.bump() else {
                return self.err("expected prefix name");
            };
            if !local.is_empty() {
                return self.err("prefix declaration must end with ':'");
            }
            let Token::IriRef(iri) = self.bump() else {
                return self.err("expected IRI in PREFIX");
            };
            self.prefixes.insert(prefix, iri);
        }
        self.expect_word("SELECT")?;
        if self.eat_word("DISTINCT") {
            self.query.distinct = true;
        }
        self.parse_select_list()?;
        if self.is_word("WHERE") {
            self.bump();
        }
        self.expect(Token::LBrace)?;
        self.parse_group_graph_pattern()?;
        self.parse_modifiers()?;
        if *self.peek() != Token::Eof {
            return self.err("trailing input");
        }
        Ok(())
    }

    fn parse_select_list(&mut self) -> Result<(), ParseError> {
        if *self.peek() == Token::Star {
            self.bump();
            return Ok(()); // empty select = all vars
        }
        loop {
            match self.peek().clone() {
                Token::Var(name) => {
                    self.bump();
                    let v = self.query.var(&name);
                    self.query.select.push(SelectItem::Var(v));
                }
                Token::LParen => {
                    self.bump();
                    let item = self.parse_projection_expr()?;
                    self.query.select.push(item);
                    self.expect(Token::RParen)?;
                }
                _ => break,
            }
        }
        if self.query.select.is_empty() {
            return self.err("empty SELECT list");
        }
        Ok(())
    }

    /// `(expr AS ?alias)` or `(AGG(expr) AS ?alias)`.
    fn parse_projection_expr(&mut self) -> Result<SelectItem, ParseError> {
        // Aggregate?
        if let Token::Word(w) = self.peek().clone() {
            if let Some(func) = agg_func(&w) {
                self.bump();
                self.expect(Token::LParen)?;
                let expr = if *self.peek() == Token::Star {
                    self.bump();
                    Expr::Num(1.0) // COUNT(*)
                } else {
                    self.parse_expr()?
                };
                self.expect(Token::RParen)?;
                self.expect_word("AS")?;
                let Token::Var(alias) = self.bump() else {
                    return self.err("expected alias variable");
                };
                return Ok(SelectItem::Agg {
                    func,
                    expr,
                    name: alias,
                });
            }
        }
        let expr = self.parse_expr()?;
        self.expect_word("AS")?;
        let Token::Var(alias) = self.bump() else {
            return self.err("expected alias variable");
        };
        Ok(SelectItem::Expr { expr, name: alias })
    }

    // ---- graph pattern -----------------------------------------------------

    fn parse_group_graph_pattern(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek().clone() {
                Token::RBrace => {
                    self.bump();
                    return Ok(());
                }
                Token::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    self.expect(Token::LParen)?;
                    let e = self.parse_expr()?;
                    self.expect(Token::RParen)?;
                    self.query.filters.push(e);
                    // optional '.' after FILTER
                    if *self.peek() == Token::Dot {
                        self.bump();
                    }
                }
                Token::Eof => return self.err("unterminated graph pattern"),
                _ => self.parse_triples_block()?,
            }
        }
    }

    /// subject (path object (, object)* (; path object...)*)? '.'
    fn parse_triples_block(&mut self) -> Result<(), ParseError> {
        let s = self.parse_var_or_term()?;
        loop {
            let path = self.parse_path()?;
            loop {
                let o = self.parse_var_or_term()?;
                self.push_path(s, &path, o);
                if *self.peek() == Token::Comma {
                    self.bump();
                    continue;
                }
                break;
            }
            if *self.peek() == Token::Semicolon {
                self.bump();
                // allow trailing ';' before '.'
                if *self.peek() == Token::Dot || *self.peek() == Token::RBrace {
                    break;
                }
                continue;
            }
            break;
        }
        if *self.peek() == Token::Dot {
            self.bump();
        }
        Ok(())
    }

    /// A property path: `p1/p2/.../pn` (sequence paths only — the shape
    /// chained-star analytics need). A one-element path is a plain
    /// predicate.
    fn parse_path(&mut self) -> Result<Vec<Oid>, ParseError> {
        let mut path = vec![self.parse_predicate()?];
        while *self.peek() == Token::Slash {
            self.bump();
            path.push(self.parse_predicate()?);
        }
        Ok(path)
    }

    /// Desugar `s p1/p2/.../pn o` into a chain of triple patterns through
    /// fresh intermediate variables: `s p1 ?__path0 . ?__path0 p2 ... o`.
    /// The fresh variables join consecutive stars, so a path query plans as
    /// a chained multi-star BGP.
    fn push_path(&mut self, s: VarOrOid, path: &[Oid], o: VarOrOid) {
        let mut subj = s;
        for (i, &p) in path.iter().enumerate() {
            let obj = if i + 1 == path.len() {
                o
            } else {
                VarOrOid::Var(self.fresh_path_var())
            };
            self.query
                .patterns
                .push(TriplePattern { s: subj, p, o: obj });
            subj = obj;
        }
    }

    /// A variable name no user variable can collide with (SPARQL variable
    /// names cannot start with `_` in this parser's lexer; the loop guards
    /// against pathological registries anyway).
    fn fresh_path_var(&mut self) -> sordf_engine::VarId {
        loop {
            let name = format!("__path{}", self.path_seq);
            self.path_seq += 1;
            if !self.query.vars.iter().any(|v| v == &name) {
                return self.query.var(&name);
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Oid, ParseError> {
        match self.peek().clone() {
            Token::Word(w) if w == "a" => {
                self.bump();
                Ok(self.resolve_iri(vocab::RDF_TYPE))
            }
            Token::IriRef(iri) => {
                self.bump();
                Ok(self.resolve_iri(&iri))
            }
            Token::PName(prefix, local) => {
                self.bump();
                let iri = self.expand_pname(&prefix, &local)?;
                Ok(self.resolve_iri(&iri))
            }
            _ => self.err("expected predicate IRI"),
        }
    }

    fn parse_var_or_term(&mut self) -> Result<VarOrOid, ParseError> {
        match self.peek().clone() {
            Token::Var(name) => {
                self.bump();
                Ok(VarOrOid::Var(self.query.var(&name)))
            }
            _ => {
                let oid = self.parse_const_term()?;
                Ok(VarOrOid::Const(oid))
            }
        }
    }

    /// Any constant RDF term: IRI, prefixed name, or literal.
    fn parse_const_term(&mut self) -> Result<Oid, ParseError> {
        let pos = self.peek_pos();
        match self.bump() {
            Token::IriRef(iri) => Ok(self.resolve_iri(&iri)),
            Token::PName(prefix, local) => {
                let iri = self.expand_pname(&prefix, &local)?;
                Ok(self.resolve_iri(&iri))
            }
            Token::Int(v) => Oid::from_int(v).map_err(|e| ParseError::at(pos, e.to_string())),
            Token::Dec(u) => {
                Oid::from_decimal_unscaled(u).map_err(|e| ParseError::at(pos, e.to_string()))
            }
            Token::Str(s, lang) => {
                if *self.peek() == Token::DtMarker {
                    self.bump();
                    let dt = match self.bump() {
                        Token::IriRef(iri) => iri,
                        Token::PName(prefix, local) => self.expand_pname(&prefix, &local)?,
                        _ => return self.err("expected datatype IRI"),
                    };
                    self.typed_literal(pos, &s, &dt)
                } else {
                    Ok(self.resolve_str(&s, lang.as_deref()))
                }
            }
            Token::Word(w) if w.eq_ignore_ascii_case("true") => Ok(Oid::from_bool(true)),
            Token::Word(w) if w.eq_ignore_ascii_case("false") => Ok(Oid::from_bool(false)),
            other => Err(ParseError::at(
                pos,
                format!("expected RDF term, found {other:?}"),
            )),
        }
    }

    fn typed_literal(&self, pos: usize, lexical: &str, datatype: &str) -> Result<Oid, ParseError> {
        let bad = |what: &str| ParseError::at(pos, format!("bad {what} literal: {lexical:?}"));
        let oid_err = |e: sordf_model::ModelError| ParseError::at(pos, e.to_string());
        match datatype {
            vocab::XSD_INTEGER | "http://www.w3.org/2001/XMLSchema#int" => {
                let v: i64 = lexical.parse().map_err(|_| bad("integer"))?;
                Oid::from_int(v).map_err(oid_err)
            }
            vocab::XSD_DECIMAL | vocab::XSD_DOUBLE => {
                let u = sordf_model::term::parse_decimal(lexical).ok_or(bad("decimal"))?;
                Oid::from_decimal_unscaled(u).map_err(oid_err)
            }
            vocab::XSD_DATE => {
                let d = sordf_model::date::parse_date(lexical).map_err(|_| bad("date"))?;
                Oid::from_date_days(d).map_err(oid_err)
            }
            vocab::XSD_DATETIME => {
                let t = sordf_model::date::parse_datetime(lexical).map_err(|_| bad("dateTime"))?;
                Oid::from_datetime_secs(t).map_err(oid_err)
            }
            vocab::XSD_BOOLEAN => match lexical {
                "true" | "1" => Ok(Oid::from_bool(true)),
                "false" | "0" => Ok(Oid::from_bool(false)),
                _ => Err(bad("boolean")),
            },
            _ => Ok(self.resolve_str(lexical, None)),
        }
    }

    fn expand_pname(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        let base = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| ParseError::new(format!("undeclared prefix '{prefix}:'")))?;
        Ok(format!("{base}{local}"))
    }

    /// IRIs unknown to the store become impossible OIDs (match nothing).
    fn resolve_iri(&self, iri: &str) -> Oid {
        self.dict.iri_oid(iri).unwrap_or(Oid::new(
            sordf_model::TypeTag::Iri,
            sordf_model::oid::PAYLOAD_MASK,
        ))
    }

    fn resolve_str(&self, s: &str, lang: Option<&str>) -> Oid {
        let value = Value::Str {
            lexical: s.to_string(),
            lang: lang.map(str::to_string),
        };
        self.dict
            .term_oid(&Term::literal(value))
            .unwrap_or(Oid::new(
                sordf_model::TypeTag::Str,
                sordf_model::oid::PAYLOAD_MASK,
            ))
    }

    // ---- expressions -------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while *self.peek() == Token::OrOr {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_rel()?;
        while *self.peek() == Token::AndAnd {
            self.bump();
            let right = self.parse_rel()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_rel(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_add()?;
        let op = match self.peek() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_add()?;
        Ok(Expr::cmp(left, op, right))
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Token::Plus => ArithOp::Add,
                Token::Minus => ArithOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_mul()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => ArithOp::Mul,
                Token::Slash => ArithOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Token::Minus => {
                self.bump();
                let inner = self.parse_unary()?;
                Ok(Expr::Arith(
                    Box::new(Expr::Num(0.0)),
                    ArithOp::Sub,
                    Box::new(inner),
                ))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Var(name) => {
                self.bump();
                Ok(Expr::Var(self.query.var(&name)))
            }
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Num(v as f64))
            }
            Token::Dec(u) => {
                self.bump();
                Ok(Expr::Num(u as f64 / sordf_model::oid::DECIMAL_ONE as f64))
            }
            _ => {
                let oid = self.parse_const_term()?;
                Ok(Expr::Const(oid))
            }
        }
    }

    // ---- modifiers ---------------------------------------------------------

    fn parse_modifiers(&mut self) -> Result<(), ParseError> {
        loop {
            if self.eat_word("GROUP") {
                self.expect_word("BY")?;
                while let Token::Var(name) = self.peek().clone() {
                    self.bump();
                    let v = self.query.var(&name);
                    self.query.group_by.push(v);
                }
            } else if self.eat_word("ORDER") {
                self.expect_word("BY")?;
                loop {
                    let (ascending, needs_paren) = if self.eat_word("DESC") {
                        (false, true)
                    } else if self.eat_word("ASC") {
                        (true, true)
                    } else {
                        (true, false)
                    };
                    if needs_paren {
                        self.expect(Token::LParen)?;
                    }
                    let Token::Var(name) = self.peek().clone() else {
                        if needs_paren {
                            return self.err("expected variable in ORDER BY");
                        }
                        break;
                    };
                    self.bump();
                    if needs_paren {
                        self.expect(Token::RParen)?;
                    }
                    let output = self.output_index_of(&name)?;
                    self.query.order_by.push(OrderKey { output, ascending });
                }
            } else if self.eat_word("LIMIT") {
                let Token::Int(n) = self.bump() else {
                    return self.err("expected LIMIT count");
                };
                self.query.limit = Some(n.max(0) as usize);
            } else if self.eat_word("OFFSET") {
                // parsed and ignored (documented subset limitation)
                let Token::Int(_) = self.bump() else {
                    return self.err("expected OFFSET count");
                };
            } else {
                return Ok(());
            }
        }
    }

    /// Resolve an ORDER BY variable to a SELECT output index (aliases and
    /// plain variables both work).
    fn output_index_of(&mut self, name: &str) -> Result<usize, ParseError> {
        // Alias?
        for (i, item) in self.query.select.iter().enumerate() {
            match item {
                SelectItem::Agg { name: n, .. } | SelectItem::Expr { name: n, .. } if n == name => {
                    return Ok(i)
                }
                SelectItem::Var(v) if self.query.vars[v.0 as usize] == name => return Ok(i),
                _ => {}
            }
        }
        // Implicit select list (SELECT *): index into pattern vars.
        if self.query.select.is_empty() {
            let v = self.query.var(name);
            if let Some(i) = self.query.pattern_vars().iter().position(|&x| x == v) {
                return Ok(i);
            }
        }
        Err(ParseError::new(format!(
            "ORDER BY variable ?{name} is not in the SELECT list"
        )))
    }
}

fn agg_func(word: &str) -> Option<AggFunc> {
    match word.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_with_iris(iris: &[&str]) -> Dictionary {
        let d = Dictionary::new();
        for i in iris {
            d.encode_iri(i);
        }
        d
    }

    #[test]
    fn parses_paper_intro_query() {
        // The motivating query from §I of the paper.
        let dict = dict_with_iris(&["has_author", "in_year", "isbn_no"]);
        let q = parse_sparql(
            r#"SELECT ?a ?n WHERE {
                ?b <has_author> ?a.
                ?b <in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer>.
                ?b <isbn_no> ?n }"#,
            &dict,
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.select.len(), 2);
        assert_eq!(
            q.patterns[1].o,
            VarOrOid::Const(Oid::from_int(1996).unwrap())
        );
        // All three patterns share subject ?b.
        assert!(q.patterns.iter().all(|p| p.s == q.patterns[0].s));
    }

    #[test]
    fn predicate_object_lists() {
        let dict = dict_with_iris(&["http://e/p", "http://e/q"]);
        let q = parse_sparql(
            "SELECT * WHERE { ?s <http://e/p> ?a , ?b ; <http://e/q> ?c . }",
            &dict,
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.patterns[0].p, q.patterns[1].p);
        assert_ne!(q.patterns[0].p, q.patterns[2].p);
    }

    #[test]
    fn prefixes_and_a() {
        let dict = Dictionary::new();
        dict.encode_iri(vocab::RDF_TYPE);
        dict.encode_iri("http://lod2.eu/schemas/rdfh#lineitem");
        let q = parse_sparql(
            "PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>\nSELECT ?s WHERE { ?s a rdfh:lineitem . }",
            &dict,
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.patterns[0].p, dict.iri_oid(vocab::RDF_TYPE).unwrap());
        assert_eq!(
            q.patterns[0].o,
            VarOrOid::Const(
                dict.iri_oid("http://lod2.eu/schemas/rdfh#lineitem")
                    .unwrap()
            )
        );
    }

    #[test]
    fn q6_shape() {
        let dict = dict_with_iris(&["http://e/shipdate", "http://e/price", "http://e/discount"]);
        let q = parse_sparql(
            r#"SELECT (SUM(?price * ?discount) AS ?revenue)
               WHERE {
                 ?l <http://e/shipdate> ?d .
                 ?l <http://e/price> ?price .
                 ?l <http://e/discount> ?discount .
                 FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "1995-01-01"^^xsd:date
                        && ?discount >= 0.05 && ?discount <= 0.07)
               }"#,
            &dict,
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.filters.len(), 1);
        assert!(matches!(
            q.select[0],
            SelectItem::Agg {
                func: AggFunc::Sum,
                ..
            }
        ));
    }

    #[test]
    fn group_order_limit() {
        let dict = dict_with_iris(&["http://e/p"]);
        let q = parse_sparql(
            r#"SELECT ?s (COUNT(*) AS ?n) WHERE { ?s <http://e/p> ?o . }
               GROUP BY ?s ORDER BY DESC(?n) ?s LIMIT 10"#,
            &dict,
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert_eq!(q.order_by[0].output, 1);
        assert!(q.order_by[1].ascending);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn unknown_iri_is_impossible_not_error() {
        let dict = Dictionary::new();
        let q = parse_sparql("SELECT ?s WHERE { ?s <http://nope/p> ?o . }", &dict).unwrap();
        // The predicate resolves to an impossible OID with the IRI tag.
        assert_eq!(q.patterns[0].p.tag(), sordf_model::TypeTag::Iri);
        assert_eq!(q.patterns[0].p.payload(), sordf_model::oid::PAYLOAD_MASK);
    }

    #[test]
    fn distinct_flag() {
        let dict = dict_with_iris(&["http://e/p"]);
        let q = parse_sparql("SELECT DISTINCT ?o WHERE { ?s <http://e/p> ?o . }", &dict).unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn rejects_garbage() {
        let dict = Dictionary::new();
        for bad in [
            "SELECT WHERE { }",
            "SELECT ?x { ?x }",
            "SELECT ?x WHERE { ?x <p> ?y . } ORDER BY ?zzz",
            "FOO ?x",
        ] {
            assert!(parse_sparql(bad, &dict).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn errors_carry_token_position() {
        let dict = Dictionary::new();
        let src = "SELECT ?s WHERE { ?s 42 ?o }";
        let e = parse_sparql(src, &dict).unwrap_err();
        // The bad predicate `42` starts at byte 21.
        assert_eq!(e.position(), Some(21));
        assert!(e.message().contains("expected predicate IRI"), "{e}");
    }

    #[test]
    fn render_caret_points_at_offending_token() {
        let dict = Dictionary::new();
        let src = "SELECT ?s WHERE {\n  ?s 42 ?o\n}";
        let e = parse_sparql(src, &dict).unwrap_err();
        let rendered = e.render_caret(src);
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].contains("line 2, column 6"), "{rendered}");
        assert_eq!(lines[1], "    ?s 42 ?o");
        assert_eq!(lines[2], "       ^");
        // No position (or a foreign source) degrades gracefully.
        assert!(ParseError::new("x").render_caret(src).contains("x"));
    }

    #[test]
    fn lex_errors_render_with_position() {
        let dict = Dictionary::new();
        let e = parse_sparql("SELECT @", &dict).unwrap_err();
        assert_eq!(e.position(), Some(7));
        assert!(e.render_caret("SELECT @").contains("^"));
    }

    #[test]
    fn sequence_path_desugars_to_chained_patterns() {
        let dict = dict_with_iris(&["http://e/p", "http://e/q", "http://e/r"]);
        let q = parse_sparql(
            "SELECT ?s ?o WHERE { ?s <http://e/p>/<http://e/q>/<http://e/r> ?o . }",
            &dict,
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3, "3-segment path -> 3 patterns");
        // Chain: s -p-> ?__path0 -q-> ?__path1 -r-> o.
        assert_eq!(q.patterns[0].o, q.patterns[1].s, "fresh var links 1->2");
        assert_eq!(q.patterns[1].o, q.patterns[2].s, "fresh var links 2->3");
        let end = q.patterns[2].o.as_var().unwrap();
        assert_eq!(q.vars[end.0 as usize], "o", "path ends at the object");
        let mid = q.patterns[0].o.as_var().unwrap();
        assert!(q.vars[mid.0 as usize].starts_with("__path"));
        // Fresh vars are internal: not in the SELECT list.
        assert_eq!(q.select.len(), 2);
    }

    #[test]
    fn path_mixes_with_predicate_object_lists() {
        let dict = dict_with_iris(&["http://e/p", "http://e/q", "http://e/x"]);
        let q = parse_sparql(
            "SELECT ?s WHERE { ?s <http://e/x> ?v ; <http://e/p>/<http://e/q> ?o . }",
            &dict,
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3);
        // The path tail shares the block's subject.
        assert_eq!(q.patterns[0].s, q.patterns[1].s);
    }

    #[test]
    fn negative_numbers_and_unary_minus() {
        let dict = dict_with_iris(&["http://e/p"]);
        let q = parse_sparql(
            "SELECT ?o WHERE { ?s <http://e/p> ?o . FILTER(?o > -5 && -?o < 2.5) }",
            &dict,
        )
        .unwrap();
        assert_eq!(q.filters.len(), 1);
    }
}
