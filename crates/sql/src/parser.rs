//! SQL parser + compiler onto the engine's query representation.

use crate::lexer::{tokenize, Tok};
use sordf_engine::expr::ArithOp;
use sordf_engine::query::OrderKey;
use sordf_engine::{AggFunc, CmpOp, Expr, Query, SelectItem, TriplePattern, VarOrOid};
use sordf_model::{Dictionary, FxHashMap, Oid, Term, Value};
use sordf_schema::{ClassId, EmergentSchema};
use sordf_storage::ClusteredStore;
use std::sync::Arc;

/// Compile a SQL query over the emergent schema into an engine query.
/// Requires a *dense* clustered store (table scans are restricted to class
/// segments via subject-OID ranges).
///
/// `routed` maps delta-new subjects (inserted since the last reorganization)
/// to the class the incremental assigner routed them to. Their OIDs lie
/// outside every class segment's dense range, so without it pending inserts
/// would be invisible to the SQL view until the next reorganization; each
/// table's segment restriction is widened to admit exactly its own routed
/// subjects.
pub fn compile_sql(
    sql: &str,
    schema: &EmergentSchema,
    store: &ClusteredStore,
    dict: &Dictionary,
    routed: &FxHashMap<Oid, ClassId>,
) -> Result<Query, String> {
    let tokens = tokenize(sql)?;
    let mut c = Compiler {
        tokens,
        pos: 0,
        schema,
        store,
        dict,
        routed,
        query: Query::default(),
        tables: Vec::new(),
        col_vars: FxHashMap::default(),
    };
    c.compile()?;
    Ok(c.query)
}

struct TableRef {
    alias: String,
    class: ClassId,
    subject_var: sordf_engine::VarId,
}

/// A resolved column reference.
#[derive(Clone, Copy)]
enum RefKind {
    Subject(usize),
    Column(usize, usize),
    Multi(usize, usize),
}

struct Compiler<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    schema: &'a EmergentSchema,
    store: &'a ClusteredStore,
    dict: &'a Dictionary,
    /// Delta-new subject → routed class (see [`compile_sql`]).
    routed: &'a FxHashMap<Oid, ClassId>,
    query: Query,
    tables: Vec<TableRef>,
    /// (table idx, predicate) -> bound object variable.
    col_vars: FxHashMap<(usize, Oid), sordf_engine::VarId>,
}

impl<'a> Compiler<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), String> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    // ---- top level ---------------------------------------------------------

    fn compile(&mut self) -> Result<(), String> {
        self.expect_kw("SELECT")?;
        if self.eat_kw("DISTINCT") {
            self.query.distinct = true;
        }
        // Defer select parsing until tables are known: remember token span.
        let select_start = self.pos;
        self.skip_until_kw("FROM")?;
        let select_end = self.pos;
        self.expect_kw("FROM")?;
        self.parse_table(false)?;
        while self.eat_kw("JOIN") {
            self.parse_table(true)?;
        }
        if self.eat_kw("WHERE") {
            let e = self.parse_expr()?;
            self.query.filters.push(e);
        }
        // Go back and parse the SELECT list now.
        let after_where = self.pos;
        self.pos = select_start;
        self.parse_select_list(select_end)?;
        self.pos = after_where;

        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                let r = self.parse_ref()?;
                let v = self.var_of(r);
                self.query.group_by.push(v);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let output = self.parse_order_target()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                self.query.order_by.push(OrderKey { output, ascending });
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            let Tok::Int(n) = self.bump() else {
                return Err("expected LIMIT count".into());
            };
            self.query.limit = Some(n.max(0) as usize);
        }
        if *self.peek() != Tok::Eof {
            return Err(format!("trailing input at {:?}", self.peek()));
        }
        self.add_segment_restrictions();
        Ok(())
    }

    fn skip_until_kw(&mut self, kw: &str) -> Result<(), String> {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Tok::Eof => return Err(format!("expected {kw}")),
                Tok::LParen => depth += 1,
                Tok::RParen => depth = depth.saturating_sub(1),
                Tok::Ident(w) if depth == 0 && w.eq_ignore_ascii_case(kw) => return Ok(()),
                _ => {}
            }
            self.pos += 1;
        }
    }

    // ---- tables ------------------------------------------------------------

    fn parse_table(&mut self, is_join: bool) -> Result<(), String> {
        let Tok::Ident(name) = self.bump() else {
            return Err("expected table name".into());
        };
        let class = self
            .schema
            .class_by_name(&name)
            .ok_or_else(|| format!("unknown table '{name}' (not in the emergent schema)"))?
            .id;
        // optional [AS] alias
        let mut alias = name.clone();
        if self.eat_kw("AS") {
            let Tok::Ident(a) = self.bump() else {
                return Err("expected alias".into());
            };
            alias = a;
        } else if let Tok::Ident(w) = self.peek().clone() {
            if !is_reserved(&w) {
                self.bump();
                alias = w;
            }
        }
        let subject_var = self.query.var(&alias);
        self.tables.push(TableRef {
            alias,
            class,
            subject_var,
        });
        if is_join {
            self.expect_kw("ON")?;
            let left = self.parse_ref()?;
            if self.bump() != Tok::Eq {
                return Err("JOIN supports only equality conditions".into());
            }
            let right = self.parse_ref()?;
            self.unify(left, right)?;
        }
        Ok(())
    }

    /// Unify a join condition.
    fn unify(&mut self, left: RefKind, right: RefKind) -> Result<(), String> {
        use RefKind::*;
        match (left, right) {
            // fk_col = other.subject (either direction): bind the column's
            // object variable *to* the other table's subject variable.
            (Column(t, c), Subject(o)) | (Subject(o), Column(t, c)) => {
                let pred = self.schema.class(self.tables[t].class).columns[c].pred;
                let subject = self.tables[o].subject_var;
                match self.col_vars.get(&(t, pred)) {
                    Some(&existing) => {
                        self.query.filters.push(Expr::cmp(
                            Expr::Var(existing),
                            CmpOp::Eq,
                            Expr::Var(subject),
                        ));
                    }
                    None => {
                        self.col_vars.insert((t, pred), subject);
                        let s = VarOrOid::Var(self.tables[t].subject_var);
                        self.query.patterns.push(TriplePattern {
                            s,
                            p: pred,
                            o: VarOrOid::Var(subject),
                        });
                    }
                }
                Ok(())
            }
            (a @ (Column(..) | Multi(..)), b @ (Column(..) | Multi(..))) => {
                let (va, vb) = (self.var_of(a), self.var_of(b));
                self.query
                    .filters
                    .push(Expr::cmp(Expr::Var(va), CmpOp::Eq, Expr::Var(vb)));
                Ok(())
            }
            (Subject(a), Subject(b)) => {
                let (va, vb) = (self.tables[a].subject_var, self.tables[b].subject_var);
                self.query
                    .filters
                    .push(Expr::cmp(Expr::Var(va), CmpOp::Eq, Expr::Var(vb)));
                Ok(())
            }
            (Multi(t, m), Subject(o)) | (Subject(o), Multi(t, m)) => {
                let pred = self.schema.class(self.tables[t].class).multi_props[m].pred;
                let subject = self.tables[o].subject_var;
                match self.col_vars.get(&(t, pred)) {
                    Some(&existing) => {
                        self.query.filters.push(Expr::cmp(
                            Expr::Var(existing),
                            CmpOp::Eq,
                            Expr::Var(subject),
                        ));
                    }
                    None => {
                        self.col_vars.insert((t, pred), subject);
                        let s = VarOrOid::Var(self.tables[t].subject_var);
                        self.query.patterns.push(TriplePattern {
                            s,
                            p: pred,
                            o: VarOrOid::Var(subject),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// Restrict every table's subject variable to its class segment's dense
    /// OID range, so same-named predicates of other classes cannot leak in.
    /// Subjects inserted since the last reorganization live *outside* every
    /// dense range; the ones routed to this table's class are admitted
    /// through an explicit membership disjunct so pending inserts stay
    /// visible to the SQL view.
    fn add_segment_restrictions(&mut self) {
        for t in &self.tables {
            let seg = self.store.segment(t.class);
            let mut extra: Vec<Oid> = self
                .routed
                .iter()
                .filter(|(_, &c)| c == t.class)
                .map(|(&s, _)| s)
                .collect();
            extra.sort_unstable();
            if let Some(range) = seg.dense_range() {
                if range.is_empty() && extra.is_empty() {
                    continue;
                }
                let lo = Oid::iri(range.start);
                let hi = Oid::iri(range.end.saturating_sub(1));
                let in_range = Expr::and(
                    Expr::cmp(Expr::Var(t.subject_var), CmpOp::Ge, Expr::Const(lo)),
                    Expr::cmp(Expr::Var(t.subject_var), CmpOp::Le, Expr::Const(hi)),
                );
                let filter = if extra.is_empty() {
                    in_range
                } else {
                    Expr::Or(
                        Box::new(in_range),
                        Box::new(Expr::InSet(
                            Box::new(Expr::Var(t.subject_var)),
                            Arc::new(extra),
                        )),
                    )
                };
                self.query.filters.push(filter);
            }
        }
    }

    // ---- references ---------------------------------------------------------

    fn parse_ref(&mut self) -> Result<RefKind, String> {
        match self.bump() {
            Tok::Qualified(table, col) => {
                let t = self
                    .tables
                    .iter()
                    .position(|x| x.alias.eq_ignore_ascii_case(&table))
                    .ok_or_else(|| format!("unknown table alias '{table}'"))?;
                self.resolve_in_table(t, &col)
            }
            Tok::Ident(col) => {
                // Unqualified: must be unique across tables.
                let mut found = None;
                for t in 0..self.tables.len() {
                    if let Ok(r) = self.resolve_in_table(t, &col) {
                        if found.is_some() {
                            return Err(format!("ambiguous column '{col}'"));
                        }
                        found = Some(r);
                    }
                }
                found.ok_or_else(|| format!("unknown column '{col}'"))
            }
            other => Err(format!("expected column reference, found {other:?}")),
        }
    }

    fn resolve_in_table(&self, t: usize, col: &str) -> Result<RefKind, String> {
        if col.eq_ignore_ascii_case("subject") {
            return Ok(RefKind::Subject(t));
        }
        let class = self.schema.class(self.tables[t].class);
        if let Some(ci) = class
            .columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(col))
        {
            return Ok(RefKind::Column(t, ci));
        }
        if let Some(mi) = class
            .multi_props
            .iter()
            .position(|m| m.name.eq_ignore_ascii_case(col))
        {
            return Ok(RefKind::Multi(t, mi));
        }
        Err(format!(
            "no column '{col}' in table '{}'",
            self.tables[t].alias
        ))
    }

    /// The engine variable bound to a reference, creating the pattern lazily.
    fn var_of(&mut self, r: RefKind) -> sordf_engine::VarId {
        match r {
            RefKind::Subject(t) => self.tables[t].subject_var,
            RefKind::Column(t, c) => {
                let pred = self.schema.class(self.tables[t].class).columns[c].pred;
                self.pattern_var(t, pred, c, false)
            }
            RefKind::Multi(t, m) => {
                let pred = self.schema.class(self.tables[t].class).multi_props[m].pred;
                self.pattern_var(t, pred, m, true)
            }
        }
    }

    fn pattern_var(&mut self, t: usize, pred: Oid, idx: usize, multi: bool) -> sordf_engine::VarId {
        if let Some(&v) = self.col_vars.get(&(t, pred)) {
            return v;
        }
        let class = self.schema.class(self.tables[t].class);
        let col_name = if multi {
            &class.multi_props[idx].name
        } else {
            &class.columns[idx].name
        };
        let v = self
            .query
            .var(&format!("{}__{}", self.tables[t].alias, col_name));
        self.col_vars.insert((t, pred), v);
        let s = VarOrOid::Var(self.tables[t].subject_var);
        self.query.patterns.push(TriplePattern {
            s,
            p: pred,
            o: VarOrOid::Var(v),
        });
        v
    }

    // ---- select list ---------------------------------------------------------

    fn parse_select_list(&mut self, end: usize) -> Result<(), String> {
        loop {
            if self.pos >= end {
                break;
            }
            let item = self.parse_select_item()?;
            self.query.select.push(item);
            if *self.peek() == Tok::Comma && self.pos < end {
                self.bump();
            } else {
                break;
            }
        }
        if self.query.select.is_empty() {
            return Err("empty SELECT list".into());
        }
        Ok(())
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, String> {
        // Aggregate?
        if let Tok::Ident(w) = self.peek().clone() {
            if let Some(func) = agg_func(&w) {
                if self.tokens.get(self.pos + 1) == Some(&Tok::LParen) {
                    self.bump();
                    self.bump();
                    let expr = if *self.peek() == Tok::Star {
                        self.bump();
                        Expr::Num(1.0)
                    } else {
                        self.parse_expr()?
                    };
                    if self.bump() != Tok::RParen {
                        return Err("expected ')'".into());
                    }
                    let name = self
                        .parse_alias()?
                        .unwrap_or_else(|| w.to_ascii_lowercase());
                    return Ok(SelectItem::Agg { func, expr, name });
                }
            }
        }
        let start_tok = self.peek().clone();
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        // Plain column ref with no alias: select the variable.
        if let (Expr::Var(v), None) = (&expr, &alias) {
            let _ = start_tok;
            return Ok(SelectItem::Var(*v));
        }
        let name = alias.unwrap_or_else(|| match &start_tok {
            Tok::Ident(n) => n.clone(),
            Tok::Qualified(a, n) => format!("{a}_{n}"),
            _ => "expr".to_string(),
        });
        Ok(SelectItem::Expr { expr, name })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, String> {
        if self.eat_kw("AS") {
            match self.bump() {
                Tok::Ident(a) => Ok(Some(a)),
                other => Err(format!("expected alias, found {other:?}")),
            }
        } else {
            Ok(None)
        }
    }

    fn parse_order_target(&mut self) -> Result<usize, String> {
        // By alias or by column ref appearing in the select list.
        let name = match self.peek().clone() {
            Tok::Ident(n) => n,
            Tok::Qualified(a, n) => format!("{a}_{n}"),
            other => return Err(format!("expected ORDER BY target, found {other:?}")),
        };
        // alias match first
        for (i, item) in self.query.select.iter().enumerate() {
            let matches = match item {
                SelectItem::Agg { name: n, .. } | SelectItem::Expr { name: n, .. } => {
                    n.eq_ignore_ascii_case(&name)
                }
                SelectItem::Var(v) => {
                    let vname = &self.query.vars[v.0 as usize];
                    vname.eq_ignore_ascii_case(&name)
                        || vname
                            .split("__")
                            .last()
                            .is_some_and(|c| c.eq_ignore_ascii_case(&name))
                }
            };
            if matches {
                self.bump();
                return Ok(i);
            }
        }
        Err(format!("ORDER BY target '{name}' not in SELECT list"))
    }

    // ---- expressions -----------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, String> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, String> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, String> {
        let mut left = self.parse_rel()?;
        while self.eat_kw("AND") {
            let right = self.parse_rel()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_rel(&mut self) -> Result<Expr, String> {
        let left = self.parse_add()?;
        // BETWEEN a AND b
        if self.eat_kw("BETWEEN") {
            let lo = self.parse_add()?;
            self.expect_kw("AND")?;
            let hi = self.parse_add()?;
            return Ok(Expr::and(
                Expr::cmp(left.clone(), CmpOp::Ge, lo),
                Expr::cmp(left, CmpOp::Le, hi),
            ));
        }
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_add()?;
        Ok(Expr::cmp(left, op, right))
    }

    fn parse_add(&mut self) -> Result<Expr, String> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => ArithOp::Add,
                Tok::Minus => ArithOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_mul()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, String> {
        let mut left = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => ArithOp::Mul,
                Tok::Slash => ArithOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_primary()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, String> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                if self.bump() != Tok::RParen {
                    return Err("expected ')'".into());
                }
                Ok(e)
            }
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Num(v as f64))
            }
            Tok::Dec(u) => {
                self.bump();
                Ok(Expr::Num(u as f64 / sordf_model::oid::DECIMAL_ONE as f64))
            }
            Tok::Str(s) => {
                self.bump();
                let oid = self
                    .dict
                    .term_oid(&Term::literal(Value::str(s)))
                    .unwrap_or(Oid::new(
                        sordf_model::TypeTag::Str,
                        sordf_model::oid::PAYLOAD_MASK,
                    ));
                Ok(Expr::Const(oid))
            }
            Tok::Ident(w) if w.eq_ignore_ascii_case("DATE") => {
                self.bump();
                let Tok::Str(s) = self.bump() else {
                    return Err("expected DATE 'x'".into());
                };
                let days =
                    sordf_model::date::parse_date(&s).map_err(|e| format!("bad date: {e}"))?;
                Ok(Expr::Const(
                    Oid::from_date_days(days).map_err(|e| e.to_string())?,
                ))
            }
            Tok::Ident(w) if w.eq_ignore_ascii_case("NOT") => {
                self.bump();
                Ok(Expr::Not(Box::new(self.parse_primary()?)))
            }
            Tok::Ident(_) | Tok::Qualified(_, _) => {
                let r = self.parse_ref()?;
                Ok(Expr::Var(self.var_of(r)))
            }
            other => Err(format!("unexpected token in expression: {other:?}")),
        }
    }
}

fn is_reserved(w: &str) -> bool {
    matches!(
        w.to_ascii_uppercase().as_str(),
        "SELECT"
            | "FROM"
            | "WHERE"
            | "JOIN"
            | "ON"
            | "GROUP"
            | "ORDER"
            | "BY"
            | "LIMIT"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "ASC"
            | "DESC"
            | "DISTINCT"
            | "BETWEEN"
    )
}

fn agg_func(word: &str) -> Option<AggFunc> {
    match word.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}
