//! # sordf-sql
//!
//! The SQL view over the emergent relational schema — the paper's promise
//! that "users will gain an SQL view of the regular part of the RDF data"
//! and can keep using the relational tool-chain.
//!
//! [`compile_sql`] translates a SQL subset into the same
//! [`sordf_engine::Query`] representation the SPARQL frontend produces:
//! each `FROM`/`JOIN` table becomes a star over that class's predicates, and
//! the table scan is restricted to the class's dense subject-OID segment (so
//! rows of other classes that happen to share predicate names can never
//! leak in). Joins on `fk_col = other.subject` unify the FK column's object
//! variable with the other table's subject variable — exactly a SPARQL
//! chain pattern, which the engine then runs through RDFscan/RDFjoin.
//!
//! Supported subset: `SELECT` items (column refs, arithmetic expressions,
//! `COUNT/SUM/AVG/MIN/MAX` aggregates with `AS` aliases), `FROM t [alias]`,
//! `JOIN t [alias] ON a.col = b.col|b.subject`, a conjunctive `WHERE` clause,
//! `GROUP BY`, `ORDER BY ... [ASC|DESC]`, `LIMIT`. Strings in single quotes;
//! `DATE 'YYYY-MM-DD'` literals.

mod lexer;
mod parser;

pub use parser::compile_sql;
