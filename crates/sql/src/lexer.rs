//! SQL tokenizer (small, case-insensitive keywords).

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (stored as written; compare case-insensitively).
    Ident(String),
    /// `ident.ident`
    Qualified(String, String),
    /// 'single quoted'
    Str(String),
    Int(i64),
    Dec(i64),
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

pub fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        match b[i] {
            c if c.is_ascii_whitespace() => i += 1,
            b'-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= b.len() {
                        return Err("unterminated string".into());
                    }
                    if b[j] == b'\'' {
                        // '' escape
                        if b.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(b[j] as char);
                    j += 1;
                }
                out.push(Tok::Str(s));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let u =
                        sordf_model::term::parse_decimal(&src[start..i]).ok_or("bad decimal")?;
                    out.push(Tok::Dec(u));
                } else {
                    out.push(Tok::Int(src[start..i].parse().map_err(|_| "bad integer")?));
                }
            }
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b'*' => {
                out.push(Tok::Star);
                i += 1;
            }
            b'+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            b'/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            b'=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let first = src[start..i].to_string();
                if i < b.len() && b[i] == b'.' {
                    let qstart = i + 1;
                    let mut j = qstart;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j > qstart {
                        out.push(Tok::Qualified(first, src[qstart..j].to_string()));
                        i = j;
                        continue;
                    }
                }
                out.push(Tok::Ident(first));
            }
            c => return Err(format!("unexpected character {:?}", c as char)),
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks =
            tokenize("SELECT l.qty, SUM(price) FROM lineitem l WHERE sold >= DATE '1996-01-01'")
                .unwrap();
        assert!(toks.contains(&Tok::Qualified("l".into(), "qty".into())));
        assert!(toks.contains(&Tok::Ident("SUM".into())));
        assert!(toks.contains(&Tok::Str("1996-01-01".into())));
        assert!(toks.contains(&Tok::Ge));
    }

    #[test]
    fn string_escapes_and_comments() {
        let toks = tokenize("SELECT 'it''s' -- comment\n, 1.5").unwrap();
        assert_eq!(toks[1], Tok::Str("it's".into()));
        assert_eq!(toks[3], Tok::Dec(15_000));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a <> b != c <= d").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Tok::Ne).count(), 2);
        assert!(toks.contains(&Tok::Le));
    }
}
