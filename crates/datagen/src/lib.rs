//! # sordf-datagen
//!
//! Synthetic RDF generators beyond RDF-H:
//!
//! * [`dblp_like`] — the DBLP-style example graph of the paper's Fig. 2
//!   (inproceedings / conferences / authors, with the figure's
//!   irregularities), used by the schema-exploration example and tests.
//! * [`DirtyConfig`] / [`dirty`] — a web-crawl-like generator with tunable
//!   irregularity: missing properties, extra noise properties, mixed object
//!   types and multi-values. The paper's §II-D promises "on dirty data …
//!   we expect the gain to be less, but still nonzero"; the dirty-sweep
//!   bench measures exactly that.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sordf_model::{Term, TermTriple};

/// Namespace for generated data.
pub const NS: &str = "http://example.org/";

fn iri(name: impl AsRef<str>) -> Term {
    Term::iri(format!("{NS}{}", name.as_ref()))
}

fn rdf_type() -> Term {
    Term::iri(sordf_model::vocab::RDF_TYPE)
}

/// The Fig. 2 graph: `n_papers` inproceedings spread over `n_confs`
/// conferences, with the paper's irregularities (a multi-valued creator, a
/// doubly-typed conference, a stray webpage).
pub fn dblp_like(n_papers: u64, n_confs: u64) -> Vec<TermTriple> {
    assert!(n_confs > 0);
    let mut t = Vec::new();
    let mut add = |s: Term, p: Term, o: Term| t.push(TermTriple::new(s, p, o));
    for i in 0..n_papers {
        let s = iri(format!("inproc{i}"));
        add(s.clone(), rdf_type(), iri("inproceeding"));
        add(s.clone(), iri("creator"), iri(format!("author{}", i % 7)));
        add(s.clone(), iri("title"), Term::str(format!("Paper {i}")));
        add(
            s.clone(),
            iri("partOf"),
            iri(format!("conf{}", i % n_confs)),
        );
    }
    // Fig. 2: inproc1 has creators {author3, author4}.
    if n_papers > 1 {
        add(iri("inproc1"), iri("creator"), iri("author4"));
    }
    for c in 0..n_confs {
        let s = iri(format!("conf{c}"));
        add(s.clone(), rdf_type(), iri("Conference"));
        add(s.clone(), iri("title"), Term::str(format!("conference{c}")));
        add(s.clone(), iri("issued"), Term::int(2010 + (c % 3) as i64));
    }
    // Fig. 2 irregularities: conf2 is *also* typed Proceedings and links to
    // a webpage; the webpage has ad-hoc structure.
    if n_confs > 2 {
        add(iri("conf2"), rdf_type(), iri("Proceedings"));
        add(iri("conf2"), iri("homepage"), iri("webpage1"));
        add(iri("webpage1"), iri("url"), Term::str("index.php"));
        add(iri("webpage1"), iri("content"), Term::str("content.php"));
    }
    t
}

/// Knobs of the dirty-data generator. `irregularity` in `[0, 1]` scales all
/// four noise kinds at once.
#[derive(Debug, Clone, Copy)]
pub struct DirtyConfig {
    /// Number of entity classes.
    pub n_classes: usize,
    /// Properties per class.
    pub props_per_class: usize,
    /// Subjects per class.
    pub subjects_per_class: u64,
    /// Probability a (subject, property) pair is missing.
    pub p_missing: f64,
    /// Probability a subject carries one extra random property.
    pub p_extra: f64,
    /// Probability a value has the wrong type.
    pub p_type_noise: f64,
    /// Probability a property carries a second value.
    pub p_multi: f64,
    pub seed: u64,
}

impl DirtyConfig {
    /// A config where all noise kinds scale with one knob.
    pub fn with_irregularity(irregularity: f64, subjects_per_class: u64) -> DirtyConfig {
        let x = irregularity.clamp(0.0, 1.0);
        DirtyConfig {
            n_classes: 8,
            props_per_class: 6,
            subjects_per_class,
            p_missing: 0.5 * x,
            p_extra: 0.6 * x,
            p_type_noise: 0.3 * x,
            p_multi: 0.3 * x,
            seed: 42,
        }
    }
}

/// Generate a web-crawl-like dataset with the configured irregularity.
pub fn dirty(cfg: &DirtyConfig) -> Vec<TermTriple> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Vec::new();
    for class in 0..cfg.n_classes {
        for subj in 0..cfg.subjects_per_class {
            let s = iri(format!("c{class}_e{subj}"));
            t.push(TermTriple::new(
                s.clone(),
                rdf_type(),
                iri(format!("Class{class}")),
            ));
            for prop in 0..cfg.props_per_class {
                if rng.random_bool(cfg.p_missing) {
                    continue;
                }
                let p = iri(format!("c{class}_p{prop}"));
                let o = dirty_value(&mut rng, class, prop, cfg.p_type_noise);
                t.push(TermTriple::new(s.clone(), p.clone(), o));
                if rng.random_bool(cfg.p_multi) {
                    let o2 = dirty_value(&mut rng, class, prop, cfg.p_type_noise);
                    t.push(TermTriple::new(s.clone(), p, o2));
                }
            }
            if rng.random_bool(cfg.p_extra) {
                let p = iri(format!("noise_p{}", rng.random_range(0..1000)));
                t.push(TermTriple::new(
                    s.clone(),
                    p,
                    Term::int(rng.random_range(0..100)),
                ));
            }
        }
    }
    t
}

/// The "clean" type for (class, prop) rotates through int/str/date/decimal;
/// with probability `p_noise` a value of a different type is produced.
fn dirty_value(rng: &mut StdRng, class: usize, prop: usize, p_noise: f64) -> Term {
    let kind = if rng.random_bool(p_noise) {
        (class + prop + 1) % 4 // deliberately wrong type
    } else {
        (class + prop) % 4
    };
    match kind {
        0 => Term::int(rng.random_range(0..10_000)),
        1 => Term::str(format!("v{}", rng.random_range(0..10_000))),
        2 => Term::literal(sordf_model::Value::Date(
            9_000 + rng.random_range(0..2_000i64),
        )),
        _ => Term::decimal_f64(rng.random_range(0.0..100.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_matches_fig2_shape() {
        let t = dblp_like(12, 3);
        // inproc1 has two creators.
        let creators = t
            .iter()
            .filter(|x| x.s == iri("inproc1") && x.p == iri("creator"))
            .count();
        assert_eq!(creators, 2);
        // conf2 carries two types.
        let types = t
            .iter()
            .filter(|x| x.s == iri("conf2") && x.p == rdf_type())
            .count();
        assert_eq!(types, 2);
        // webpage exists.
        assert!(t.iter().any(|x| x.s == iri("webpage1")));
    }

    #[test]
    fn dirty_is_deterministic_and_scales_noise() {
        let clean = dirty(&DirtyConfig::with_irregularity(0.0, 50));
        let clean2 = dirty(&DirtyConfig::with_irregularity(0.0, 50));
        assert_eq!(clean, clean2);
        // With zero irregularity every subject has all props exactly once.
        let expected = 8 * 50 * (6 + 1);
        assert_eq!(clean.len(), expected);
        let noisy = dirty(&DirtyConfig::with_irregularity(0.8, 50));
        assert_ne!(clean.len(), noisy.len());
    }

    #[test]
    fn zero_noise_discovers_exactly_n_classes() {
        let triples = dirty(&DirtyConfig::with_irregularity(0.0, 30));
        let mut ts = sordf_storage::TripleSet::new();
        ts.extend_terms(&triples).unwrap();
        let spo = ts.sorted_spo();
        let schema = sordf_schema::discover(&spo, &ts.dict, &sordf_schema::SchemaConfig::default());
        assert_eq!(schema.classes.len(), 8);
        assert!(schema.coverage > 0.999);
    }
}
