//! Self-tests for `sordf_lint`: every rule fires on its known-bad fixture
//! at the expected line, the clean fixture produces nothing, and — the CI
//! gate in test form — the real tree lints clean.
//!
//! Fixtures live in `tests/fixtures/` and are deliberately excluded from
//! `--workspace` scans by [`sordf_lint::classify`]; the tests force the
//! full scope instead so each file is checked under every rule.

use sordf_lint::{classify, lint_sources, lint_workspace, workspace_root, Diagnostic, Scope};

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join(name)).expect("read fixture");
    lint_sources(
        &[(format!("crates/lint/tests/fixtures/{name}"), src)],
        Some(Scope::all()),
    )
}

/// Lines at which `rule` fired, in file order.
fn lines(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    let mut v: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn l1_flags_live_dict_next_to_pinned_query_and_pin_across_write() {
    let diags = lint_fixture("bad_l1.rs");
    assert_eq!(lines(&diags, "L1"), vec![9, 15], "{diags:#?}");
    assert_eq!(diags.len(), 2, "only L1 should fire: {diags:#?}");
}

#[test]
fn l2_flags_undeclared_acquisition_and_rank_inversion() {
    let diags = lint_fixture("bad_l2.rs");
    assert_eq!(lines(&diags, "L2"), vec![9, 14], "{diags:#?}");
    assert_eq!(diags.len(), 2, "only L2 should fire: {diags:#?}");
    // The two failure modes are distinct: one missing annotation, one
    // hierarchy inversion reported at the offending caller's signature.
    let msgs: Vec<&str> = diags.iter().map(|d| d.msg.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("no `// lock-order:")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("lower-ranked")), "{msgs:?}");
}

#[test]
fn l3_flags_unwrap_and_panic_outside_tests_only() {
    let diags = lint_fixture("bad_l3.rs");
    assert_eq!(lines(&diags, "L3"), vec![4, 6], "{diags:#?}");
    assert_eq!(diags.len(), 2, "test regions must be exempt: {diags:#?}");
}

#[test]
fn l4_flags_std_sync_primitives_in_both_use_forms() {
    let diags = lint_fixture("bad_l4.rs");
    assert_eq!(lines(&diags, "L4"), vec![4, 5], "{diags:#?}");
    assert_eq!(diags.len(), 2, "`Arc` is not banned: {diags:#?}");
}

#[test]
fn l5_flags_guard_struct_without_must_use() {
    let diags = lint_fixture("bad_l5.rs");
    assert_eq!(lines(&diags, "L5"), vec![4], "{diags:#?}");
    assert_eq!(diags.len(), 1, "annotated pin type is clean: {diags:#?}");
}

#[test]
fn l6_flags_unjustified_ordering_only() {
    let diags = lint_fixture("bad_l6.rs");
    assert_eq!(lines(&diags, "L6"), vec![7], "{diags:#?}");
    assert_eq!(diags.len(), 1, "justified load is clean: {diags:#?}");
}

#[test]
fn l7_flags_discarded_write_path_io_results() {
    let diags = lint_fixture("bad_l7.rs");
    assert_eq!(lines(&diags, "L7"), vec![8, 12], "{diags:#?}");
    assert_eq!(
        diags.len(),
        2,
        "propagating / allowed / test code is clean: {diags:#?}"
    );
}

#[test]
fn l8_flags_raw_page_layout_access() {
    let diags = lint_fixture("bad_l8.rs");
    assert_eq!(lines(&diags, "L8"), vec![4, 8], "{diags:#?}");
    assert_eq!(
        diags.len(),
        2,
        "the accessor-based read is clean: {diags:#?}"
    );
}

#[test]
fn l9_flags_blocking_socket_io_under_state_lock() {
    let diags = lint_fixture("bad_l9.rs");
    assert_eq!(lines(&diags, "L9"), vec![11, 12], "{diags:#?}");
    assert_eq!(
        diags.len(),
        2,
        "the allowed and lock-free handlers are clean: {diags:#?}"
    );
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let diags = lint_fixture("clean.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn diagnostics_render_as_rule_file_line() {
    let diags = lint_fixture("bad_l5.rs");
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("L5 crates/lint/tests/fixtures/bad_l5.rs:4:"),
        "{rendered}"
    );
}

#[test]
fn classify_scopes_rules_by_tree_location() {
    // Vendored code and lint fixtures are never scanned.
    assert!(classify("vendor/parking_lot/src/lib.rs").is_none());
    assert!(classify("crates/lint/tests/fixtures/bad_l1.rs").is_none());
    // Concurrency-critical crates get the full rule set.
    let core = classify("crates/core/src/lib.rs").expect("core is in scope");
    assert!(core.l1 && core.l2 && core.l3 && core.l4 && core.l5 && core.l6);
    assert!(!core.l7, "L7 is reserved for the durable write-path files");
    let wal = classify("crates/storage/src/wal.rs").expect("wal is in scope");
    assert!(wal.l7 && wal.l2 && wal.l3);
    // The HTTP front end holds requests, locks, and sockets in one place:
    // it gets the lock-graph, panic-path, and blocking-I/O rules.
    let server = classify("crates/server/src/lib.rs").expect("server is in scope");
    assert!(server.l2 && server.l3 && server.l9);
    assert!(!classify("crates/bench/src/bin/bench_server.rs").unwrap().l9);
    // Bench binaries keep the API-hygiene rules but not the panic/lock-graph
    // rules reserved for the concurrent store itself.
    let bench = classify("crates/bench/src/bin/bench_parallel.rs").expect("bench is in scope");
    assert!(bench.l1 && bench.l4 && bench.l5 && bench.l6);
    assert!(!bench.l2 && !bench.l3);
    // Page-layout confinement holds everywhere except the codec itself, the
    // chunk/accessor layer, and the codec's own property test.
    assert!(core.l8 && bench.l8);
    assert!(!classify("crates/columnar/src/compress.rs").unwrap().l8);
    assert!(!classify("crates/columnar/src/column.rs").unwrap().l8);
    assert!(
        !classify("crates/columnar/tests/compress_prop.rs")
            .unwrap()
            .l8
    );
    assert!(classify("crates/columnar/src/disk.rs").unwrap().l8);
}

/// The CI gate, in test form: the real tree must lint clean. Any diagnostic
/// here means a rule regression or an unannotated new acquisition/panic.
#[test]
fn workspace_lints_clean() {
    let diags = lint_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
