//! L1 fixture: pin-discipline violations.
//!
//! `mixes_pinned_and_live` takes the live dictionary while decoding a
//! pinned result; `pin_across_write` holds a dictionary pin across a
//! write entry point.

fn mixes_pinned_and_live(db: &Database, snap: Snapshot) -> usize {
    let rows = db.query_pinned("SELECT ?s WHERE { ?s ?p ?o }", snap);
    let live = db.dict();
    live.n_strings() + rows.len()
}

fn pin_across_write(db: &Database) {
    let pin = db.dict();
    db.insert_terms(&[("iri", "a")]);
    drop(pin);
}
