//! L6 fixture: an atomic ordering without a justification comment; the
//! second function carries one and is clean.

use std::sync::atomic::{AtomicU64, Ordering};

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn justified_load(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed — monotone counter, no data published through it.
    counter.load(Ordering::Relaxed)
}
