//! Clean fixture: ranked locking, guards, atomics and fallible code all
//! follow the repo rules — must produce zero diagnostics under every rule.

use std::sync::atomic::{AtomicU64, Ordering};

struct Store;

// lock-order: acquires(db_state)
fn declared_acquire(s: &Store) -> u64 {
    let _g = s.state.lock();
    // ordering: Relaxed — diagnostic counter, no publication through it.
    s.hits.fetch_add(1, Ordering::Relaxed)
}

#[must_use]
pub struct FrameGuard {
    page: u32,
}

fn suppressed(x: Option<u32>) -> u32 {
    // sordf-lint: allow(L3) — fixture: presence guaranteed by construction.
    x.unwrap()
}
