//! L8: raw page-layout access outside `compress.rs`/`column.rs`.

fn peek_header(page: &PageGuard) -> u64 {
    page.data[0]
}

fn decode_one(words: &[u64], base: u64, width: u8) -> u64 {
    for_get(words, base, width, 0)
}

fn ok_via_accessor(col: &Column, row: usize) -> u64 {
    // Reading through the column accessor keeps the page format opaque.
    col.value(row)
}
