//! L4 fixture: banned `std::sync` primitives (the vendored `parking_lot`
//! shim is the only sanctioned lock provider).

use std::sync::Mutex;
use std::sync::{Arc, RwLock};

fn shared_counter() -> Arc<Mutex<u32>> {
    Arc::new(Mutex::new(0))
}
