//! L3 fixture: panic paths in non-test code; test regions are exempt.

fn panics_on_none(x: Option<u32>) -> u32 {
    let v = x.unwrap();
    if v > 3 {
        panic!("boom");
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
