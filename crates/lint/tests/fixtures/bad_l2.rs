//! L2 fixture: lock-order violations — an undeclared ranked acquisition,
//! and a declared function that can reach a lower-ranked acquisition
//! through the call graph.

struct Store;

impl Store {
    fn undeclared_acquire(&self) {
        let _g = self.state.lock();
    }
}

// lock-order: acquires(dict)
fn holds_dict_then_descends(s: &Store) {
    let _d = s.dict.read();
    reenter_db_state(s);
}

// lock-order: acquires(db_state)
fn reenter_db_state(s: &Store) {
    let _g = s.state.lock();
}
