//! L9 fixture: blocking socket I/O while the db state lock is held (or
//! declared held) — the wire I/O must happen outside the lock. An allow
//! with a reason suppresses; a state-free handler is clean.

struct Gateway;

impl Gateway {
    // lock-order: acquires(db_state)
    fn serve_under_lock(&self) {
        let _st = self.state.lock();
        let (mut s, _) = self.listener.accept().map_err(drop);
        write_response(&mut s, &resp).map_err(drop);
    }

    // lock-order: acquires(db_state)
    fn allowed(&self) {
        let _st = self.state.lock();
        // sordf-lint: allow(L9) — status snapshot writes < 1 KiB to a pipe.
        write_response(&mut self.pipe, &resp).map_err(drop);
    }

    fn lock_free_handler(&self) {
        let (mut s, _) = self.listener.accept().map_err(drop);
        write_response(&mut s, &resp).map_err(drop);
    }
}
