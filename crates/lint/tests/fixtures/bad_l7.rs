//! L7 fixture: discarded write-path I/O results; the propagating function,
//! the reasoned allow, and test regions are clean.

use std::fs::{self, File};
use std::io::{self, Write};

fn discards_sync(f: &mut File) {
    let _ = f.sync_all();
}

fn swallows_rename(a: &std::path::Path, b: &std::path::Path) {
    fs::rename(a, b).ok();
}

fn propagates(f: &mut File, buf: &[u8]) -> io::Result<()> {
    f.write_all(buf)?;
    f.sync_data()
}

fn allowed_cleanup(p: &std::path::Path) {
    // sordf-lint: allow(L7) — best-effort cleanup, no caller to notify.
    let _ = fs::remove_file(p);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let _ = std::fs::remove_file("scratch");
    }
}
