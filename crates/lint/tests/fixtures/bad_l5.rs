//! L5 fixture: a guard type without `#[must_use]`; an annotated pin type
//! is clean.

pub struct ScanGuard {
    page: u32,
}

#[must_use]
pub struct HeldPin {
    slot: u32,
}
