//! `sordf_lint` — repo-specific static analysis for the sordf workspace.
//!
//! A dependency-free source analyzer (hand-rolled lexer + lightweight
//! item/expression scanner, no `syn`) enforcing the concurrency and
//! robustness invariants the engine's correctness rests on. Rules have
//! stable IDs, every diagnostic carries `file:line`, and any finding can be
//! waived inline with
//!
//! ```text
//! // sordf-lint: allow(L3) — reason the violation is intentional
//! ```
//!
//! on the offending line or the line directly above (a reason is
//! mandatory; a bare allow is itself reported as `L0`).
//!
//! # Rule catalog
//!
//! | id | check |
//! |----|-------|
//! | L0 | malformed allow / lock-order directives |
//! | L1 | pin discipline: no `.dict()` in a function that used `query_pinned`; no `DictPin` binding held across a write call |
//! | L2 | lock order: every function acquiring a ranked lock declares it via `// lock-order: acquires(...)`; declared levels must be non-decreasing along the call graph (`db_state → dict → pool_shard → disk_write`) |
//! | L3 | panic paths: no `unwrap`/`expect`/`panic!`/`unimplemented!`/`todo!` in non-test engine/storage/columnar/core code |
//! | L4 | std-sync ban: `std::sync::{Mutex, RwLock, Condvar, ...}` are forbidden — use the vendored `parking_lot` shim |
//! | L5 | guard hygiene: structs named `*Guard`/`*Pin`/`*Handle` (and the known handle types) must be `#[must_use]` |
//! | L6 | atomic-ordering audit: every `Ordering::Relaxed`/`Acquire`/… needs an `// ordering:` justification comment in its function |
//! | L7 | durable-write discipline: in the WAL/manifest/page-file write paths an I/O `Result` must not be silently discarded (`let _ = …` or a trailing `.ok();`) |
//! | L8 | page-layout confinement: raw page-word access (`.data[..]` indexing, `for_get`/`for_decode_range`/`for_partition_point`/`compress::choose` calls) is an error outside `compress.rs`/`column.rs` — everything else reads through `Chunk` and the column accessors |
//! | L9 | no blocking I/O under the state lock: a function that declares or performs a `db_state` acquisition must not call the blocking socket primitives (`read_request`/`write_response`/`accept`/`TcpStream::connect`) — one slow peer would stall every writer |

pub mod lexer;

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

use lexer::{lex, Comment, Lexed, Tok, Token};

/// The ranked lock hierarchy, outermost first. An acquisition at level *n*
/// while holding level *m ≥ n* (per the static call-graph approximation)
/// is a violation; the runtime detector in the `parking_lot` shim enforces
/// the same order per lock instance.
pub const LOCK_LEVELS: [&str; 4] = ["db_state", "dict", "pool_shard", "disk_write"];

/// One finding. Ordered by file, then line, then rule for stable output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}:{}: {}", self.rule, self.file, self.line, self.msg)
    }
}

/// Which rules apply to a file (derived from its path, or forced for
/// fixture runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    pub l1: bool,
    pub l2: bool,
    pub l3: bool,
    pub l4: bool,
    pub l5: bool,
    pub l6: bool,
    pub l7: bool,
    pub l8: bool,
    pub l9: bool,
}

impl Scope {
    pub fn all() -> Scope {
        Scope {
            l1: true,
            l2: true,
            l3: true,
            l4: true,
            l5: true,
            l6: true,
            l7: true,
            l8: true,
            l9: true,
        }
    }
}

/// Classify a workspace-relative path. `None` means the file is out of
/// scope entirely (vendored shims, lint fixtures).
pub fn classify(rel: &str) -> Option<Scope> {
    let rel = rel.replace('\\', "/");
    if rel.starts_with("vendor/") || rel.contains("/fixtures/") {
        return None;
    }
    let mut s = Scope {
        // Pin discipline and the std-sync ban hold everywhere, including
        // integration tests and benches — tests are the main *users* of
        // `query_pinned`. Page-layout confinement likewise applies anywhere
        // a pinned page buffer could leak.
        l1: true,
        l4: true,
        l8: true,
        ..Scope::default()
    };
    let in_crate_src = rel.starts_with("crates/") && rel.contains("/src/");
    if in_crate_src || rel == "src/lib.rs" {
        s.l5 = true;
        s.l6 = true;
    }
    for c in ["core", "storage", "columnar", "engine", "server"] {
        if rel.starts_with(&format!("crates/{c}/src/")) {
            s.l2 = true;
            s.l3 = true;
            s.l9 = true;
        }
    }
    // The durable write paths additionally get the discarded-io::Result
    // rule: an error swallowed there silently forfeits the crash guarantee.
    if matches!(
        rel.as_str(),
        "crates/storage/src/wal.rs"
            | "crates/storage/src/manifest.rs"
            | "crates/columnar/src/disk.rs"
    ) {
        s.l7 = true;
    }
    // The FOR page format may be known only to the codec, the chunk/accessor
    // layer built directly on it, and the codec's own property test; every
    // other file must stay behind the column accessors (L8).
    if matches!(
        rel.as_str(),
        "crates/columnar/src/compress.rs"
            | "crates/columnar/src/column.rs"
            | "crates/columnar/tests/compress_prop.rs"
    ) {
        s.l8 = false;
    }
    Some(s)
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const BANNED_STD_SYNC: [&str; 7] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];
/// `Database` write entry points a held `DictPin` must not straddle: even
/// though copy-on-write interning keeps them deadlock-free, a pin held
/// across them forces a full dictionary clone per batch.
const WRITE_METHODS: [&str; 9] = [
    "insert_terms",
    "insert_ntriples",
    "load_terms",
    "load_ntriples",
    "delete_triples",
    "delete_matching",
    "self_organize",
    "self_organize_with",
    "reorganize_now",
];
/// Guard-suffix rule plus known handle types that don't follow the naming
/// scheme.
const MUST_USE_SUFFIXES: [&str; 3] = ["Guard", "Pin", "Handle"];
const MUST_USE_EXTRA: [&str; 2] = ["BackgroundReorg", "Snapshot"];
/// Method names too generic to resolve by bare name in the call graph
/// (qualified `Type::name` calls still resolve).
const GENERIC_METHODS: [&str; 23] = [
    "read", "write", "open", "lock", "get", "new", "len", "insert", "remove", "push", "next",
    "iter", "clone", "drop", "fmt", "eq", "cmp", "hash", "default", "from", "into", "as_ref",
    "index",
];
const KEYWORDS: [&str; 28] = [
    "if", "while", "match", "for", "loop", "return", "move", "in", "as", "let", "else", "ref",
    "mut", "box", "unsafe", "dyn", "where", "fn", "impl", "use", "pub", "mod", "const", "static",
    "type", "struct", "enum", "trait",
];

#[derive(Debug)]
struct Allow {
    rules: Vec<String>,
    line: u32,
}

#[derive(Debug)]
struct FnInfo {
    file: usize,
    name: String,
    qual: Option<String>,
    sig_line: u32,
    body: Range<usize>,
    is_test: bool,
    calls: Vec<String>,
    /// (level index, line) of each ranked acquisition in the body.
    acquired: Vec<(usize, u32)>,
    declared: Option<Vec<usize>>,
}

struct FileData {
    path: String,
    scope: Scope,
    lexed: Lexed,
    allows: Vec<Allow>,
    test_regions: Vec<Range<usize>>,
}

/// Analyze a set of `(workspace-relative path, source)` pairs and return
/// every diagnostic, sorted. `force_scope` overrides path classification
/// (used by the fixture tests).
pub fn lint_sources(files: &[(String, String)], force_scope: Option<Scope>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut data = Vec::new();
    for (path, src) in files {
        let scope = match force_scope.or_else(|| classify(path)) {
            Some(s) => s,
            None => continue,
        };
        let lexed = lex(src);
        let allows = parse_allows(&lexed.comments, path, &mut diags);
        let test_regions = test_regions(&lexed.tokens);
        data.push(FileData {
            path: path.clone(),
            scope,
            lexed,
            allows,
            test_regions,
        });
    }

    let mut fns: Vec<FnInfo> = Vec::new();
    for (fi, fd) in data.iter().enumerate() {
        let mut file_fns = scan_fns(fi, &fd.lexed.tokens, &fd.test_regions);
        for f in &mut file_fns {
            attach_lock_order_annotation(f, fd, &mut diags);
        }
        fns.extend(file_fns);
    }

    for (fi, fd) in data.iter().enumerate() {
        check_l3(fd, &mut diags);
        check_l4(fd, &mut diags);
        check_l5(fd, &mut diags);
        check_l6(fi, fd, &fns, &mut diags);
        check_l7(fd, &mut diags);
        check_l8(fd, &mut diags);
    }
    check_l1(&data, &fns, &mut diags);
    check_l2(&data, &fns, &mut diags);
    check_l9(&data, &fns, &mut diags);

    // Apply allows last so every rule shares the same suppression logic.
    diags.retain(|d| {
        let Some(fd) = data.iter().find(|fd| fd.path == d.file) else {
            return true;
        };
        if d.rule == "L0" {
            return true;
        }
        !fd.allows.iter().any(|a| {
            a.rules.iter().any(|r| r == d.rule) && (d.line == a.line || d.line == a.line + 1)
        })
    });
    diags.sort();
    diags.dedup();
    diags
}

// ---------------------------------------------------------------------------
// directives
// ---------------------------------------------------------------------------

fn parse_allows(comments: &[Comment], path: &str, diags: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (ci, c) in comments.iter().enumerate() {
        let Some(pos) = c.text.find("sordf-lint:") else {
            continue;
        };
        let rest = c.text[pos + "sordf-lint:".len()..].trim_start();
        let malformed = |diags: &mut Vec<Diagnostic>, why: &str| {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: c.line,
                rule: "L0",
                msg: format!("malformed sordf-lint directive: {why}"),
            });
        };
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            malformed(diags, "expected `allow(<rules>) — <reason>`");
            continue;
        };
        let (rule_list, after) = inner;
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let valid = !rules.is_empty()
            && rules.iter().all(|r| {
                matches!(
                    r.as_str(),
                    "L1" | "L2" | "L3" | "L4" | "L5" | "L6" | "L7" | "L8" | "L9"
                )
            });
        if !valid {
            malformed(diags, "unknown rule id (expected L1..L9)");
            continue;
        }
        let reason = after
            .trim_start()
            .trim_start_matches(['—', '-', ':'])
            .trim();
        if reason.is_empty() {
            malformed(diags, "an allow requires a reason after the rule list");
            continue;
        }
        // A directive anywhere in a contiguous run of `//` comment lines
        // covers the code the whole block annotates: anchor the allow to the
        // block's last line, so multi-line reasons still reach the code
        // directly below.
        let mut last = c.line;
        for next in &comments[ci + 1..] {
            if next.line == last + 1 {
                last = next.line;
            } else {
                break;
            }
        }
        allows.push(Allow { rules, line: last });
    }
    allows
}

fn attach_lock_order_annotation(f: &mut FnInfo, fd: &FileData, diags: &mut Vec<Diagnostic>) {
    // The annotation lives in a comment directly above the function (doc
    // comments and attributes may sit between, but not another item: a `}`
    // or `;` between comment and signature means the comment annotates the
    // *previous* item, not this one).
    let lo = f.sig_line.saturating_sub(12);
    for c in &fd.lexed.comments {
        if c.line < lo || c.line > f.sig_line {
            continue;
        }
        let crosses_item = fd.lexed.tokens.iter().any(|t| {
            t.line > c.line
                && t.line < f.sig_line
                && matches!(t.tok, Tok::Punct('}') | Tok::Punct(';'))
        });
        if crosses_item {
            continue;
        }
        let Some(pos) = c.text.find("lock-order:") else {
            continue;
        };
        let rest = c.text[pos + "lock-order:".len()..].trim_start();
        let Some((list, _)) = rest
            .strip_prefix("acquires(")
            .and_then(|r| r.split_once(')'))
        else {
            diags.push(Diagnostic {
                file: fd.path.clone(),
                line: c.line,
                rule: "L0",
                msg: "malformed lock-order directive: expected `lock-order: acquires(<levels>)`"
                    .to_string(),
            });
            continue;
        };
        let mut levels = Vec::new();
        let mut ok = true;
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match LOCK_LEVELS.iter().position(|l| *l == name) {
                Some(i) => levels.push(i),
                None => {
                    ok = false;
                    diags.push(Diagnostic {
                        file: fd.path.clone(),
                        line: c.line,
                        rule: "L0",
                        msg: format!(
                            "unknown lock level `{name}` (expected one of {})",
                            LOCK_LEVELS.join(", ")
                        ),
                    });
                }
            }
        }
        if ok {
            f.declared = Some(levels);
        }
    }
}

// ---------------------------------------------------------------------------
// structural scanning
// ---------------------------------------------------------------------------

/// Token-index ranges covered by `#[test]` functions or `#[cfg(test)]`
/// items (the whole `mod tests { ... }` body).
fn test_regions(toks: &[Token]) -> Vec<Range<usize>> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    let mut pending_test = false;
    while i < toks.len() {
        if toks[i].tok == Tok::Punct('#') {
            let mut j = i + 1;
            if j < toks.len() && toks[j].tok == Tok::Punct('!') {
                j += 1;
            }
            if j < toks.len() && toks[j].tok == Tok::Punct('[') {
                let close = match matching(toks, j, '[', ']') {
                    Some(c) => c,
                    None => break,
                };
                let mut has_test = false;
                let mut has_not = false;
                for t in &toks[j + 1..close] {
                    if let Tok::Ident(id) = &t.tok {
                        if id == "test" {
                            has_test = true;
                        }
                        if id == "not" {
                            has_not = true;
                        }
                    }
                }
                if has_test && !has_not {
                    pending_test = true;
                }
                i = close + 1;
                continue;
            }
        }
        if pending_test {
            // The attributed item: skip to its body (or its `;`).
            let mut k = i;
            while k < toks.len() {
                match toks[k].tok {
                    Tok::Punct('{') => {
                        let close = matching(toks, k, '{', '}').unwrap_or(toks.len() - 1);
                        regions.push(k..close + 1);
                        i = close + 1;
                        break;
                    }
                    Tok::Punct(';') => {
                        i = k + 1;
                        break;
                    }
                    Tok::Punct('#') => {
                        // Another attribute: restart the outer loop to
                        // parse it (it may itself contain `test`).
                        break;
                    }
                    _ => k += 1,
                }
            }
            if k < toks.len() && toks[k].tok == Tok::Punct('#') {
                i = k;
            } else if k >= toks.len() {
                break;
            }
            pending_test = false;
            continue;
        }
        i += 1;
    }
    regions
}

fn matching(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.tok == Tok::Punct(open) {
            depth += 1;
        } else if t.tok == Tok::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).map(|t| &t.tok) == Some(&Tok::Punct(c))
}

fn in_regions(regions: &[Range<usize>], idx: usize) -> bool {
    regions.iter().any(|r| r.contains(&idx))
}

fn scan_fns(file: usize, toks: &[Token], test_regions: &[Range<usize>]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    // (type name, impl-body close index)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while impl_stack.last().is_some_and(|&(_, close)| i > close) {
            impl_stack.pop();
        }
        match &toks[i].tok {
            Tok::Ident(kw) if kw == "impl" && impl_item_position(toks, i) => {
                if let Some((ty, body_open)) = parse_impl_header(toks, i) {
                    if let Some(close) = matching(toks, body_open, '{', '}') {
                        impl_stack.push((ty, close));
                    }
                    i = body_open + 1;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident(toks, i + 1) {
                    let name = name.to_string();
                    // Find the body `{` (or `;` for body-less trait items).
                    let mut k = i + 2;
                    let mut body = None;
                    while k < toks.len() {
                        match toks[k].tok {
                            Tok::Punct('{') => {
                                body = matching(toks, k, '{', '}').map(|c| (k, c));
                                break;
                            }
                            Tok::Punct(';') => break,
                            _ => k += 1,
                        }
                    }
                    if let Some((open, close)) = body {
                        let qual = impl_stack.last().map(|(ty, _)| format!("{ty}::{name}"));
                        let is_test = in_regions(test_regions, i) || in_regions(test_regions, open);
                        let mut f = FnInfo {
                            file,
                            name,
                            qual,
                            sig_line: toks[i].line,
                            body: open + 1..close,
                            is_test,
                            calls: Vec::new(),
                            acquired: Vec::new(),
                            declared: None,
                        };
                        extract_calls_and_locks(toks, &mut f);
                        fns.push(f);
                        // Continue *inside* the body: nested fns are rare
                        // but legal, and items after this fn follow the
                        // close brace anyway.
                        i += 2;
                        continue;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    fns
}

fn impl_item_position(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    match &toks[i - 1].tok {
        Tok::Punct(';') | Tok::Punct('}') | Tok::Punct(']') | Tok::Punct('{') => true,
        Tok::Ident(k) => matches!(k.as_str(), "unsafe" | "default"),
        _ => false,
    }
}

/// From an item-position `impl`, extract the implemented type's last path
/// segment and the index of the body `{`.
fn parse_impl_header(toks: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut k = impl_idx + 1;
    let mut angle = 0i32;
    let mut segs: Vec<&str> = Vec::new();
    let mut after_for: Option<Vec<&str>> = None;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('{') if angle == 0 => {
                let segs = after_for.as_ref().unwrap_or(&segs);
                let ty = segs.last()?.to_string();
                return Some((ty, k));
            }
            Tok::Punct('-') if is_punct(toks, k + 1, '>') => {
                k += 2;
                continue;
            }
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(id) if angle == 0 => {
                if id == "for" {
                    after_for = Some(Vec::new());
                } else if id == "where" {
                    // A `where` clause ends the type path; the loop keeps
                    // scanning only to find the body `{`.
                } else {
                    match &mut after_for {
                        Some(v) => v.push(id),
                        None => segs.push(id),
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

fn extract_calls_and_locks(toks: &[Token], f: &mut FnInfo) {
    let r = f.body.clone();
    for i in r.clone() {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if !is_punct(toks, i + 1, '(') {
            continue;
        }
        // Ranked acquisition patterns: `recv.method(` where the receiver
        // field names the lock.
        if i >= 2 && is_punct(toks, i - 1, '.') {
            if let Some(recv) = ident(toks, i - 2) {
                let level = match (recv, name.as_str()) {
                    ("state", "lock" | "try_lock") => Some(0),
                    ("dict", "read" | "write" | "try_read" | "try_write") => Some(1),
                    ("inner", "lock" | "try_lock") => Some(2),
                    ("write_lock", "lock") => Some(3),
                    _ => None,
                };
                if let Some(l) = level {
                    f.acquired.push((l, toks[i].line));
                }
            }
        }
        if KEYWORDS.contains(&name.as_str())
            || matches!(name.as_str(), "Some" | "None" | "Ok" | "Err")
        {
            continue;
        }
        if i >= 3 && is_punct(toks, i - 1, ':') && is_punct(toks, i - 2, ':') {
            if let Some(ty) = ident(toks, i - 3) {
                f.calls.push(format!("{ty}::{name}"));
            }
        }
        if !GENERIC_METHODS.contains(&name.as_str()) {
            f.calls.push(name.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// rules
// ---------------------------------------------------------------------------

fn check_l1(data: &[FileData], fns: &[FnInfo], diags: &mut Vec<Diagnostic>) {
    for f in fns {
        let fd = &data[f.file];
        if !fd.scope.l1 {
            continue;
        }
        let toks = &fd.lexed.tokens;
        let uses_query_pinned = f.calls.iter().any(|c| c == "query_pinned");
        // (a) the result of `query_pinned` must be decoded under the pin it
        // returned; grabbing the live dictionary alongside it is exactly
        // the race the pin exists to prevent.
        if uses_query_pinned {
            for i in f.body.clone() {
                if is_punct(toks, i, '.')
                    && ident(toks, i + 1) == Some("dict")
                    && is_punct(toks, i + 2, '(')
                {
                    diags.push(Diagnostic {
                        file: fd.path.clone(),
                        line: toks[i + 1].line,
                        rule: "L1",
                        msg: "function uses `query_pinned` but also takes the live dictionary \
                              via `.dict()`; decode results under the pin returned by \
                              `query_pinned`"
                            .to_string(),
                    });
                }
            }
        }
        // (b) a named DictPin binding must not straddle a write call.
        let mut i = f.body.start;
        while i < f.body.end {
            if ident(toks, i) != Some("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if ident(toks, j) == Some("mut") {
                j += 1;
            }
            let Some(bind) = ident(toks, j).map(str::to_string) else {
                i += 1;
                continue;
            };
            if !is_punct(toks, j + 1, '=') {
                i += 1;
                continue;
            }
            // Find the end of the statement.
            let mut depth = 0i32;
            let mut end = j + 2;
            while end < f.body.end {
                match toks[end].tok {
                    Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            // A pin binding: the RHS *ends* in `.dict()` / `.pin_dict()`.
            let is_pin = end >= 4
                && is_punct(toks, end - 1, ')')
                && is_punct(toks, end - 2, '(')
                && matches!(ident(toks, end - 3), Some("dict") | Some("pin_dict"))
                && is_punct(toks, end - 4, '.');
            if is_pin {
                let mut k = end;
                while k < f.body.end {
                    // `drop(<bind>)` ends the hazard window.
                    if ident(toks, k) == Some("drop")
                        && is_punct(toks, k + 1, '(')
                        && ident(toks, k + 2) == Some(bind.as_str())
                        && is_punct(toks, k + 3, ')')
                    {
                        break;
                    }
                    if let Some(callee) = ident(toks, k) {
                        if is_punct(toks, k + 1, '(') && WRITE_METHODS.contains(&callee) {
                            diags.push(Diagnostic {
                                file: fd.path.clone(),
                                line: toks[k].line,
                                rule: "L1",
                                msg: format!(
                                    "dictionary pin `{bind}` is still held across write call \
                                     `{callee}`; drop the pin first (a held pin forces \
                                     copy-on-write interning)"
                                ),
                            });
                        }
                    }
                    k += 1;
                }
            }
            i = end + 1;
        }
    }
}

fn check_l2(data: &[FileData], fns: &[FnInfo], diags: &mut Vec<Diagnostic>) {
    // (a) coverage: a non-test function that acquires a ranked lock must
    // declare it.
    for f in fns {
        let fd = &data[f.file];
        if !fd.scope.l2 || f.is_test {
            continue;
        }
        match &f.declared {
            None => {
                if let Some(&(lvl, line)) = f.acquired.first() {
                    diags.push(Diagnostic {
                        file: fd.path.clone(),
                        line,
                        rule: "L2",
                        msg: format!(
                            "`{}` acquires the {} lock but carries no \
                             `// lock-order: acquires(...)` annotation",
                            f.display_name(),
                            LOCK_LEVELS[lvl]
                        ),
                    });
                }
            }
            Some(declared) => {
                for &(lvl, line) in &f.acquired {
                    if !declared.contains(&lvl) {
                        diags.push(Diagnostic {
                            file: fd.path.clone(),
                            line,
                            rule: "L2",
                            msg: format!(
                                "`{}` acquires the {} lock, which its lock-order annotation \
                                 does not declare",
                                f.display_name(),
                                LOCK_LEVELS[lvl]
                            ),
                        });
                    }
                }
            }
        }
    }

    // (b) monotonicity along the call graph: from a function holding up to
    // level m, every reachable acquisition must be at level >= m.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
        if let Some(q) = &f.qual {
            by_name.entry(q.as_str()).or_default().push(i);
        }
    }
    for f in fns {
        let fd = &data[f.file];
        if !fd.scope.l2 || f.is_test {
            continue;
        }
        let Some(declared) = &f.declared else {
            continue;
        };
        let Some(&max_held) = declared.iter().max() else {
            continue;
        };
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        let mut stack: Vec<usize> = resolve_calls(f.file, &f.calls, &by_name, fns);
        while let Some(gi) = stack.pop() {
            if !visited.insert(gi) {
                continue;
            }
            let g = &fns[gi];
            if std::ptr::eq(g, f) {
                continue;
            }
            let g_levels: Vec<usize> = g
                .declared
                .clone()
                .unwrap_or_else(|| g.acquired.iter().map(|&(l, _)| l).collect());
            if let Some(&g_min) = g_levels.iter().min() {
                if g_min < max_held {
                    diags.push(Diagnostic {
                        file: fd.path.clone(),
                        line: f.sig_line,
                        rule: "L2",
                        msg: format!(
                            "`{}` (declares up to the {} lock) may reach `{}`, which \
                             acquires the lower-ranked {} lock — hierarchy is {}",
                            f.display_name(),
                            LOCK_LEVELS[max_held],
                            g.display_name(),
                            LOCK_LEVELS[g_min],
                            LOCK_LEVELS.join(" → ")
                        ),
                    });
                    continue;
                }
            }
            stack.extend(resolve_calls(g.file, &g.calls, &by_name, fns));
        }
    }
}

/// Resolve call names to candidate functions. Qualified `Type::name` calls
/// resolve globally; bare names prefer same-file definitions and treat a
/// multi-file ambiguity as unresolvable (without type information, linking
/// `store.n_triples()` to every `n_triples` in the workspace would
/// manufacture call-graph edges that do not exist).
fn resolve_calls(
    caller_file: usize,
    calls: &[String],
    by_name: &HashMap<&str, Vec<usize>>,
    fns: &[FnInfo],
) -> Vec<usize> {
    let mut out = Vec::new();
    for c in calls {
        let Some(v) = by_name.get(c.as_str()) else {
            continue;
        };
        if c.contains("::") {
            out.extend_from_slice(v);
            continue;
        }
        let same_file: Vec<usize> = v
            .iter()
            .copied()
            .filter(|&i| fns[i].file == caller_file)
            .collect();
        if !same_file.is_empty() {
            out.extend_from_slice(&same_file);
        } else if v.len() == 1 {
            out.extend_from_slice(v);
        }
    }
    out
}

impl FnInfo {
    fn display_name(&self) -> &str {
        self.qual.as_deref().unwrap_or(&self.name)
    }
}

fn check_l3(fd: &FileData, diags: &mut Vec<Diagnostic>) {
    if !fd.scope.l3 {
        return;
    }
    let toks = &fd.lexed.tokens;
    for i in 0..toks.len() {
        if in_regions(&fd.test_regions, i) {
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        let hit = match name.as_str() {
            "unwrap" | "expect" => {
                i >= 1 && is_punct(toks, i - 1, '.') && is_punct(toks, i + 1, '(')
            }
            "panic" | "unimplemented" | "todo" => is_punct(toks, i + 1, '!'),
            _ => false,
        };
        if hit {
            diags.push(Diagnostic {
                file: fd.path.clone(),
                line: toks[i].line,
                rule: "L3",
                msg: format!(
                    "`{name}` in non-test code — return a ModelError/Error instead, or add \
                     `// sordf-lint: allow(L3) — <reason>`"
                ),
            });
        }
    }
}

fn check_l4(fd: &FileData, diags: &mut Vec<Diagnostic>) {
    if !fd.scope.l4 {
        return;
    }
    let toks = &fd.lexed.tokens;
    let mut i = 0usize;
    while i + 5 < toks.len() {
        let is_std_sync = ident(toks, i) == Some("std")
            && is_punct(toks, i + 1, ':')
            && is_punct(toks, i + 2, ':')
            && ident(toks, i + 3) == Some("sync")
            && is_punct(toks, i + 4, ':')
            && is_punct(toks, i + 5, ':');
        if !is_std_sync {
            i += 1;
            continue;
        }
        let flag = |name: &str, line: u32, diags: &mut Vec<Diagnostic>| {
            if BANNED_STD_SYNC.contains(&name) {
                diags.push(Diagnostic {
                    file: fd.path.clone(),
                    line,
                    rule: "L4",
                    msg: format!(
                        "`std::sync::{name}` is banned — use the vendored `parking_lot` shim \
                         (poison-free, lock-order instrumented)"
                    ),
                });
            }
        };
        if is_punct(toks, i + 6, '{') {
            if let Some(close) = matching(toks, i + 6, '{', '}') {
                for t in &toks[i + 7..close] {
                    if let Tok::Ident(name) = &t.tok {
                        flag(name, t.line, diags);
                    }
                }
                i = close + 1;
                continue;
            }
        } else if let Some(name) = ident(toks, i + 6) {
            flag(name, toks[i + 6].line, diags);
        }
        i += 6;
    }
}

fn check_l5(fd: &FileData, diags: &mut Vec<Diagnostic>) {
    if !fd.scope.l5 {
        return;
    }
    let toks = &fd.lexed.tokens;
    for i in 0..toks.len() {
        if ident(toks, i) != Some("struct") || in_regions(&fd.test_regions, i) {
            continue;
        }
        let Some(name) = ident(toks, i + 1) else {
            continue;
        };
        let needs =
            MUST_USE_SUFFIXES.iter().any(|s| name.ends_with(s)) || MUST_USE_EXTRA.contains(&name);
        if !needs {
            continue;
        }
        if !preceding_attrs_contain(toks, i, "must_use") {
            diags.push(Diagnostic {
                file: fd.path.clone(),
                line: toks[i].line,
                rule: "L5",
                msg: format!(
                    "guard/pin/handle type `{name}` must be `#[must_use]` so a dropped \
                     guard is a compile-time warning"
                ),
            });
        }
    }
}

/// Walk backward over `pub`/`pub(crate)` and attribute groups preceding the
/// item keyword at `idx`, looking for an attribute containing `needle`.
fn preceding_attrs_contain(toks: &[Token], idx: usize, needle: &str) -> bool {
    let mut j = idx;
    // Skip visibility tokens.
    loop {
        let skip = j >= 1
            && (matches!(
                ident(toks, j - 1),
                Some("pub") | Some("crate") | Some("super")
            ) || is_punct(toks, j - 1, ')')
                || is_punct(toks, j - 1, '('));
        if skip {
            j -= 1;
        } else {
            break;
        }
    }
    // Walk attribute groups: `# [ ... ]` sequences directly above.
    while j >= 1 && is_punct(toks, j - 1, ']') {
        // Find the matching '[' scanning backward.
        let mut depth = 0i32;
        let mut k = j - 1;
        loop {
            match toks[k].tok {
                Tok::Punct(']') => depth += 1,
                Tok::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if k == 0 || !is_punct(toks, k - 1, '#') {
            return false;
        }
        for t in &toks[k..j] {
            if let Tok::Ident(id) = &t.tok {
                if id == needle {
                    return true;
                }
            }
        }
        j = k - 1;
    }
    false
}

fn check_l6(fi: usize, fd: &FileData, fns: &[FnInfo], diags: &mut Vec<Diagnostic>) {
    if !fd.scope.l6 {
        return;
    }
    let toks = &fd.lexed.tokens;
    for i in 0..toks.len() {
        if in_regions(&fd.test_regions, i) {
            continue;
        }
        if ident(toks, i) != Some("Ordering")
            || !is_punct(toks, i + 1, ':')
            || !is_punct(toks, i + 2, ':')
        {
            continue;
        }
        let Some(ord) = ident(toks, i + 3) else {
            continue;
        };
        if !ATOMIC_ORDERINGS.contains(&ord) {
            continue;
        }
        let line = toks[i].line;
        // A justification comment (`// ordering: ...`) anywhere between the
        // enclosing function's head and the use, or within 5 lines above a
        // non-function use (statics, consts). A multi-line comment block
        // counts by its *last* line, so a justification that opens a block
        // sitting directly above the function head still applies.
        let lo = fns
            .iter()
            .find(|f| f.file == fi && f.body.contains(&i))
            .map(|f| f.sig_line.saturating_sub(3))
            .unwrap_or_else(|| line.saturating_sub(5));
        let comments = &fd.lexed.comments;
        let justified = comments.iter().enumerate().any(|(ci, c)| {
            if !c.text.contains("ordering:") || c.line > line {
                return false;
            }
            let mut last = c.line;
            for next in &comments[ci + 1..] {
                if next.line == last + 1 {
                    last = next.line;
                } else {
                    break;
                }
            }
            last >= lo
        });
        if !justified {
            diags.push(Diagnostic {
                file: fd.path.clone(),
                line,
                rule: "L6",
                msg: format!(
                    "atomic `Ordering::{ord}` without an `// ordering:` justification comment \
                     in the enclosing function"
                ),
            });
        }
    }
}

/// Fallible write-path I/O operations whose `io::Result` L7 requires to be
/// handled (by name, followed by a call's `(`).
const IO_WRITE_CALLS: [&str; 13] = [
    "write",
    "write_all",
    "sync_all",
    "sync_data",
    "flush",
    "rename",
    "remove_file",
    "remove_dir_all",
    "set_len",
    "create",
    "create_new",
    "create_dir_all",
    "truncate",
];

fn is_io_call(toks: &[Token], i: usize) -> bool {
    matches!(&toks[i].tok, Tok::Ident(name)
        if IO_WRITE_CALLS.contains(&name.as_str()) && is_punct(toks, i + 1, '('))
}

fn check_l7(fd: &FileData, diags: &mut Vec<Diagnostic>) {
    if !fd.scope.l7 {
        return;
    }
    let toks = &fd.lexed.tokens;
    let flag = |name: &str, line: u32, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic {
            file: fd.path.clone(),
            line,
            rule: "L7",
            msg: format!(
                "`{name}` result discarded on the durable write path — a swallowed I/O \
                 error silently forfeits the crash guarantee; propagate it, or add \
                 `// sordf-lint: allow(L7) — <reason>`"
            ),
        });
    };
    for i in 0..toks.len() {
        if in_regions(&fd.test_regions, i) {
            continue;
        }
        // `let _ = <expr containing a write call>;`
        if ident(toks, i) == Some("let")
            && ident(toks, i + 1) == Some("_")
            && is_punct(toks, i + 2, '=')
        {
            let mut depth = 0usize;
            let mut j = i + 3;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                        depth = depth.saturating_sub(1)
                    }
                    Tok::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                if is_io_call(toks, j) {
                    flag(ident(toks, j).unwrap_or("?"), toks[i].line, diags);
                    break;
                }
                j += 1;
            }
        }
        // `<expr with a write call>.ok();` — result dropped on the floor.
        if ident(toks, i) == Some("ok")
            && i >= 1
            && is_punct(toks, i - 1, '.')
            && is_punct(toks, i + 1, '(')
            && is_punct(toks, i + 2, ')')
            && is_punct(toks, i + 3, ';')
        {
            // Walk the receiver chain back to the statement start, looking
            // for a write call at the chain's own nesting level.
            let mut depth = 0usize;
            let mut j = i - 1;
            loop {
                match toks[j].tok {
                    Tok::Punct(')') | Tok::Punct(']') => depth += 1,
                    Tok::Punct('(') | Tok::Punct('[') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if depth == 0 => break,
                    _ => {}
                }
                if depth == 0 && is_io_call(toks, j) {
                    flag(ident(toks, j).unwrap_or("?"), toks[i].line, diags);
                    break;
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
        }
    }
}

/// The FOR/bit-packing word-layout primitives. A call site outside the
/// sanctioned modules means raw page words escaped the decode layer, and the
/// caller has hard-coded the page format.
const PAGE_LAYOUT_FNS: [&str; 3] = ["for_get", "for_decode_range", "for_partition_point"];

fn check_l8(fd: &FileData, diags: &mut Vec<Diagnostic>) {
    if !fd.scope.l8 {
        return;
    }
    let toks = &fd.lexed.tokens;
    for i in 0..toks.len() {
        // Raw page-buffer field indexing: `<expr>.data[...]`.
        if is_punct(toks, i, '.')
            && ident(toks, i + 1) == Some("data")
            && is_punct(toks, i + 2, '[')
        {
            diags.push(Diagnostic {
                file: fd.path.clone(),
                line: toks[i + 1].line,
                rule: "L8",
                msg: "raw `.data[..]` page-buffer indexing — page layout belongs to \
                      `compress.rs`/`column.rs`; read through `Chunk` or the column \
                      accessors, or add `// sordf-lint: allow(L8) — <reason>`"
                    .to_string(),
            });
        }
        // A page-layout primitive call, bare or `compress::`-qualified.
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        let qualified_choose = name == "choose"
            && i >= 3
            && is_punct(toks, i - 1, ':')
            && is_punct(toks, i - 2, ':')
            && ident(toks, i - 3) == Some("compress");
        if (PAGE_LAYOUT_FNS.contains(&name.as_str()) || qualified_choose)
            && is_punct(toks, i + 1, '(')
        {
            diags.push(Diagnostic {
                file: fd.path.clone(),
                line: toks[i].line,
                rule: "L8",
                msg: format!(
                    "`{name}` decodes raw page words outside the sanctioned layout modules \
                     — only `compress.rs`/`column.rs` may know the FOR page format; read \
                     through `Chunk`/column accessors, or add \
                     `// sordf-lint: allow(L8) — <reason>`"
                ),
            });
        }
    }
}

/// Blocking socket primitives: the HTTP layer's request/response entry
/// points plus the listener/connect calls. None of these names collide with
/// the file-I/O vocabulary L7 watches, so a hit is unambiguously wire I/O.
const L9_BLOCKING_CALLS: [&str; 3] = ["read_request", "write_response", "accept"];

fn check_l9(data: &[FileData], fns: &[FnInfo], diags: &mut Vec<Diagnostic>) {
    for f in fns {
        let fd = &data[f.file];
        if !fd.scope.l9 || f.is_test {
            continue;
        }
        // Holding (or documented as holding) the outermost lock is the
        // hazard; lower-ranked locks are leaves held for bounded work.
        let holds_state = f.declared.as_ref().is_some_and(|d| d.contains(&0))
            || f.acquired.iter().any(|&(l, _)| l == 0);
        if !holds_state {
            continue;
        }
        let toks = &fd.lexed.tokens;
        for i in f.body.clone() {
            let Tok::Ident(name) = &toks[i].tok else {
                continue;
            };
            if !is_punct(toks, i + 1, '(') {
                continue;
            }
            let qualified_connect = name == "connect"
                && i >= 3
                && is_punct(toks, i - 1, ':')
                && is_punct(toks, i - 2, ':')
                && ident(toks, i - 3) == Some("TcpStream");
            if L9_BLOCKING_CALLS.contains(&name.as_str()) || qualified_connect {
                diags.push(Diagnostic {
                    file: fd.path.clone(),
                    line: toks[i].line,
                    rule: "L9",
                    msg: format!(
                        "blocking socket call `{name}` inside `{}`, which holds the db_state \
                         lock — one slow peer would stall every writer; move the wire I/O \
                         outside the lock, or add `// sordf-lint: allow(L9) — <reason>`",
                        f.display_name()
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// filesystem front end
// ---------------------------------------------------------------------------

/// Workspace root as seen from the lint crate (compile-time anchored).
pub fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .unwrap_or_else(|_| env!("CARGO_MANIFEST_DIR").to_string());
    let mut p = PathBuf::from(manifest);
    p.pop();
    p.pop();
    p
}

/// Lint every in-scope `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let sources: Vec<(String, String)> = files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            std::fs::read_to_string(&p).map(|src| (rel, src))
        })
        .collect::<std::io::Result<_>>()?;
    Ok(lint_sources(&sources, None))
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            if path == root.join("vendor") {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        lint_sources(
            &[("crates/core/src/lib.rs".to_string(), src.to_string())],
            Some(Scope::all()),
        )
    }

    #[test]
    fn l3_flags_unwrap_and_allows_suppress() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 {\n\
                       // sordf-lint: allow(L3) — structurally guaranteed\n\
                       x.unwrap()\n\
                   }\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "L3");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn l3_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_l0() {
        let src = "// sordf-lint: allow(L3)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == "L0"));
        assert!(
            d.iter().any(|d| d.rule == "L3"),
            "unreasoned allow must not suppress"
        );
    }

    #[test]
    fn l2_coverage_and_monotonicity() {
        let src = "\
impl Pool {
    fn bare(&self) { let _g = self.inner.lock(); }
}
// lock-order: acquires(pool_shard)
fn shard_then_state(p: &Pool) { helper(p); }
// lock-order: acquires(db_state)
fn helper(_p: &Pool) { }
";
        let d = run(src);
        assert!(
            d.iter().any(|d| d.rule == "L2" && d.line == 2),
            "undeclared acquisition: {d:?}"
        );
        assert!(
            d.iter()
                .any(|d| d.rule == "L2" && d.msg.contains("lower-ranked")),
            "inversion along call graph: {d:?}"
        );
    }

    #[test]
    fn l6_requires_justification() {
        let src = "\
fn f(c: &std::sync::atomic::AtomicU64) -> u64 { c.load(Ordering::Relaxed) }
// ordering: Relaxed — monotone counter, no publication.
fn g(c: &std::sync::atomic::AtomicU64) -> u64 { c.load(Ordering::Relaxed) }
fn h(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }
";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!((d[0].rule, d[0].line), ("L6", 1));
    }

    #[test]
    fn l5_guard_needs_must_use() {
        let src = "pub struct FooGuard;\n#[must_use]\npub struct BarPin;\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!((d[0].rule, d[0].line), ("L5", 1));
    }

    #[test]
    fn l4_bans_std_sync_locks_but_not_atomics() {
        let src = "use std::sync::{Arc, Mutex};\nuse std::sync::atomic::AtomicU64;\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "L4");
        assert!(d[0].msg.contains("Mutex"));
    }

    #[test]
    fn l8_flags_page_layout_access_and_classify_carves_out_codec() {
        let src = "\
fn peek(p: &PageGuard) -> u64 { p.data[0] }
fn one(w: &[u64]) -> u64 { for_get(w, 0, 8, 0) }
fn enc(v: &[u64]) { let _ = compress::choose(v); }
fn fine(c: &Column) -> u64 { c.value(0) }
";
        let d = run(src);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "L8"), "{d:?}");
        assert_eq!(
            d.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "{d:?}"
        );
        // The codec and its accessor layer are the sanctioned exceptions.
        assert!(!classify("crates/columnar/src/compress.rs").unwrap().l8);
        assert!(!classify("crates/columnar/src/column.rs").unwrap().l8);
        assert!(classify("crates/engine/src/exec.rs").unwrap().l8);
    }

    #[test]
    fn l9_no_blocking_socket_io_under_state_lock() {
        let src = "\
// lock-order: acquires(db_state)
fn bad(srv: &Server) {
    let _st = srv.state.lock();
    let (mut s, _) = srv.listener.accept().map_err(drop);
    write_response(&mut s, &resp).map_err(drop);
}
fn fine(srv: &Server) {
    let (_s, _) = srv.listener.accept().map_err(drop);
}
";
        let d = run(src);
        let l9: Vec<u32> = d
            .iter()
            .filter(|d| d.rule == "L9")
            .map(|d| d.line)
            .collect();
        assert_eq!(l9, vec![4, 5], "{d:?}");
    }

    #[test]
    fn l1_pin_across_write_and_decode_outside_pin() {
        let src = "\
fn bad_decode(db: &Db) {
    let (rs, _pin) = db.query_pinned(q);
    let live = db.dict();
    rs.canonical(&live);
}
fn bad_hold(db: &Db) {
    let pin = db.dict();
    db.insert_terms(&[]);
    drop(pin);
}
fn fine(db: &Db) {
    let pin = db.dict();
    drop(pin);
    db.insert_terms(&[]);
}
";
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.line == 3));
        assert!(d.iter().any(|d| d.line == 8));
    }
}
