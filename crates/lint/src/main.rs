//! `sordf_lint` CLI.
//!
//! ```text
//! cargo run -p sordf_lint -- --workspace      # lint the whole tree (CI gate)
//! cargo run -p sordf_lint -- path/to/file.rs  # lint explicit files, all rules
//! ```
//!
//! Exit status: 0 when clean, 1 when any diagnostic fired, 2 on usage or
//! I/O errors.

use std::process::ExitCode;

use sordf_lint::{lint_sources, lint_workspace, workspace_root, Scope};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: sordf_lint --workspace | <file.rs>...");
        return ExitCode::from(2);
    }

    let result = if args.iter().any(|a| a == "--workspace") {
        let root = workspace_root();
        match lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("sordf-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut sources = Vec::new();
        for path in &args {
            match std::fs::read_to_string(path) {
                Ok(src) => sources.push((path.clone(), src)),
                Err(e) => {
                    eprintln!("sordf-lint: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        // Explicit files get the full rule set regardless of location.
        lint_sources(&sources, Some(Scope::all()))
    };

    for d in &result {
        println!("{d}");
    }
    if result.is_empty() {
        println!("sordf-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("sordf-lint: {} diagnostic(s)", result.len());
        ExitCode::from(1)
    }
}
