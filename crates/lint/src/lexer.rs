//! A minimal Rust lexer: enough to tokenize this workspace reliably.
//!
//! Produces a code-token stream (identifiers, punctuation, opaque literals,
//! lifetimes) plus a separate comment stream, both carrying 1-based line
//! numbers. Comments are kept apart because the rules consume them
//! differently: the allow / lock-order / ordering directives live in
//! comments, while every structural check walks the
//! code tokens only — so an `unwrap()` inside a doc example or a string
//! literal is never mistaken for code.

/// One code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the scanner distinguishes them by value).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String/char/byte/number literal; the content is irrelevant to every
    /// rule, so it is not retained.
    Lit,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: Vec<(usize, char)>,
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.char_indices().collect(),
            src,
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn byte_offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(i, _)| i)
            .unwrap_or(self.src.len())
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src`. Never fails: unrecognized bytes become `Punct` tokens,
/// unterminated literals run to end of file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let start = cur.byte_offset();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = cur.src[start..cur.byte_offset()]
                    .trim_start_matches('/')
                    .trim_start_matches('!')
                    .trim();
                out.comments.push(Comment {
                    text: text.to_string(),
                    line,
                });
            }
            '/' if cur.peek(1) == Some('*') => {
                let start = cur.byte_offset();
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let raw = &cur.src[start..cur.byte_offset()];
                let text = raw
                    .trim_start_matches('/')
                    .trim_start_matches('*')
                    .trim_end_matches('/')
                    .trim_end_matches('*')
                    .trim();
                out.comments.push(Comment {
                    text: text.to_string(),
                    line,
                });
            }
            '"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_literal(&cur) => {
                lex_raw_or_byte_literal(&mut cur);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            '\'' => {
                if lex_char_or_lifetime(&mut cur) {
                    out.tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                } else {
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = cur.byte_offset();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(cur.src[start..cur.byte_offset()].to_string()),
                    line,
                });
            }
            c => {
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
            }
        }
    }
    out
}

/// At an `r` or `b`: does a raw string (`r"`, `r#`), byte string (`b"`),
/// byte char (`b'`) or raw byte string (`br`) start here (rather than an
/// ordinary identifier)?
fn starts_raw_or_byte_literal(cur: &Cursor<'_>) -> bool {
    match (cur.peek(0), cur.peek(1)) {
        (Some('r'), Some('"')) | (Some('r'), Some('#')) => {
            // `r"..."` / `r#"..."#` raw string; but `r#ident` is a raw
            // identifier, not a string.
            if cur.peek(1) == Some('#') {
                let mut i = 1;
                while cur.peek(i) == Some('#') {
                    i += 1;
                }
                cur.peek(i) == Some('"')
            } else {
                true
            }
        }
        (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
        (Some('b'), Some('r')) => matches!(cur.peek(2), Some('"') | Some('#')),
        _ => false,
    }
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

fn lex_raw_or_byte_literal(cur: &mut Cursor<'_>) {
    // Consume the `r` / `b` / `br` prefix.
    if cur.peek(0) == Some('b') {
        cur.bump();
    }
    if cur.peek(0) == Some('r') {
        cur.bump();
        let mut hashes = 0usize;
        while cur.peek(0) == Some('#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        'outer: while let Some(c) = cur.bump() {
            if c == '"' {
                for _ in 0..hashes {
                    if cur.peek(0) == Some('#') {
                        cur.bump();
                    } else {
                        continue 'outer;
                    }
                }
                break;
            }
        }
    } else if cur.peek(0) == Some('\'') {
        lex_char_body(cur);
    } else {
        lex_string(cur);
    }
}

/// Returns `true` if this was a char literal, `false` for a lifetime.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> bool {
    // `'\...'` is always a char; `'x'` is a char; `'ident` is a lifetime.
    if cur.peek(1) == Some('\\') {
        lex_char_body(cur);
        return true;
    }
    if cur.peek(1).is_some_and(is_ident_start) && cur.peek(2) == Some('\'') {
        lex_char_body(cur);
        return true;
    }
    if cur.peek(1).is_some_and(|c| !is_ident_start(c)) {
        // e.g. `'0'` or a stray quote: treat as char-ish literal.
        lex_char_body(cur);
        return true;
    }
    // Lifetime: consume `'` + identifier.
    cur.bump();
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    false
}

fn lex_char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    while cur
        .peek(0)
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        cur.bump();
    }
    // Simple float continuation: `1.5` but not the range `1..5`.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_in_comments_and_strings_is_invisible() {
        let src = r##"
            // calls .unwrap() in prose
            /* block .expect("x") */
            let s = "panic!(no)";
            let r = r#"unwrap"#;
            let c = 'u';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let lits = lexed.tokens.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lits, 1);
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still */ after");
        assert_eq!(lexed.comments.len(), 1);
        let ids = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Ident(_)))
            .count();
        assert_eq!(ids, 1);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let lexed = lex("for i in 0..10 {}");
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }
}
