//! HTTP front end for a [`sordf::Database`].
//!
//! Speaks a SPARQL-protocol subset over a dependency-free HTTP/1.1 layer
//! built directly on [`std::net::TcpListener`] — no async runtime. A fixed
//! pool of worker threads shares one listener; each worker accepts a
//! connection and serves it to completion (keep-alive), so the pool size
//! bounds concurrent connections exactly.
//!
//! Endpoints:
//!
//! * `GET /query?query=…` / `POST /query` — evaluate a query. `lang=sql`
//!   selects the SQL front end; `timeout_ms` sets a per-request deadline;
//!   `trace=1` adds executor statistics to the response. Results serialize
//!   as JSON (default) or TSV (`Accept: text/tab-separated-values`).
//! * `POST /update?action=insert|delete` — apply an N-Triples batch through
//!   the delta store.
//! * `GET /status` — drift, plan-cache, memory and server statistics.
//!
//! Three protection mechanisms, all cooperative with the engine:
//!
//! * **Deadlines** — `timeout_ms` (clamped by [`ServerConfig::max_timeout`],
//!   defaulted by [`ServerConfig::default_timeout`]) becomes the
//!   [`QueryRequest`] timeout; the engine stops within one page of work and
//!   the client gets `408` with error code `timeout`.
//! * **Disconnect cancellation** — a watchdog thread polls each in-flight
//!   request's socket; when the peer hangs up, the request's
//!   `CancellationToken` is cancelled and the engine abandons the query
//!   (HTTP 499 in the books, though nobody is left to read it).
//! * **Admission control** — at most [`ServerConfig::max_in_flight`]
//!   query/update requests execute at once; excess requests are rejected
//!   immediately with `503` + `Retry-After` instead of queueing without
//!   bound.
//!
//! [`Server::shutdown`] drains gracefully: new work is rejected with `503`,
//! in-flight requests run to completion, then the workers exit.

mod http;
mod json;

pub use http::{Request, Response};

use json::Obj;
use parking_lot::Mutex;
use sordf::{CancellationToken, Database, Error, QueryRequest, QueryResponse};
use sordf_model::ntriples;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads in the accept pool (= max concurrent connections).
    pub workers: usize,
    /// Max concurrently *executing* query/update requests (admission cap).
    pub max_in_flight: usize,
    /// Deadline applied when the client sends no `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Hard ceiling a client-supplied `timeout_ms` cannot exceed.
    pub max_timeout: Duration,
    /// Idle keep-alive connections are dropped after this long.
    pub keep_alive: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_in_flight: 8,
            default_timeout: None,
            max_timeout: Duration::from_secs(300),
            keep_alive: Duration::from_secs(30),
        }
    }
}

/// Monotonic request counters, exposed under `/status` → `"server"`.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    cancelled: AtomicU64,
    client_errors: AtomicU64,
}

/// One in-flight request watched for client disconnect.
struct Watch {
    id: u64,
    stream: TcpStream,
    token: CancellationToken,
}

struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    listener: TcpListener,
    /// Set once by [`Server::shutdown`]; workers observe it within one
    /// accept-poll / read-timeout tick.
    shutdown: AtomicBool,
    /// Admission slots currently held (monotone acquire/release).
    in_flight: AtomicUsize,
    /// Disconnect-watchdog registry. Leaf lock: never held across I/O on
    /// the *handler* side; the watchdog's per-entry peek is non-blocking.
    watch: Mutex<Vec<Watch>>,
    watch_ids: AtomicU64,
    counters: Counters,
}

impl Shared {
    fn draining(&self) -> bool {
        // ordering: Relaxed — one-way monotonic flag, observers only need
        // eventual visibility (bounded by the poll tick).
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Try to take an admission slot. Counter-only CAS loop; no lock.
    fn try_admit(&self) -> bool {
        // ordering: Relaxed — the counter itself is the entire shared
        // state; no other memory is published by an acquire/release pair.
        self.in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.cfg.max_in_flight).then_some(n + 1)
            })
            .is_ok()
    }

    fn release(&self) {
        // ordering: Relaxed — see `try_admit`.
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Register an in-flight request with the disconnect watchdog. The
    /// socket is switched to non-blocking so the watchdog's `peek` never
    /// stalls; [`Shared::unwatch`] restores blocking mode before the
    /// handler writes the response.
    fn watch(&self, stream: &TcpStream, token: CancellationToken) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        clone.set_nonblocking(true).ok()?;
        // ordering: Relaxed — pure ID allocation, no other state attached.
        let id = self.watch_ids.fetch_add(1, Ordering::Relaxed);
        self.watch.lock().push(Watch {
            id,
            stream: clone,
            token,
        });
        Some(id)
    }

    fn unwatch(&self, stream: &TcpStream, id: Option<u64>) {
        if let Some(id) = id {
            self.watch.lock().retain(|w| w.id != id);
            let _ = stream.set_nonblocking(false);
        }
    }
}

/// A running HTTP server. Dropping it shuts down (gracefully) and joins the
/// worker threads.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `db` with `cfg` worker threads.
    pub fn bind(db: Arc<Database>, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // Non-blocking accept + poll tick: lets every worker notice
        // shutdown without platform-specific listener wakeups.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            db,
            cfg,
            listener,
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            watch: Mutex::new(Vec::new()),
            watch_ids: AtomicU64::new(0),
            counters: Counters::default(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sordf-http-{i}"))
                    .spawn(move || worker_loop(&sh))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let watchdog = {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sordf-http-watchdog".into())
                .spawn(move || watchdog_loop(&sh))?
        };
        Ok(Server {
            shared,
            workers,
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (use after binding port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.shared.listener.local_addr()
    }

    /// Requests currently holding an admission slot.
    pub fn in_flight(&self) -> usize {
        // ordering: Relaxed — monitoring read of a standalone counter.
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, reject new requests with 503,
    /// let in-flight requests finish, then join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // ordering: Relaxed — one-way flag; see `Shared::draining`.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accept-pool body: poll-accept until shutdown, serving each connection to
/// completion.
fn worker_loop(sh: &Shared) {
    while !sh.draining() {
        match sh.listener.accept() {
            Ok((stream, _peer)) => handle_connection(sh, stream),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serve one connection: parse request, route, write response; repeat until
/// the peer closes, asks to close, idles out, or the server drains.
fn handle_connection(sh: &Shared, mut stream: TcpStream) {
    // Accepted sockets may inherit the listener's non-blocking mode on some
    // platforms — force the blocking + read-timeout regime the parser
    // expects.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if stream.set_read_timeout(Some(http::POLL_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut carry = Vec::new();
    loop {
        let idle_deadline = Instant::now() + sh.cfg.keep_alive;
        let req =
            match http::read_request(&mut stream, &mut carry, idle_deadline, &|| sh.draining()) {
                Ok(r) => r,
                Err(http::ReadError::Malformed(msg)) => {
                    // ordering: Relaxed — standalone monitoring counter.
                    sh.counters.client_errors.fetch_add(1, Ordering::Relaxed);
                    let mut resp = error_body(400, "bad_request", &msg, None);
                    resp.close = true;
                    let _ = http::write_response(&mut stream, &resp);
                    return;
                }
                Err(_) => return,
            };
        let close = req.wants_close() || sh.draining();
        let mut resp = route(sh, &req, &stream);
        resp.close = resp.close || close;
        if http::write_response(&mut stream, &resp).is_err() || resp.close {
            return;
        }
    }
}

/// Watchdog body: every tick, probe each in-flight request's socket with a
/// non-blocking `peek`; a hung-up peer cancels the request's token.
fn watchdog_loop(sh: &Shared) {
    while !sh.draining() {
        std::thread::sleep(Duration::from_millis(10));
        let mut watch = sh.watch.lock();
        watch.retain(|w| {
            let mut probe = [0u8; 1];
            match w.stream.peek(&mut probe) {
                // EOF: the client is gone — stop the query, drop the entry.
                Ok(0) => {
                    w.token.cancel();
                    // ordering: Relaxed — standalone monitoring counter.
                    sh.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    false
                }
                // Bytes available (e.g. a pipelined request): still alive.
                Ok(_) => true,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
                // Reset/aborted: treat like a hangup.
                Err(_) => {
                    w.token.cancel();
                    // ordering: Relaxed — standalone monitoring counter.
                    sh.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        });
    }
}

fn route(sh: &Shared, req: &Request, stream: &TcpStream) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/query") | ("POST", "/query") => handle_query(sh, req, stream),
        ("POST", "/update") => handle_update(sh, req),
        ("GET", "/status") => handle_status(sh),
        (_, "/query") | (_, "/update") | (_, "/status") => {
            error_body(405, "method_not_allowed", "method not allowed", None)
        }
        _ => error_body(404, "not_found", "no such endpoint", None),
    }
}

/// RAII admission slot.
struct Slot<'a>(&'a Shared);

impl Drop for Slot<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

fn admit(sh: &Shared) -> Result<Slot<'_>, Response> {
    if sh.draining() {
        // ordering: Relaxed — standalone monitoring counter.
        sh.counters.rejected.fetch_add(1, Ordering::Relaxed);
        let mut resp = error_body(503, "overloaded", "server shutting down", Some(1));
        resp.close = true;
        return Err(resp);
    }
    if !sh.try_admit() {
        // ordering: Relaxed — standalone monitoring counter.
        sh.counters.rejected.fetch_add(1, Ordering::Relaxed);
        return Err(error_body(
            503,
            "overloaded",
            &format!("at capacity ({} requests in flight)", sh.cfg.max_in_flight),
            Some(1),
        ));
    }
    Ok(Slot(sh))
}

/// Extract the query text + language from the request per the
/// SPARQL-protocol subset: `GET ?query=…`, `POST` with the query as the
/// body (`Content-Type: application/sparql-query` or `application/sql`), or
/// a form-encoded `POST` body carrying `query=…`.
fn extract_query(req: &Request) -> Result<(String, bool), Response> {
    let content_type = req.header("content-type").unwrap_or("");
    let mut is_sql = req
        .param("lang")
        .is_some_and(|l| l.eq_ignore_ascii_case("sql"))
        || content_type.starts_with("application/sql");
    let text = if req.method == "GET" {
        req.param("query").map(str::to_string)
    } else if content_type.starts_with("application/x-www-form-urlencoded") {
        let body = String::from_utf8_lossy(&req.body);
        let form = http::parse_query_string(&body);
        is_sql = is_sql
            || form
                .iter()
                .any(|(k, v)| k == "lang" && v.eq_ignore_ascii_case("sql"));
        form.into_iter().find(|(k, _)| k == "query").map(|(_, v)| v)
    } else {
        match String::from_utf8(req.body.clone()) {
            Ok(s) if !s.trim().is_empty() => Some(s),
            _ => None,
        }
    };
    match text {
        Some(t) => Ok((t, is_sql)),
        None => Err(error_body(
            400,
            "bad_request",
            "missing query (use ?query=… or a request body)",
            None,
        )),
    }
}

fn handle_query(sh: &Shared, req: &Request, stream: &TcpStream) -> Response {
    let slot = match admit(sh) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let (text, is_sql) = match extract_query(req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let timeout = match req.param("timeout_ms") {
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms).min(sh.cfg.max_timeout)),
            Err(_) => return error_body(400, "bad_request", "timeout_ms must be an integer", None),
        },
        None => sh.cfg.default_timeout,
    };
    let trace = req
        .param("trace")
        .is_some_and(|v| v == "1" || v.eq_ignore_ascii_case("true"));

    let token = CancellationToken::new();
    let watch_id = sh.watch(stream, token.clone());
    let mut qreq = if is_sql {
        QueryRequest::sql(&text)
    } else {
        QueryRequest::sparql(&text)
    };
    qreq = qreq.cancel(token).traced(trace);
    if let Some(t) = timeout {
        qreq = qreq.timeout(t);
    }
    let result = sh.db.execute(&qreq);
    sh.unwatch(stream, watch_id);
    drop(slot);

    match result {
        Ok(resp) => {
            // ordering: Relaxed — standalone monitoring counter.
            sh.counters.served.fetch_add(1, Ordering::Relaxed);
            let tsv = req
                .header("accept")
                .is_some_and(|a| a.contains("text/tab-separated-values"));
            if tsv {
                render_tsv(&resp)
            } else {
                render_json(&resp, trace)
            }
        }
        Err(e) => {
            match e {
                // ordering: Relaxed — standalone monitoring counters.
                Error::Timeout => sh.counters.timeouts.fetch_add(1, Ordering::Relaxed),
                Error::Cancelled => sh.counters.cancelled.fetch_add(1, Ordering::Relaxed),
                _ => sh.counters.client_errors.fetch_add(1, Ordering::Relaxed),
            };
            error_response(&e, &text)
        }
    }
}

fn handle_update(sh: &Shared, req: &Request) -> Response {
    let _slot = match admit(sh) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return error_body(400, "bad_request", "body must be UTF-8 N-Triples", None),
    };
    let action = req.param("action").unwrap_or("insert");
    let outcome = match action {
        "insert" => sh.db.insert_ntriples(body).map(|n| ("inserted", n)),
        "delete" => match ntriples::parse_document(body) {
            Ok(triples) => sh.db.delete_triples(&triples).map(|n| ("deleted", n)),
            Err(e) => Err(Error::from(e)),
        },
        other => {
            return error_body(
                400,
                "bad_request",
                &format!("unknown action {other:?} (use insert or delete)"),
                None,
            )
        }
    };
    match outcome {
        Ok((verb, n)) => {
            // ordering: Relaxed — standalone monitoring counter.
            sh.counters.served.fetch_add(1, Ordering::Relaxed);
            Response::new(
                200,
                "application/json",
                Obj::new().num(verb, n as u64).build(),
            )
        }
        Err(e) => {
            // ordering: Relaxed — standalone monitoring counter.
            sh.counters.client_errors.fetch_add(1, Ordering::Relaxed);
            error_response(&e, body)
        }
    }
}

fn handle_status(sh: &Shared) -> Response {
    let drift = sh.db.drift_stats();
    let plans = sh.db.plan_cache_stats();
    let mem = sh.db.memory_stats();
    let body = Obj::new()
        .raw(
            "drift",
            &Obj::new()
                .num("n_base_triples", drift.n_base_triples)
                .num("n_delta_inserts", drift.n_delta_inserts)
                .num("n_tombstones", drift.n_tombstones)
                .num("matched_subjects", drift.matched_subjects)
                .num("unmatched_subjects", drift.unmatched_subjects)
                .num("delta_ratio", drift.delta_ratio())
                .num("irregular_ratio", drift.irregular_ratio())
                .build(),
        )
        .raw(
            "plan_cache",
            &Obj::new()
                .num("entries", plans.entries)
                .num("hits", plans.hits)
                .num("misses", plans.misses)
                .num("invalidations", plans.invalidations)
                .build(),
        )
        .raw(
            "memory",
            &Obj::new()
                .num("total_bytes", mem.total_bytes())
                .num("dict_bytes", mem.dict_bytes)
                .num("column_bytes", mem.column_bytes)
                .num("delta_bytes", mem.delta_bytes)
                .num("n_triples", mem.n_triples)
                .num("bytes_per_triple", mem.bytes_per_triple())
                .build(),
        )
        .raw(
            "server",
            &Obj::new()
                // ordering: Relaxed — monitoring reads of standalone counters.
                .num("in_flight", sh.in_flight.load(Ordering::Relaxed) as u64)
                .num("max_in_flight", sh.cfg.max_in_flight as u64)
                .num("served", sh.counters.served.load(Ordering::Relaxed))
                .num("rejected", sh.counters.rejected.load(Ordering::Relaxed))
                .num("timeouts", sh.counters.timeouts.load(Ordering::Relaxed))
                .num("cancelled", sh.counters.cancelled.load(Ordering::Relaxed))
                .num(
                    "client_errors",
                    sh.counters.client_errors.load(Ordering::Relaxed),
                )
                .bool("draining", sh.draining())
                .build(),
        )
        .build();
    Response::new(200, "application/json", body)
}

/// Serialize a successful query as the JSON results document:
/// `{"head":{"vars":[…]},"results":{"bindings":[[…],…]}}` with decoded
/// lexical values (an array-of-arrays subset of the SPARQL JSON format),
/// plus a `"stats"` object when tracing was requested.
fn render_json(resp: &QueryResponse, trace: bool) -> Response {
    let rows = resp.results.render(&resp.pin);
    let mut bindings = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            bindings.push(',');
        }
        bindings.push_str(&json::str_array(row.iter().map(String::as_str)));
    }
    bindings.push(']');
    let mut obj = Obj::new()
        .raw(
            "head",
            &Obj::new()
                .raw(
                    "vars",
                    &json::str_array(resp.results.columns.iter().map(String::as_str)),
                )
                .build(),
        )
        .raw("results", &Obj::new().raw("bindings", &bindings).build());
    if trace {
        if let Some(stats) = &resp.stats {
            obj = obj.raw(
                "stats",
                &Obj::new()
                    .num("rows_scanned", stats.rows_scanned)
                    .num("pages_scanned", stats.pages_scanned)
                    .num("merge_joins", stats.merge_joins)
                    .num("hash_joins", stats.hash_joins)
                    .num("rdf_scans", stats.rdf_scans)
                    .num("rdf_joins", stats.rdf_joins)
                    .build(),
            );
        }
    }
    Response::new(200, "application/sparql-results+json", obj.build())
}

/// Serialize a successful query as TSV: header row of variable names, then
/// one decoded row per line.
fn render_tsv(resp: &QueryResponse) -> Response {
    let mut out = resp.results.columns.join("\t");
    out.push('\n');
    for row in resp.results.render(&resp.pin) {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    Response::new(200, "text/tab-separated-values", out)
}

/// Map a library error onto the wire: status from the stable error code,
/// body `{"error":{"code":…,"message":…[,"detail":caret]}}`.
fn error_response(e: &Error, query_text: &str) -> Response {
    let status = match e.code() {
        "parse_error" | "sql_error" | "data_error" | "invalid_state" => 400,
        "timeout" => 408,
        "cancelled" => 499,
        "overloaded" => 503,
        _ => 500,
    };
    let detail = match e {
        Error::Sparql(pe) => Some(pe.render_caret(query_text)),
        _ => None,
    };
    let mut obj = Obj::new()
        .str("code", e.code())
        .str("message", &e.to_string());
    if let Some(d) = detail {
        obj = obj.str("detail", &d);
    }
    let mut resp = Response::new(
        status,
        "application/json",
        Obj::new().raw("error", &obj.build()).build(),
    );
    if status == 503 {
        resp.retry_after = Some(1);
    }
    resp
}

/// A standalone error response (no library error behind it).
fn error_body(status: u16, code: &str, message: &str, retry_after: Option<u64>) -> Response {
    let mut resp = Response::new(
        status,
        "application/json",
        Obj::new()
            .raw(
                "error",
                &Obj::new().str("code", code).str("message", message).build(),
            )
            .build(),
    );
    resp.retry_after = retry_after;
    resp
}
