//! Minimal HTTP/1.1 parsing and serialization over blocking sockets.
//!
//! Deliberately dependency-free: the server speaks just enough HTTP/1.1 for
//! the SPARQL-protocol subset — request line, headers, `Content-Length`
//! bodies, keep-alive — over `std::net` streams. No chunked encoding, no
//! TLS, no HTTP/2.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 64 * 1024;
/// Upper bound on a request body (N-Triples update batches can be sizable).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Decoded path, query string stripped.
    pub path: String,
    /// Decoded query-string parameters in order of appearance.
    pub params: Vec<(String, String)>,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query-string parameter with the given name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why [`read_request`] returned without a request.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end of stream, idle timeout, or server shutdown — close quietly.
    Closed,
    /// The bytes on the wire were not a well-formed request.
    Malformed(String),
    /// Transport failure (the error itself is unactionable — the peer is
    /// unreachable, so the connection just closes).
    Io,
}

/// Read one request from `stream`. `carry` holds bytes read past the end of
/// a previous request (keep-alive pipelining) and is updated in place. The
/// socket must have a read timeout set; on every timeout tick `stop()` is
/// consulted and `deadline` enforced, so a blocked reader notices shutdown
/// within one tick.
pub fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    deadline: Instant,
    stop: &dyn Fn() -> bool,
) -> Result<Request, ReadError> {
    let head_end = loop {
        if let Some(i) = find_head_end(carry) {
            break i;
        }
        if carry.len() > MAX_HEAD {
            return Err(ReadError::Malformed("request head too large".into()));
        }
        // An idle keep-alive connection times out only *between* requests:
        // receiving any byte of the next request head disarms the deadline.
        if stop() || (carry.is_empty() && Instant::now() >= deadline) {
            return Err(ReadError::Closed);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Closed),
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => continue,
            Err(_) => return Err(ReadError::Io),
        }
    };
    let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
    let body_start = head_end + 4;
    let mut req = parse_head(&head)?;
    let content_len = match req.header("content-length") {
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed("bad Content-Length".into()))?,
        None => 0,
    };
    if content_len > MAX_BODY {
        return Err(ReadError::Malformed("request body too large".into()));
    }
    while carry.len() < body_start + content_len {
        if stop() {
            return Err(ReadError::Closed);
        }
        let mut chunk = [0u8; 16 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Closed),
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => continue,
            Err(_) => return Err(ReadError::Io),
        }
    }
    req.body = carry[body_start..body_start + content_len].to_vec();
    carry.drain(..body_start + content_len);
    Ok(req)
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &str) -> Result<Request, ReadError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ReadError::Malformed("bad request line".into())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(raw_path),
        params: parse_query_string(raw_query),
        headers,
        body: Vec::new(),
    })
}

/// Decode `%XX` escapes and `+`-as-space (form/query-string convention).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => match hex_pair(bytes[i + 1], bytes[i + 2]) {
                Some(b) => {
                    out.push(b);
                    i += 3;
                }
                None => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_pair(hi: u8, lo: u8) -> Option<u8> {
    let d = |c: u8| match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    };
    Some(d(hi)? << 4 | d(lo)?)
}

/// Split `a=1&b=2` into decoded pairs; bare keys get an empty value.
pub fn parse_query_string(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// One response about to be serialized.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Emitted as a `Retry-After` header (503 backpressure hint).
    pub retry_after: Option<u64>,
    /// Emit `Connection: close` and drop the connection after writing.
    pub close: bool,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            retry_after: None,
            close: false,
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto the stream. Short writes are retried through the
/// socket's write timeout; an unreachable peer surfaces as the final error.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    if resp.close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// A sane per-read poll tick: long blocking reads are chopped into ticks so
/// shutdown and idle deadlines are noticed promptly.
pub const POLL_TICK: Duration = Duration::from_millis(50);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c%3f"), "a b c?");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_string_pairs() {
        let p = parse_query_string("query=SELECT+%3Fx&lang=sql&flag");
        assert_eq!(
            p,
            vec![
                ("query".into(), "SELECT ?x".into()),
                ("lang".into(), "sql".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn head_parsing() {
        let r = parse_head(
            "POST /query?lang=sql HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\nAccept: text/tab-separated-values",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/query");
        assert_eq!(r.param("lang"), Some("sql"));
        assert_eq!(r.header("content-length"), Some("3"));
        assert!(!r.wants_close());
    }

    #[test]
    fn bad_heads_are_rejected() {
        assert!(matches!(parse_head(""), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse_head("GET /x SPDY/9\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse_head("GET /x HTTP/1.1\r\nnocolon\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }
}
