//! Hand-rolled JSON serialization (strings, numbers, arrays, objects).
//!
//! The server emits a small, fixed family of documents — result sets,
//! status reports, error envelopes — so a writer-style builder is all that
//! is needed; no serde, no parsing.

/// Append `s` as a JSON string literal (quotes included).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON object under construction.
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str(&mut self.buf, k);
        self.buf.push(':');
    }

    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        push_str(&mut self.buf, v);
        self
    }

    pub fn num(mut self, k: &str, v: impl Num) -> Obj {
        self.key(k);
        v.write(&mut self.buf);
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Obj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Insert pre-serialized JSON (a nested object or array).
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn build(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Obj {
        Obj::new()
    }
}

/// Serialize a sequence as a JSON array of strings.
pub fn str_array<'a>(items: impl IntoIterator<Item = &'a str>) -> String {
    let mut out = String::from("[");
    for (i, s) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(&mut out, s);
    }
    out.push(']');
    out
}

/// Numbers that serialize losslessly into JSON.
pub trait Num {
    fn write(&self, out: &mut String);
}

macro_rules! int_num {
    ($($t:ty),*) => {$(
        impl Num for $t {
            fn write(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
int_num!(u16, u32, u64, usize, i64);

impl Num for f64 {
    fn write(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn object_building() {
        let o = Obj::new()
            .str("a", "x")
            .num("b", 2u64)
            .bool("c", true)
            .num("d", 0.5f64)
            .raw("e", "[1]")
            .build();
        assert_eq!(o, r#"{"a":"x","b":2,"c":true,"d":0.5,"e":[1]}"#);
        assert_eq!(str_array(["p", "q"]), r#"["p","q"]"#);
        assert_eq!(Obj::new().build(), "{}");
    }
}
