//! Operator-level unit tests: aggregation/finalization, ordering, the
//! cardinality estimators and plan explanation — exercised through small
//! hand-built stores.

use sordf_columnar::{BufferPool, DiskManager};
use sordf_engine::agg::{cmp_outval, finalize, OutVal};
use sordf_engine::cardest::{estimate_star_cs, estimate_star_independence};
use sordf_engine::query::OrderKey;
use sordf_engine::star::stars_of;
use sordf_engine::{
    execute, explain, AggFunc, CmpOp, ExecConfig, ExecContext, Expr, PlanScheme, Query, SelectItem,
    StorageRef, Table, TriplePattern, VarId, VarOrOid,
};
use sordf_model::{Dictionary, Oid, Term, TermTriple};
use sordf_schema::SchemaConfig;
use sordf_storage::{build_clustered, reorganize, ClusterSpec, TripleSet};
use std::sync::Arc;

struct Fix {
    _dm: Arc<DiskManager>,
    pool: BufferPool,
    ts: TripleSet,
    store: sordf_storage::ClusteredStore,
    schema: sordf_schema::EmergentSchema,
}

/// 60 products with group/price/stock; 6 groups.
fn fixture() -> Fix {
    let mut ts = TripleSet::new();
    for i in 0..60u64 {
        let s = format!("http://e/prod{i}");
        let mut add = |p: &str, o: Term| {
            ts.add(&TermTriple::new(
                Term::iri(s.clone()),
                Term::iri(format!("http://e/{p}")),
                o,
            ))
            .unwrap();
        };
        add("group", Term::str(format!("g{}", i % 6)));
        add("price", Term::int((i % 10) as i64 * 5));
        add("stock", Term::int(i as i64));
    }
    let dm = Arc::new(DiskManager::temp().unwrap());
    let spo = ts.sorted_spo();
    let mut schema = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
    let spec = ClusterSpec::auto(&schema);
    reorganize(&mut ts, &mut schema, &spec);
    let spo = ts.sorted_spo();
    let store = build_clustered(&dm, &spo, &mut schema, &spec, true);
    let pool = BufferPool::new(Arc::clone(&dm), 256);
    Fix {
        _dm: dm,
        pool,
        ts,
        store,
        schema,
    }
}

fn cx(f: &Fix) -> ExecContext<'_> {
    ExecContext::new(
        &f.pool,
        &f.ts.dict,
        StorageRef::Clustered {
            store: &f.store,
            schema: &f.schema,
        },
        ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            ..Default::default()
        },
    )
}

fn base_query(f: &Fix) -> Query {
    let mut q = Query::default();
    let s = q.var("s");
    let g = q.var("g");
    let p = q.var("p");
    let pred = |name: &str| f.ts.dict.iri_oid(&format!("http://e/{name}")).unwrap();
    q.patterns.push(TriplePattern {
        s: VarOrOid::Var(s),
        p: pred("group"),
        o: VarOrOid::Var(g),
    });
    q.patterns.push(TriplePattern {
        s: VarOrOid::Var(s),
        p: pred("price"),
        o: VarOrOid::Var(p),
    });
    q
}

#[test]
fn group_by_with_all_aggregates() {
    let f = fixture();
    let mut q = base_query(&f);
    let g = q.var("g");
    let p = q.var("p");
    q.select = vec![
        SelectItem::Var(g),
        SelectItem::Agg {
            func: AggFunc::Count,
            expr: Expr::Num(1.0),
            name: "n".into(),
        },
        SelectItem::Agg {
            func: AggFunc::Sum,
            expr: Expr::Var(p),
            name: "sum".into(),
        },
        SelectItem::Agg {
            func: AggFunc::Avg,
            expr: Expr::Var(p),
            name: "avg".into(),
        },
        SelectItem::Agg {
            func: AggFunc::Min,
            expr: Expr::Var(p),
            name: "min".into(),
        },
        SelectItem::Agg {
            func: AggFunc::Max,
            expr: Expr::Var(p),
            name: "max".into(),
        },
    ];
    q.group_by = vec![g];
    q.order_by = vec![OrderKey {
        output: 0,
        ascending: true,
    }];
    let rs = execute(&cx(&f), &q);
    assert_eq!(rs.len(), 6);
    let rows = rs.render(&f.ts.dict);
    // Group g0 holds products 0,6,12,...,54: prices (i%10)*5.
    assert_eq!(rows[0][0], "g0");
    assert_eq!(rows[0][1], "10");
    let avg: f64 = rows[0][3].parse().unwrap();
    let min: f64 = rows[0][4].parse().unwrap();
    let max: f64 = rows[0][5].parse().unwrap();
    assert!(min <= avg && avg <= max);
}

#[test]
fn order_by_desc_with_limit() {
    let f = fixture();
    let mut q = base_query(&f);
    let p = q.var("p");
    let s = q.var("s");
    q.select = vec![SelectItem::Var(s), SelectItem::Var(p)];
    q.order_by = vec![OrderKey {
        output: 1,
        ascending: false,
    }];
    q.limit = Some(5);
    let rs = execute(&cx(&f), &q);
    assert_eq!(rs.len(), 5);
    let prices: Vec<f64> = rs
        .render(&f.ts.dict)
        .iter()
        .map(|r| r[1].parse().unwrap())
        .collect();
    assert!(prices.windows(2).all(|w| w[0] >= w[1]));
    assert_eq!(prices[0], 45.0);
}

#[test]
fn global_aggregate_without_group_by() {
    let f = fixture();
    let mut q = base_query(&f);
    let p = q.var("p");
    q.select = vec![SelectItem::Agg {
        func: AggFunc::Count,
        expr: Expr::Var(p),
        name: "n".into(),
    }];
    let rs = execute(&cx(&f), &q);
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.render(&f.ts.dict)[0][0], "60");
}

#[test]
fn select_expression_projection() {
    let f = fixture();
    let mut q = base_query(&f);
    let p = q.var("p");
    q.select = vec![SelectItem::Expr {
        expr: Expr::Arith(
            Box::new(Expr::Var(p)),
            sordf_engine::expr::ArithOp::Mul,
            Box::new(Expr::Num(2.0)),
        ),
        name: "double_price".into(),
    }];
    q.distinct = true;
    let rs = execute(&cx(&f), &q);
    assert_eq!(rs.columns, vec!["double_price"]);
    assert_eq!(rs.len(), 10);
}

#[test]
fn outval_ordering_null_last_and_strings_textual() {
    let dict = Dictionary::new();
    let zebra = dict.encode_term(&Term::str("zebra")).unwrap();
    let apple = dict.encode_term(&Term::str("apple")).unwrap();
    assert_eq!(
        cmp_outval(&OutVal::Oid(apple), &OutVal::Oid(zebra), &dict),
        std::cmp::Ordering::Less
    );
    assert_eq!(
        cmp_outval(&OutVal::Null, &OutVal::Num(1.0), &dict),
        std::cmp::Ordering::Greater
    );
    assert_eq!(
        cmp_outval(
            &OutVal::Num(2.0),
            &OutVal::Oid(Oid::from_int(3).unwrap()),
            &dict
        ),
        std::cmp::Ordering::Less
    );
}

#[test]
fn finalize_on_empty_table_yields_no_rows() {
    let f = fixture();
    let mut q = base_query(&f);
    let p = q.var("p");
    q.select = vec![SelectItem::Var(p)];
    let rs = finalize(&cx(&f), &q, &Table::default());
    assert!(rs.is_empty());
    assert_eq!(rs.columns.len(), 1);
}

#[test]
fn cs_estimate_beats_independence_on_correlated_star() {
    let f = fixture();
    let mut q = base_query(&f);
    let (stars, _) = stars_of(&mut q);
    let c = cx(&f);
    let truth = 60.0;
    let cs = estimate_star_cs(&c, &stars[0], &[]).unwrap();
    let ind = estimate_star_independence(&c, &stars[0], &[]);
    let qerr = |e: f64| (e.max(1.0) / truth).max(truth / e.max(1.0));
    assert!(
        qerr(cs) <= qerr(ind) + 1e-9,
        "CS estimate ({cs}) should not be worse than independence ({ind})"
    );
    assert!(
        qerr(cs) < 1.05,
        "CS estimate should be nearly exact, got {cs}"
    );
}

#[test]
fn estimate_accounts_for_filters() {
    let f = fixture();
    let mut q = base_query(&f);
    let p = q.var("p");
    let (stars, _) = stars_of(&mut q);
    let c = cx(&f);
    let unfiltered = estimate_star_cs(&c, &stars[0], &[]).unwrap();
    let filter = Expr::cmp(
        Expr::Var(p),
        CmpOp::Eq,
        Expr::Const(Oid::from_int(5).unwrap()),
    );
    let refs = vec![&filter];
    let filtered = estimate_star_cs(&c, &stars[0], &refs).unwrap();
    assert!(filtered < unfiltered, "{filtered} !< {unfiltered}");
}

#[test]
fn explain_structure() {
    let f = fixture();
    let q = base_query(&f);
    let c = cx(&f);
    let plan = explain(&c, &q);
    assert_eq!(plan.n_stars, 1);
    assert_eq!(plan.intra_star_joins, 0);
    assert!(plan.text.contains("RDFscan"));
    assert_eq!(plan.estimates.len(), 1);

    let c2 = ExecContext::new(
        &f.pool,
        &f.ts.dict,
        StorageRef::Clustered {
            store: &f.store,
            schema: &f.schema,
        },
        ExecConfig {
            scheme: PlanScheme::Default,
            zonemaps: false,
            ..Default::default()
        },
    );
    let plan2 = explain(&c2, &q);
    assert_eq!(plan2.intra_star_joins, 1, "2 patterns -> 1 merge join");
    assert!(plan2.text.contains("IdxScan"));
}

#[test]
fn duplicate_object_vars_are_rewritten_not_lost() {
    // ?s group ?x . ?s price ?x — same var twice in one star: must compare.
    let f = fixture();
    let mut q = Query::default();
    let s = q.var("s");
    let x = q.var("x");
    let pred = |name: &str| f.ts.dict.iri_oid(&format!("http://e/{name}")).unwrap();
    q.patterns.push(TriplePattern {
        s: VarOrOid::Var(s),
        p: pred("price"),
        o: VarOrOid::Var(x),
    });
    q.patterns.push(TriplePattern {
        s: VarOrOid::Var(s),
        p: pred("stock"),
        o: VarOrOid::Var(x),
    });
    let rs = execute(&cx(&f), &q);
    // price == stock requires (i%10)*5 == i: i in {0, 45} -> 45*? check:
    // i=0: price 0, stock 0 ✓; i=45: price (45%10)*5=25, stock 45 ✗.
    // i must satisfy i == (i%10)*5: i=0 ✓, i=5 -> 25≠5, i=25: price 25, stock 25 ✓
    let expected = (0..60u64).filter(|i| (i % 10) * 5 == *i).count();
    assert_eq!(rs.len(), expected);
    assert!(expected >= 2, "fixture should have matches (0 and 25)");
}

#[test]
fn cross_star_join_uses_all_shared_vars() {
    // Two stars sharing BOTH the subject-link var ?t and a second var ?s
    // (star B points back at star A's subject). Joining on ?t alone — the
    // old single-link behavior — would admit the poison row t1 -back-> s2.
    let mut ts = TripleSet::new();
    let mut add = |s: &str, p: &str, o: Term| {
        ts.add(&TermTriple::new(
            Term::iri(format!("http://e/{s}")),
            Term::iri(format!("http://e/{p}")),
            o,
        ))
        .unwrap();
    };
    let iri = |n: &str| Term::iri(format!("http://e/{n}"));
    add("s1", "knows", iri("t1"));
    add("s1", "val", Term::int(1));
    add("s2", "knows", iri("t2"));
    add("s2", "val", Term::int(2));
    add("t1", "back", iri("s1"));
    add("t1", "back", iri("s2")); // matches on ?t but not ?s: must be dropped
    add("t1", "tag", Term::str("X"));
    add("t2", "back", iri("s2"));
    add("t2", "tag", Term::str("Y"));

    let dm = Arc::new(DiskManager::temp().unwrap());
    let spo = ts.sorted_spo();
    let mut schema = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
    let spec = ClusterSpec::auto(&schema);
    let store = build_clustered(&dm, &spo, &mut schema, &spec, false);
    let pool = BufferPool::new(Arc::clone(&dm), 64);

    let mut q = Query::default();
    let s = q.var("s");
    let t = q.var("t");
    let v = q.var("v");
    let g = q.var("g");
    let pred = |name: &str| ts.dict.iri_oid(&format!("http://e/{name}")).unwrap();
    for (sv, p, ov) in [
        (s, "knows", t),
        (s, "val", v),
        (t, "back", s),
        (t, "tag", g),
    ] {
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(sv),
            p: pred(p),
            o: VarOrOid::Var(ov),
        });
    }

    for scheme in [PlanScheme::Default, PlanScheme::RdfScanJoin] {
        let cx = ExecContext::new(
            &pool,
            &ts.dict,
            StorageRef::Clustered {
                store: &store,
                schema: &schema,
            },
            ExecConfig {
                scheme,
                zonemaps: true,
                ..Default::default()
            },
        );
        let rs = execute(&cx, &q);
        assert_eq!(
            rs.len(),
            2,
            "{scheme:?}: only mutually-consistent (s,t) pairs survive"
        );
        let rows = rs.canonical(&ts.dict);
        assert!(rows.iter().any(|r| r.contains("s1") && r.contains("X")));
        assert!(rows.iter().any(|r| r.contains("s2") && r.contains("Y")));
        assert!(
            !rows.iter().any(|r| r.contains("s2") && r.contains("X")),
            "{scheme:?}: poison row joined on ?t only"
        );
    }
}

#[test]
fn var_id_layout_is_stable() {
    assert_eq!(std::mem::size_of::<VarId>(), 2);
    assert_eq!(std::mem::size_of::<VarOrOid>(), 16);
}
