//! Vectorized-vs-rowwise differential: the pinned-slice operators in
//! `scan`/`star` must return **byte-identical** tables to the value-at-a-time
//! originals preserved in `sordf_engine::rowwise`, on arbitrary RDF data,
//! across every storage generation and restriction shape. This is the
//! correctness contract of the vectorization PR: chunk-at-a-time execution is
//! a pure access-path change, never a semantic one.

use proptest::prelude::*;
use sordf_columnar::{BufferPool, DiskManager};
use sordf_engine::rowwise;
use sordf_engine::scan::{scan_property, ORestrict, Source};
use sordf_engine::star::{eval_star_default, eval_star_rdfscan, Star, StarProp};
use sordf_engine::{CmpOp, ExecConfig, ExecContext, Expr, PlanScheme, Query, StorageRef, VarOrOid};
use sordf_model::{Oid, Term, TermTriple};
use sordf_schema::SchemaConfig;
use sordf_storage::{build_clustered, reorganize, BaselineStore, ClusterSpec, TripleSet};
use std::sync::Arc;

/// A random mostly-regular graph: `n` subjects over a small property pool,
/// with controlled NULL-ness, multi-values, and type exceptions so that
/// columns, side tables, and the irregular store are all exercised.
fn arb_graph() -> impl Strategy<Value = Vec<TermTriple>> {
    (
        2usize..40,                                          // subjects
        proptest::collection::vec((0u32..5, 0u8..4), 0..60), // (subject, quirk) noise
    )
        .prop_map(|(n, noise)| {
            let mut triples = Vec::new();
            for i in 0..n as u64 {
                let s = Term::iri(format!("http://t/s{i}"));
                triples.push(TermTriple::new(
                    s.clone(),
                    Term::iri("http://t/qty"),
                    Term::int((i % 13) as i64),
                ));
                if i % 4 != 0 {
                    // nullable column
                    triples.push(TermTriple::new(
                        s.clone(),
                        Term::iri("http://t/price"),
                        Term::int((i % 7) as i64 * 10),
                    ));
                }
                triples.push(TermTriple::new(
                    s.clone(),
                    Term::iri("http://t/date"),
                    Term::date(&format!("1996-{:02}-{:02}", (i % 12) + 1, (i % 28) + 1)),
                ));
            }
            for (si, quirk) in noise {
                let s = Term::iri(format!("http://t/s{}", si as u64 % n as u64));
                match quirk {
                    0 => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/qty"),
                        Term::str("exception"),
                    )),
                    1 => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/tag"),
                        Term::iri(format!("http://t/tag{}", si % 3)),
                    )),
                    2 => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/rare"),
                        Term::int(si as i64),
                    )),
                    _ => triples.push(TermTriple::new(
                        Term::iri(format!("http://t/odd{si}")),
                        Term::iri("http://t/zzz"),
                        Term::str(format!("x{si}")),
                    )),
                }
            }
            triples
        })
}

struct Gen {
    _dm: Arc<DiskManager>,
    pool: BufferPool,
    dict: sordf_model::Dictionary,
    baseline: BaselineStore,
    sparse: sordf_storage::ClusteredStore,
    sparse_schema: sordf_schema::EmergentSchema,
    dense: sordf_storage::ClusteredStore,
    dense_schema: sordf_schema::EmergentSchema,
    dense_dict: sordf_model::Dictionary,
}

fn build(triples: &[TermTriple]) -> Gen {
    let mut ts = TripleSet::new();
    ts.extend_terms(triples).unwrap();
    let dm = Arc::new(DiskManager::temp().unwrap());
    let spo = ts.sorted_spo();
    let baseline = BaselineStore::build(&dm, &spo);
    let mut sparse_schema = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
    let spec = ClusterSpec::auto(&sparse_schema);
    let sparse = build_clustered(&dm, &spo, &mut sparse_schema, &spec, false);
    let dict = ts.dict.clone();

    let mut dense_schema = sparse_schema.clone();
    reorganize(&mut ts, &mut dense_schema, &spec);
    let spo = ts.sorted_spo();
    let dense = build_clustered(&dm, &spo, &mut dense_schema, &spec, true);
    let pool = BufferPool::new(Arc::clone(&dm), 512);
    Gen {
        _dm: dm,
        pool,
        dict,
        baseline,
        sparse,
        sparse_schema,
        dense,
        dense_schema,
        dense_dict: ts.dict,
    }
}

fn contexts<'a>(g: &'a Gen, zonemaps: bool) -> Vec<(&'static str, ExecContext<'a>)> {
    let mk = |storage, dict| {
        ExecContext::new(
            &g.pool,
            dict,
            storage,
            ExecConfig {
                scheme: PlanScheme::RdfScanJoin,
                zonemaps,
                ..Default::default()
            },
        )
    };
    vec![
        ("baseline", mk(StorageRef::Baseline(&g.baseline), &g.dict)),
        (
            "sparse-cs",
            mk(
                StorageRef::Clustered {
                    store: &g.sparse,
                    schema: &g.sparse_schema,
                },
                &g.dict,
            ),
        ),
        (
            "dense-cs",
            mk(
                StorageRef::Clustered {
                    store: &g.dense,
                    schema: &g.dense_schema,
                },
                &g.dense_dict,
            ),
        ),
    ]
}

/// Tables must agree exactly: same variables, same columns, same row order.
fn assert_tables_identical(a: &sordf_engine::Table, b: &sordf_engine::Table, what: &str) {
    assert_eq!(a.vars, b.vars, "{what}: variable layout");
    assert_eq!(a.cols, b.cols, "{what}: column contents");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scan_property_matches_rowwise(
        triples in arb_graph(),
        prop_pick in 0usize..5,
        restrict_kind in 0u8..3,
        lo in 0i64..12,
        width in 0i64..8,
        zonemaps in any::<bool>(),
    ) {
        let g = build(&triples);
        let preds = ["qty", "price", "date", "tag", "zzz"];
        for (name, cx) in contexts(&g, zonemaps) {
            let Some(p) = cx.dict.iri_oid(&format!("http://t/{}", preds[prop_pick])) else {
                continue;
            };
            let restrict = match restrict_kind {
                0 => ORestrict::none(),
                1 => ORestrict::eq(Oid::from_int(lo).unwrap()),
                _ => ORestrict {
                    eq: None,
                    range: Some((
                        Oid::from_int(lo).unwrap().raw(),
                        Oid::from_int(lo + width).unwrap().raw(),
                    )),
                },
            };
            for source in [Source::Full, Source::IrregularOnly] {
                let vectorized = scan_property(&cx, p, &restrict, None, source);
                let reference = rowwise::scan_property_rowwise(&cx, p, &restrict, None, source);
                prop_assert_eq!(
                    &vectorized, &reference,
                    "scan_property disagrees on {} (zm={})", name, zonemaps
                );
            }
        }
    }

    #[test]
    fn star_eval_matches_rowwise(
        triples in arb_graph(),
        width in 1usize..4,
        filter_lo in 0i64..12,
        use_candidates in any::<bool>(),
        zonemaps in any::<bool>(),
    ) {
        let g = build(&triples);
        let preds = ["qty", "price", "date"];
        for (name, cx) in contexts(&g, zonemaps) {
            let mut q = Query::default();
            let sv = q.var("s");
            let mut props = Vec::new();
            let mut ok = true;
            for p in preds.iter().take(width) {
                match cx.dict.iri_oid(&format!("http://t/{p}")) {
                    Some(oid) => {
                        let v = q.var(&format!("o_{p}"));
                        props.push(StarProp { pred: oid, o: VarOrOid::Var(v) });
                    }
                    None => ok = false,
                }
            }
            if !ok {
                continue;
            }
            let star = Star { subject_var: sv, subject_const: None, props };
            // A pushable range filter on the first object variable.
            let filter = Expr::cmp(
                Expr::Var(q.var("o_qty")),
                CmpOp::Ge,
                Expr::Const(Oid::from_int(filter_lo).unwrap()),
            );
            let filters = [&filter];

            // Candidate list: every other subject, sorted (RDFjoin drive).
            let all_subjects: Vec<Oid> = {
                let mut s: Vec<Oid> = scan_property(
                    &cx,
                    star.props[0].pred,
                    &ORestrict::none(),
                    None,
                    Source::Full,
                )
                .into_iter()
                .map(|(s, _)| s)
                .collect();
                s.dedup();
                s.into_iter().step_by(2).collect()
            };
            let cands = use_candidates.then_some(all_subjects.as_slice());

            let vec_scan = eval_star_rdfscan(&cx, &star, &filters, cands, None);
            let ref_scan = rowwise::eval_star_rdfscan_rowwise(&cx, &star, &filters, cands, None);
            assert_tables_identical(&vec_scan, &ref_scan, &format!("rdfscan on {name}"));

            let vec_def = eval_star_default(&cx, &star, &filters, cands, None, Source::Full);
            let ref_def =
                rowwise::eval_star_default_rowwise(&cx, &star, &filters, cands, None, Source::Full);
            assert_tables_identical(&vec_def, &ref_def, &format!("default on {name}"));
        }
    }
}
