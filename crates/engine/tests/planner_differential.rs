//! Optimizer differential: the cost-based plan picked by
//! [`sordf_engine::optimize`] must return results **canonically identical**
//! to every forced star-order permutation ([`optimize_with_order`]), across
//! the sequential, morsel-parallel, and value-at-a-time executors, both plan
//! schemes, every storage generation, and with or without pending delta
//! writes. Cost-based planning is a pure choice among equivalent plans —
//! never a semantic change.

use proptest::prelude::*;
use sordf_columnar::{BufferPool, DiskManager};
use sordf_engine::parallel::{execute_physical_parallel, ParallelConfig};
use sordf_engine::rowwise;
use sordf_engine::{
    execute_physical_seq, execute_with, optimize, optimize_with_order, prepare, CmpOp, ExecConfig,
    ExecContext, Expr, PlanScheme, Query, StorageRef, TriplePattern, VarOrOid,
};
use sordf_model::{Oid, Term, TermTriple, Triple};
use sordf_schema::SchemaConfig;
use sordf_storage::{
    build_clustered, reorganize, BaselineStore, ClusterSpec, DeltaStore, TripleSet,
};
use std::sync::Arc;

/// A random mostly-regular graph with two entity kinds (subjects and tags)
/// so multi-star queries have real foreign-key links, plus irregular noise.
fn arb_graph() -> impl Strategy<Value = Vec<TermTriple>> {
    (
        2usize..30,
        proptest::collection::vec((0u32..5, 0u8..3), 0..40),
    )
        .prop_map(|(n, noise)| {
            let mut triples = Vec::new();
            for t in 0..3u64 {
                triples.push(TermTriple::new(
                    Term::iri(format!("http://t/tag{t}")),
                    Term::iri("http://t/label"),
                    Term::int(t as i64 * 11),
                ));
            }
            for i in 0..n as u64 {
                let s = Term::iri(format!("http://t/s{i}"));
                triples.push(TermTriple::new(
                    s.clone(),
                    Term::iri("http://t/qty"),
                    Term::int((i % 13) as i64),
                ));
                if i % 4 != 0 {
                    triples.push(TermTriple::new(
                        s.clone(),
                        Term::iri("http://t/price"),
                        Term::int((i % 7) as i64 * 10),
                    ));
                }
                triples.push(TermTriple::new(
                    s,
                    Term::iri("http://t/tag"),
                    Term::iri(format!("http://t/tag{}", i % 3)),
                ));
            }
            for (si, quirk) in noise {
                let s = Term::iri(format!("http://t/s{}", si as u64 % n as u64));
                match quirk {
                    0 => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/qty"),
                        Term::str("exception"),
                    )),
                    1 => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/tag"),
                        Term::iri(format!("http://t/tag{}", si % 3)),
                    )),
                    _ => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/rare"),
                        Term::int(si as i64),
                    )),
                }
            }
            triples
        })
}

struct Gen {
    _dm: Arc<DiskManager>,
    pool: BufferPool,
    dict: sordf_model::Dictionary,
    baseline: BaselineStore,
    sparse: sordf_storage::ClusteredStore,
    sparse_schema: sordf_schema::EmergentSchema,
    dense: sordf_storage::ClusteredStore,
    dense_schema: sordf_schema::EmergentSchema,
    dense_dict: sordf_model::Dictionary,
}

fn build(triples: &[TermTriple]) -> Gen {
    let mut ts = TripleSet::new();
    ts.extend_terms(triples).unwrap();
    let dm = Arc::new(DiskManager::temp().unwrap());
    let spo = ts.sorted_spo();
    let baseline = BaselineStore::build(&dm, &spo);
    let mut sparse_schema = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
    let spec = ClusterSpec::auto(&sparse_schema);
    let sparse = build_clustered(&dm, &spo, &mut sparse_schema, &spec, false);
    let dict = ts.dict.clone();

    let mut dense_schema = sparse_schema.clone();
    reorganize(&mut ts, &mut dense_schema, &spec);
    let spo = ts.sorted_spo();
    let dense = build_clustered(&dm, &spo, &mut dense_schema, &spec, true);
    let pool = BufferPool::new(Arc::clone(&dm), 512);
    Gen {
        _dm: dm,
        pool,
        dict,
        baseline,
        sparse,
        sparse_schema,
        dense,
        dense_schema,
        dense_dict: ts.dict,
    }
}

fn contexts<'a>(
    g: &'a Gen,
    scheme: PlanScheme,
    zonemaps: bool,
) -> Vec<(&'static str, ExecContext<'a>, &'a sordf_model::Dictionary)> {
    let mk = |storage, dict| {
        ExecContext::new(
            &g.pool,
            dict,
            storage,
            ExecConfig {
                scheme,
                zonemaps,
                ..Default::default()
            },
        )
    };
    vec![
        (
            "baseline",
            mk(StorageRef::Baseline(&g.baseline), &g.dict),
            &g.dict,
        ),
        (
            "sparse-cs",
            mk(
                StorageRef::Clustered {
                    store: &g.sparse,
                    schema: &g.sparse_schema,
                },
                &g.dict,
            ),
            &g.dict,
        ),
        (
            "dense-cs",
            mk(
                StorageRef::Clustered {
                    store: &g.dense,
                    schema: &g.dense_schema,
                },
                &g.dense_dict,
            ),
            &g.dense_dict,
        ),
    ]
}

/// A pending write batch for one generation's dictionary: a fresh subject
/// with the regular star, plus one extra `qty` on an existing subject.
/// Returns `None` for dictionaries missing the needed OIDs.
fn delta_for(dict: &sordf_model::Dictionary) -> Option<DeltaStore> {
    let p = |n: &str| dict.iri_oid(&format!("http://t/{n}"));
    let s0 = dict.iri_oid("http://t/s0")?;
    let tag0 = dict.iri_oid("http://t/tag0")?;
    let qty = p("qty")?;
    let tag = p("tag")?;
    let mut ds = DeltaStore::new();
    let _ = ds.insert_run(vec![
        Triple {
            s: s0,
            p: qty,
            o: Oid::from_int(99).unwrap(),
        },
        Triple {
            s: tag0,
            p: tag,
            o: Oid::from_int(7).unwrap(),
        },
    ]);
    Some(ds)
}

/// A chained multi-star BGP: the subject star (1-3 props), optionally the
/// tag star reached through `?s tag ?t`, with a range filter on qty.
fn make_query(dict: &sordf_model::Dictionary, width: usize, link: bool, lo: i64) -> Option<Query> {
    let mut q = Query::default();
    let s = q.var("s");
    let preds = ["qty", "price", "date"];
    for p in preds.iter().take(width) {
        let oid = dict.iri_oid(&format!("http://t/{p}"))?;
        let v = q.var(&format!("o_{p}"));
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(s),
            p: oid,
            o: VarOrOid::Var(v),
        });
    }
    if link {
        let tag = dict.iri_oid("http://t/tag")?;
        let label = dict.iri_oid("http://t/label")?;
        let t = q.var("t");
        let l = q.var("l");
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(s),
            p: tag,
            o: VarOrOid::Var(t),
        });
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(t),
            p: label,
            o: VarOrOid::Var(l),
        });
    }
    let qty = q.var("o_qty");
    q.filters.push(Expr::cmp(
        Expr::Var(qty),
        CmpOp::Ge,
        Expr::Const(Oid::from_int(lo).unwrap()),
    ));
    Some(q)
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            rec(items, k + 1, out);
            items.swap(k, i);
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    rec(&mut items, 0, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimizer_plan_matches_every_forced_order(
        triples in arb_graph(),
        width in 1usize..4,
        link in any::<bool>(),
        lo in 0i64..12,
        zonemaps in any::<bool>(),
        scheme_pick in any::<bool>(),
        with_delta in any::<bool>(),
    ) {
        let g = build(&triples);
        let scheme = if scheme_pick { PlanScheme::RdfScanJoin } else { PlanScheme::Default };
        for (name, mut cx, dict) in contexts(&g, scheme, zonemaps) {
            let delta = if with_delta {
                let Some(ds) = delta_for(dict) else { continue };
                ds.current_view_arc()
            } else {
                None
            };
            cx = cx.with_delta(delta);
            let Some(q) = make_query(dict, width, link, lo) else { continue };
            let (q, lp) = prepare(&q);

            // The optimizer's pick, through all three executors.
            let pp = optimize(&cx, &lp);
            let chosen = execute_physical_seq(&cx, &q, &lp, &pp).canonical(dict);
            let row = execute_with(&cx, &q, &|cx, star, access, filters, cands, s_range| {
                rowwise::eval_star_rowwise(cx, star, access, filters, cands, s_range)
            });
            prop_assert_eq!(
                &chosen, &row.canonical(dict),
                "optimizer plan: sequential vs rowwise on {} ({:?}, zm={}, delta={})",
                name, scheme, zonemaps, with_delta
            );
            let par = ParallelConfig { workers: 3, min_morsel_pages: 1, min_morsel_rows: 1 };
            let par_rs = execute_physical_parallel(&cx, &q, &lp, &pp, &par);
            prop_assert_eq!(
                &chosen, &par_rs.canonical(dict),
                "optimizer plan: sequential vs parallel on {} ({:?}, zm={}, delta={})",
                name, scheme, zonemaps, with_delta
            );

            // Every forced star-order permutation must agree with the pick —
            // and the optimizer's cost must be the minimum over all orders.
            let mut best_forced = f64::INFINITY;
            for perm in permutations(lp.stars.len()) {
                let forced = optimize_with_order(&cx, &lp, &perm);
                best_forced = best_forced.min(forced.total_cost);
                let rs = execute_physical_seq(&cx, &q, &lp, &forced);
                prop_assert_eq!(
                    &chosen, &rs.canonical(dict),
                    "forced order {:?} diverged on {} ({:?}, zm={}, delta={})",
                    perm, name, scheme, zonemaps, with_delta
                );
            }
            prop_assert!(
                pp.total_cost <= best_forced * (1.0 + 1e-9),
                "optimizer cost {} above best forced order {} on {}",
                pp.total_cost, best_forced, name
            );
        }
    }
}
