//! Parallel-vs-sequential differential: the morsel-parallel executor in
//! `sordf_engine::parallel` must return **byte-identical** results to the
//! sequential planner — and both must agree with the value-at-a-time
//! reference operators in `sordf_engine::rowwise` — on arbitrary RDF data,
//! across every storage generation, plan scheme, and worker count. This is
//! the correctness contract of the parallelization PR: morsel execution is a
//! pure scheduling change, never a semantic one.

use proptest::prelude::*;
use sordf_columnar::{BufferPool, DiskManager};
use sordf_engine::parallel::{execute_parallel, ParallelConfig};
use sordf_engine::rowwise;
use sordf_engine::star::Star;
use sordf_engine::{
    execute, execute_with, AggFunc, CmpOp, ExecConfig, ExecContext, Expr, PlanScheme, Query,
    SelectItem, StorageRef, TriplePattern, VarOrOid,
};
use sordf_model::{Oid, Term, TermTriple};
use sordf_schema::SchemaConfig;
use sordf_storage::{build_clustered, reorganize, BaselineStore, ClusterSpec, TripleSet};
use std::sync::Arc;

/// A random mostly-regular graph: `n` subjects over a small property pool,
/// with NULLs, multi-values, type exceptions, and a second entity kind
/// (tags, with their own `label` property) so cross-star links exercise
/// RDFjoin's candidate-driven path.
fn arb_graph() -> impl Strategy<Value = Vec<TermTriple>> {
    (
        2usize..40,                                          // subjects
        proptest::collection::vec((0u32..5, 0u8..4), 0..60), // (subject, quirk) noise
    )
        .prop_map(|(n, noise)| {
            let mut triples = Vec::new();
            for t in 0..3u64 {
                triples.push(TermTriple::new(
                    Term::iri(format!("http://t/tag{t}")),
                    Term::iri("http://t/label"),
                    Term::int(t as i64 * 11),
                ));
            }
            for i in 0..n as u64 {
                let s = Term::iri(format!("http://t/s{i}"));
                triples.push(TermTriple::new(
                    s.clone(),
                    Term::iri("http://t/qty"),
                    Term::int((i % 13) as i64),
                ));
                if i % 4 != 0 {
                    triples.push(TermTriple::new(
                        s.clone(),
                        Term::iri("http://t/price"),
                        Term::int((i % 7) as i64 * 10),
                    ));
                }
                triples.push(TermTriple::new(
                    s.clone(),
                    Term::iri("http://t/date"),
                    Term::date(&format!("1996-{:02}-{:02}", (i % 12) + 1, (i % 28) + 1)),
                ));
                triples.push(TermTriple::new(
                    s,
                    Term::iri("http://t/tag"),
                    Term::iri(format!("http://t/tag{}", i % 3)),
                ));
            }
            for (si, quirk) in noise {
                let s = Term::iri(format!("http://t/s{}", si as u64 % n as u64));
                match quirk {
                    0 => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/qty"),
                        Term::str("exception"),
                    )),
                    1 => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/tag"),
                        Term::iri(format!("http://t/tag{}", si % 3)),
                    )),
                    2 => triples.push(TermTriple::new(
                        s,
                        Term::iri("http://t/rare"),
                        Term::int(si as i64),
                    )),
                    _ => triples.push(TermTriple::new(
                        Term::iri(format!("http://t/odd{si}")),
                        Term::iri("http://t/zzz"),
                        Term::str(format!("x{si}")),
                    )),
                }
            }
            triples
        })
}

struct Gen {
    _dm: Arc<DiskManager>,
    pool: BufferPool,
    dict: sordf_model::Dictionary,
    baseline: BaselineStore,
    sparse: sordf_storage::ClusteredStore,
    sparse_schema: sordf_schema::EmergentSchema,
    dense: sordf_storage::ClusteredStore,
    dense_schema: sordf_schema::EmergentSchema,
    dense_dict: sordf_model::Dictionary,
}

fn build(triples: &[TermTriple]) -> Gen {
    let mut ts = TripleSet::new();
    ts.extend_terms(triples).unwrap();
    let dm = Arc::new(DiskManager::temp().unwrap());
    let spo = ts.sorted_spo();
    let baseline = BaselineStore::build(&dm, &spo);
    let mut sparse_schema = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
    let spec = ClusterSpec::auto(&sparse_schema);
    let sparse = build_clustered(&dm, &spo, &mut sparse_schema, &spec, false);
    let dict = ts.dict.clone();

    let mut dense_schema = sparse_schema.clone();
    reorganize(&mut ts, &mut dense_schema, &spec);
    let spo = ts.sorted_spo();
    let dense = build_clustered(&dm, &spo, &mut dense_schema, &spec, true);
    let pool = BufferPool::new(Arc::clone(&dm), 512);
    Gen {
        _dm: dm,
        pool,
        dict,
        baseline,
        sparse,
        sparse_schema,
        dense,
        dense_schema,
        dense_dict: ts.dict,
    }
}

fn contexts<'a>(
    g: &'a Gen,
    scheme: PlanScheme,
    zonemaps: bool,
) -> Vec<(&'static str, ExecContext<'a>, &'a sordf_model::Dictionary)> {
    let mk = |storage, dict| {
        ExecContext::new(
            &g.pool,
            dict,
            storage,
            ExecConfig {
                scheme,
                zonemaps,
                ..Default::default()
            },
        )
    };
    vec![
        (
            "baseline",
            mk(StorageRef::Baseline(&g.baseline), &g.dict),
            &g.dict,
        ),
        (
            "sparse-cs",
            mk(
                StorageRef::Clustered {
                    store: &g.sparse,
                    schema: &g.sparse_schema,
                },
                &g.dict,
            ),
            &g.dict,
        ),
        (
            "dense-cs",
            mk(
                StorageRef::Clustered {
                    store: &g.dense,
                    schema: &g.dense_schema,
                },
                &g.dense_dict,
            ),
            &g.dense_dict,
        ),
    ]
}

/// The value-at-a-time reference operators, plugged into the same planner.
fn rowwise_eval(
    cx: &ExecContext,
    star: &Star,
    access: sordf_engine::StarAccess,
    filters: &[&Expr],
    cands: Option<&[Oid]>,
    s_range: sordf_engine::scan::SRange,
) -> sordf_engine::Table {
    rowwise::eval_star_rowwise(cx, star, access, filters, cands, s_range)
}

/// A star query over subject props, optionally linked to the tag star
/// (cross-star hash join driving RDFjoin), optionally aggregated.
fn make_query(
    dict: &sordf_model::Dictionary,
    width: usize,
    link: bool,
    agg: bool,
    lo: i64,
) -> Option<Query> {
    let mut q = Query::default();
    let s = q.var("s");
    let preds = ["qty", "price", "date"];
    for p in preds.iter().take(width) {
        let oid = dict.iri_oid(&format!("http://t/{p}"))?;
        let v = q.var(&format!("o_{p}"));
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(s),
            p: oid,
            o: VarOrOid::Var(v),
        });
    }
    if link {
        let tag = dict.iri_oid("http://t/tag")?;
        let label = dict.iri_oid("http://t/label")?;
        let t = q.var("t");
        let l = q.var("l");
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(s),
            p: tag,
            o: VarOrOid::Var(t),
        });
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(t),
            p: label,
            o: VarOrOid::Var(l),
        });
    }
    // A pushable range filter on qty.
    let qty = q.var("o_qty");
    q.filters.push(Expr::cmp(
        Expr::Var(qty),
        CmpOp::Ge,
        Expr::Const(Oid::from_int(lo).unwrap()),
    ));
    if agg {
        q.select = vec![
            SelectItem::Agg {
                func: AggFunc::Count,
                expr: Expr::Var(s),
                name: "n".into(),
            },
            SelectItem::Agg {
                func: AggFunc::Sum,
                expr: Expr::Var(qty),
                name: "sum".into(),
            },
            SelectItem::Agg {
                func: AggFunc::Avg,
                expr: Expr::Var(qty),
                name: "avg".into(),
            },
            SelectItem::Agg {
                func: AggFunc::Min,
                expr: Expr::Var(qty),
                name: "min".into(),
            },
            SelectItem::Agg {
                func: AggFunc::Max,
                expr: Expr::Var(qty),
                name: "max".into(),
            },
        ];
    }
    Some(q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_execution_matches_sequential_and_rowwise(
        triples in arb_graph(),
        width in 1usize..4,
        link in any::<bool>(),
        agg in any::<bool>(),
        lo in 0i64..12,
        zonemaps in any::<bool>(),
        scheme_pick in any::<bool>(),
    ) {
        let g = build(&triples);
        let scheme = if scheme_pick { PlanScheme::RdfScanJoin } else { PlanScheme::Default };
        for (name, cx, dict) in contexts(&g, scheme, zonemaps) {
            let Some(q) = make_query(dict, width, link, agg, lo) else { continue };
            let seq = execute(&cx, &q);
            let row = execute_with(&cx, &q, &rowwise_eval);
            prop_assert_eq!(
                seq.canonical(dict), row.canonical(dict),
                "sequential vs rowwise on {} ({:?}, zm={})", name, scheme, zonemaps
            );
            for workers in [2usize, 3, 4] {
                // Tiny morsels so small proptest graphs still split.
                let par = ParallelConfig { workers, min_morsel_pages: 1, min_morsel_rows: 1 };
                let par_rs = execute_parallel(&cx, &q, &par);
                if agg {
                    // Aggregates merge through the compensated accumulator:
                    // order-insensitive to within one ulp; canonical forms
                    // (the differential contract) must agree exactly.
                    prop_assert_eq!(
                        seq.canonical(dict), par_rs.canonical(dict),
                        "parallel({}) agg on {} ({:?}, zm={})", workers, name, scheme, zonemaps
                    );
                } else {
                    // Non-aggregate results must be byte-identical, row
                    // order included.
                    prop_assert_eq!(
                        seq.rows().collect::<Vec<_>>(), par_rs.rows().collect::<Vec<_>>(),
                        "parallel({}) rows on {} ({:?}, zm={})", workers, name, scheme, zonemaps
                    );
                    prop_assert_eq!(&seq.columns, &par_rs.columns);
                }
            }
        }
    }

    /// Four threads share one pool and one context (it is `Sync`) and run
    /// the same query concurrently — sequential and parallel — against a
    /// pre-computed reference. Exercises concurrent pool misses/evictions
    /// under real operator traffic.
    #[test]
    fn concurrent_queries_share_a_pool(
        triples in arb_graph(),
        width in 1usize..4,
        lo in 0i64..12,
    ) {
        let g = build(&triples);
        for (name, cx, dict) in contexts(&g, PlanScheme::RdfScanJoin, true) {
            let Some(q) = make_query(dict, width, true, false, lo) else { continue };
            let reference = execute(&cx, &q);
            let reference_rows: Vec<_> = reference.rows().collect();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let cx = &cx;
                    let q = &q;
                    let reference_rows = &reference_rows;
                    s.spawn(move || {
                        for workers in [1usize, 2] {
                            let par = ParallelConfig {
                                workers,
                                min_morsel_pages: 1,
                                min_morsel_rows: 1,
                            };
                            let rs = execute_parallel(cx, q, &par);
                            assert_eq!(
                                &rs.rows().collect::<Vec<_>>(),
                                reference_rows,
                                "thread result diverged on {name}"
                            );
                        }
                    });
                }
            });
            g.pool.check_invariants();
        }
    }
}
