//! Differential correctness tests: every query must produce the same result
//! under all four Table-I configurations (plan scheme × storage scheme),
//! with and without zone maps. This is the engine's core correctness
//! guarantee — the paper's optimizations must never change query answers.

use sordf_columnar::{BufferPool, DiskManager};
use sordf_engine::{
    execute, explain, CmpOp, ExecConfig, ExecContext, Expr, PlanScheme, Query, SelectItem,
    StorageRef, TriplePattern, VarOrOid,
};
use sordf_model::{Dictionary, Oid, Term, TermTriple};
use sordf_schema::{EmergentSchema, SchemaConfig};
use sordf_storage::{
    build_clustered, reorganize, BaselineStore, ClusterSpec, ClusteredStore, TripleSet,
};
use std::sync::Arc;

/// The test workload: items referencing orders, with noise.
fn build_terms() -> Vec<TermTriple> {
    let mut triples = Vec::new();
    let mut add = |s: String, p: &str, o: Term| {
        triples.push(TermTriple::new(
            Term::iri(s),
            Term::iri(format!("http://e/{p}")),
            o,
        ));
    };
    for i in 0..120u64 {
        let s = format!("http://e/item{i}");
        add(s.clone(), "qty", Term::int((i % 30) as i64));
        add(
            s.clone(),
            "price",
            Term::decimal_f64(10.0 + (i % 7) as f64 * 2.5),
        );
        add(
            s.clone(),
            "sold",
            Term::date(&format!("1996-{:02}-{:02}", (i % 12) + 1, (i * 7 % 28) + 1)),
        );
        add(
            s.clone(),
            "ok",
            Term::iri(format!("http://e/order{}", i % 25)),
        );
        if i % 3 == 0 {
            // nullable attribute, present on a third of subjects
            add(s.clone(), "flag", Term::str(format!("F{}", i % 2)));
        }
    }
    for o in 0..25u64 {
        let s = format!("http://e/order{o}");
        add(
            s.clone(),
            "odate",
            Term::date(&format!("1996-{:02}-15", (o % 12) + 1)),
        );
        add(
            s.clone(),
            "status",
            Term::str(if o % 2 == 0 { "open" } else { "closed" }),
        );
    }
    // Noise: one fully irregular subject and one type exception.
    add("http://e/weird".into(), "zzz", Term::str("irregular"));
    add("http://e/item0".into(), "qty", Term::str("n/a"));
    triples
}

struct Fixture {
    _dm: Arc<DiskManager>,
    pool: BufferPool,
    // ParseOrder generation.
    po_dict: Dictionary,
    baseline: BaselineStore,
    po_schema: EmergentSchema,
    sparse: ClusteredStore,
    // Clustered (reorganized) generation.
    cl_dict: Dictionary,
    cl_schema: EmergentSchema,
    dense: ClusteredStore,
}

fn fixture() -> Fixture {
    let terms = build_terms();
    let mut ts = TripleSet::new();
    ts.extend_terms(&terms).unwrap();
    let dm = Arc::new(DiskManager::temp().unwrap());

    // Generation 0: parse order.
    let spo = ts.sorted_spo();
    let baseline = BaselineStore::build(&dm, &spo);
    let mut po_schema = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
    let spec = ClusterSpec::auto(&po_schema);
    let sparse = build_clustered(&dm, &spo, &mut po_schema, &spec, false);
    let po_dict = ts.dict.clone();

    // Generation 1: reorganized.
    let mut cl_schema = po_schema.clone();
    reorganize(&mut ts, &mut cl_schema, &spec);
    let spo = ts.sorted_spo();
    let dense = build_clustered(&dm, &spo, &mut cl_schema, &spec, true);

    let pool = BufferPool::new(Arc::clone(&dm), 2048);
    Fixture {
        _dm: dm,
        pool,
        po_dict,
        baseline,
        po_schema,
        sparse,
        cl_dict: ts.dict,
        cl_schema,
        dense,
    }
}

/// All engine configurations of Table I (plus zone-map toggles).
fn configs() -> Vec<(&'static str, PlanScheme, /*storage*/ u8, bool)> {
    vec![
        ("default/baseline", PlanScheme::Default, 0, false),
        ("default/sparse-cs", PlanScheme::Default, 1, false),
        ("default/clustered", PlanScheme::Default, 2, false),
        ("default/clustered+zm", PlanScheme::Default, 2, true),
        ("rdfscan/sparse-cs", PlanScheme::RdfScanJoin, 1, false),
        ("rdfscan/clustered", PlanScheme::RdfScanJoin, 2, false),
        ("rdfscan/clustered+zm", PlanScheme::RdfScanJoin, 2, true),
    ]
}

/// Run `make_query` on every configuration and assert identical canonical
/// results. Returns the canonical result for further checks.
fn assert_all_agree(f: &Fixture, make_query: impl Fn(&mut Dictionary) -> Query) -> Vec<String> {
    let mut reference: Option<(String, Vec<String>)> = None;
    for (name, scheme, storage, zm) in configs() {
        let mut dict = match storage {
            0 | 1 => f.po_dict.clone(),
            _ => f.cl_dict.clone(),
        };
        let query = make_query(&mut dict);
        let storage_ref = match storage {
            0 => StorageRef::Baseline(&f.baseline),
            1 => StorageRef::Clustered {
                store: &f.sparse,
                schema: &f.po_schema,
            },
            _ => StorageRef::Clustered {
                store: &f.dense,
                schema: &f.cl_schema,
            },
        };
        let cx = ExecContext::new(
            &f.pool,
            &dict,
            storage_ref,
            ExecConfig {
                scheme,
                zonemaps: zm,
                ..Default::default()
            },
        );
        let rs = execute(&cx, &query);
        let canon = rs.canonical(&dict);
        match &reference {
            None => reference = Some((name.to_string(), canon)),
            Some((ref_name, ref_canon)) => {
                assert_eq!(&canon, ref_canon, "config {name} disagrees with {ref_name}");
            }
        }
    }
    reference.unwrap().1
}

fn var(q: &mut Query, name: &str) -> VarOrOid {
    VarOrOid::Var(q.var(name))
}

fn add_pat(q: &mut Query, s: &str, dict: &mut Dictionary, p: &str, o: VarOrOid) {
    let tp = TriplePattern {
        s: var(q, s),
        p: dict.encode_iri(&format!("http://e/{p}")),
        o,
    };
    q.patterns.push(tp);
}

#[test]
fn single_pattern_scan() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let o = var(&mut q, "o");
        add_pat(&mut q, "s", dict, "status", o);
        q
    });
    assert_eq!(rows.len(), 25);
}

#[test]
fn star_three_props() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let qty = var(&mut q, "qty");
        let price = var(&mut q, "price");
        let sold = var(&mut q, "sold");
        add_pat(&mut q, "s", dict, "qty", qty);
        add_pat(&mut q, "s", dict, "price", price);
        add_pat(&mut q, "s", dict, "sold", sold);
        q
    });
    // 120 items; item0 contributes 2 qty bindings (int + string exception).
    assert_eq!(rows.len(), 121);
}

#[test]
fn star_with_date_range_filter() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let qty = var(&mut q, "qty");
        let sold = var(&mut q, "sold");
        add_pat(&mut q, "s", dict, "qty", qty);
        add_pat(&mut q, "s", dict, "sold", sold);
        let lo = Oid::from_date_days(sordf_model::date::parse_date("1996-03-01").unwrap()).unwrap();
        let hi = Oid::from_date_days(sordf_model::date::parse_date("1996-05-31").unwrap()).unwrap();
        let sold_v = q.var("sold");
        q.filters
            .push(Expr::cmp(Expr::Var(sold_v), CmpOp::Ge, Expr::Const(lo)));
        q.filters
            .push(Expr::cmp(Expr::Var(sold_v), CmpOp::Le, Expr::Const(hi)));
        q
    });
    // Months 3..5 -> 30 items (i%12 in {2,3,4}).
    assert_eq!(rows.len(), 30);
}

#[test]
fn star_with_constant_object() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let odate = var(&mut q, "odate");
        let open = dict.encode_term(&Term::str("open")).unwrap();
        add_pat(&mut q, "o", dict, "status", VarOrOid::Const(open));
        add_pat(&mut q, "o", dict, "odate", odate);
        q
    });
    assert_eq!(rows.len(), 13, "orders 0,2,..,24 are open");
}

#[test]
fn two_star_fk_join() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let qty = var(&mut q, "qty");
        let ord = var(&mut q, "ord");
        let status = var(&mut q, "status");
        add_pat(&mut q, "s", dict, "qty", qty);
        add_pat(&mut q, "s", dict, "ok", ord);
        // second star: the order
        let ord_v = q.var("ord");
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(ord_v),
            p: dict.encode_iri("http://e/status"),
            o: status,
        });
        q
    });
    // Every item joins its order; item0's qty exception doubles one row.
    assert_eq!(rows.len(), 121);
}

#[test]
fn fk_join_with_selective_filters_on_both_stars() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let sold = var(&mut q, "sold");
        let ord = var(&mut q, "ord");
        let odate = var(&mut q, "odate");
        add_pat(&mut q, "s", dict, "sold", sold);
        add_pat(&mut q, "s", dict, "ok", ord);
        let ord_v = q.var("ord");
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(ord_v),
            p: dict.encode_iri("http://e/odate"),
            o: odate,
        });
        let date =
            |s: &str| Oid::from_date_days(sordf_model::date::parse_date(s).unwrap()).unwrap();
        let sold_v = q.var("sold");
        let odate_v = q.var("odate");
        q.filters.push(Expr::cmp(
            Expr::Var(sold_v),
            CmpOp::Lt,
            Expr::Const(date("1996-04-01")),
        ));
        q.filters.push(Expr::cmp(
            Expr::Var(odate_v),
            CmpOp::Ge,
            Expr::Const(date("1996-06-01")),
        ));
        q
    });
    assert!(!rows.is_empty());
}

#[test]
fn aggregation_group_by_status() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let qty = var(&mut q, "qty");
        let ord = var(&mut q, "ord");
        let status = var(&mut q, "status");
        add_pat(&mut q, "s", dict, "qty", qty);
        add_pat(&mut q, "s", dict, "ok", ord);
        let ord_v = q.var("ord");
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(ord_v),
            p: dict.encode_iri("http://e/status"),
            o: status,
        });
        let status_v = q.var("status");
        let qty_v = q.var("qty");
        q.select = vec![
            SelectItem::Var(status_v),
            SelectItem::Agg {
                func: sordf_engine::AggFunc::Count,
                expr: Expr::Var(qty_v),
                name: "n".into(),
            },
            SelectItem::Agg {
                func: sordf_engine::AggFunc::Sum,
                expr: Expr::Var(qty_v),
                name: "total".into(),
            },
        ];
        q.group_by = vec![status_v];
        q.order_by = vec![sordf_engine::query::OrderKey {
            output: 0,
            ascending: true,
        }];
        q
    });
    assert_eq!(rows.len(), 2, "two status groups");
}

#[test]
fn distinct_and_limit() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let qty = var(&mut q, "qty");
        add_pat(&mut q, "s", dict, "qty", qty);
        let qty_v = q.var("qty");
        q.select = vec![SelectItem::Var(qty_v)];
        q.distinct = true;
        q
    });
    assert_eq!(rows.len(), 31, "30 distinct ints + 1 string");
}

#[test]
fn nullable_attribute_star() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let flag = var(&mut q, "flag");
        let qty = var(&mut q, "qty");
        add_pat(&mut q, "s", dict, "flag", flag);
        add_pat(&mut q, "s", dict, "qty", qty);
        q
    });
    // 40 items have flags; item0 (i%3==0) has a flag + 2 qty values.
    assert_eq!(rows.len(), 41);
}

#[test]
fn irregular_subject_reachable() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let z = var(&mut q, "z");
        add_pat(&mut q, "w", dict, "zzz", z);
        q
    });
    assert_eq!(rows.len(), 1);
    assert!(rows[0].contains("irregular"));
}

#[test]
fn constant_subject_star() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let qty = var(&mut q, "qty");
        let item5 = dict.encode_iri("http://e/item5");
        q.patterns.push(TriplePattern {
            s: VarOrOid::Const(item5),
            p: dict.encode_iri("http://e/qty"),
            o: qty,
        });
        q
    });
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0], "5");
}

#[test]
fn q6_style_aggregate() {
    let f = fixture();
    let rows = assert_all_agree(&f, |dict| {
        let mut q = Query::default();
        let price = var(&mut q, "price");
        let qty = var(&mut q, "qty");
        let sold = var(&mut q, "sold");
        add_pat(&mut q, "s", dict, "price", price);
        add_pat(&mut q, "s", dict, "qty", qty);
        add_pat(&mut q, "s", dict, "sold", sold);
        let date =
            |s: &str| Oid::from_date_days(sordf_model::date::parse_date(s).unwrap()).unwrap();
        let sold_v = q.var("sold");
        let qty_v = q.var("qty");
        let price_v = q.var("price");
        q.filters.push(Expr::cmp(
            Expr::Var(sold_v),
            CmpOp::Ge,
            Expr::Const(date("1996-01-01")),
        ));
        q.filters.push(Expr::cmp(
            Expr::Var(sold_v),
            CmpOp::Lt,
            Expr::Const(date("1996-07-01")),
        ));
        q.filters.push(Expr::cmp(
            Expr::Var(qty_v),
            CmpOp::Lt,
            Expr::Const(Oid::from_int(20).unwrap()),
        ));
        q.select = vec![SelectItem::Agg {
            func: sordf_engine::AggFunc::Sum,
            expr: Expr::Arith(
                Box::new(Expr::Var(price_v)),
                sordf_engine::expr::ArithOp::Mul,
                Box::new(Expr::Var(qty_v)),
            ),
            name: "revenue".into(),
        }];
        q
    });
    assert_eq!(rows.len(), 1);
    let revenue: f64 = rows[0].parse().unwrap();
    assert!(revenue > 0.0, "rows: {rows:?}");
}

#[test]
fn explain_join_counts_match_fig4() {
    let f = fixture();
    // The 4-property star of Fig. 4a.
    let mut dict = f.cl_dict.clone();
    let mut q = Query::default();
    for (i, p) in ["qty", "price", "sold", "flag"].iter().enumerate() {
        let o = var(&mut q, &format!("o{i}"));
        add_pat(&mut q, "s", &mut dict, p, o);
    }
    let storage = StorageRef::Clustered {
        store: &f.dense,
        schema: &f.cl_schema,
    };
    let cx_default = ExecContext::new(
        &f.pool,
        &dict,
        storage,
        ExecConfig {
            scheme: PlanScheme::Default,
            zonemaps: false,
            ..Default::default()
        },
    );
    let plan = explain(&cx_default, &q);
    assert_eq!(
        plan.intra_star_joins, 3,
        "IdxScan plan: 3 merge joins for 4 patterns"
    );
    assert_eq!(plan.cross_star_joins, 0);

    let storage = StorageRef::Clustered {
        store: &f.dense,
        schema: &f.cl_schema,
    };
    let cx_rdf = ExecContext::new(
        &f.pool,
        &dict,
        storage,
        ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            ..Default::default()
        },
    );
    let plan = explain(&cx_rdf, &q);
    assert_eq!(
        plan.intra_star_joins, 0,
        "RDFscan eliminates intra-star joins"
    );
}

#[test]
fn rdfscan_stats_record_operator_use() {
    let f = fixture();
    let mut dict = f.cl_dict.clone();
    let mut q = Query::default();
    let qty = var(&mut q, "qty");
    let sold = var(&mut q, "sold");
    add_pat(&mut q, "s", &mut dict, "qty", qty);
    add_pat(&mut q, "s", &mut dict, "sold", sold);
    let cx = ExecContext::new(
        &f.pool,
        &dict,
        StorageRef::Clustered {
            store: &f.dense,
            schema: &f.cl_schema,
        },
        ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            ..Default::default()
        },
    );
    let _ = execute(&cx, &q);
    assert!(cx.stats.snapshot().rdf_scans >= 1);
    assert_eq!(
        cx.stats.snapshot().merge_joins,
        0,
        "no self-joins in RDFscan plans"
    );
}
