//! Morsel-driven parallel execution.
//!
//! The paper's pitch is that emergent-schema clustering makes RDF behave
//! like relational analytics — and relational analytics engines scale across
//! cores. This module executes the same operators as the sequential planner
//! **morsel-at-a-time**: zone-map-pruned page ranges (RDFscan), candidate
//! row ranges (RDFjoin), and per-property streams (Default-scheme property
//! scans) are split into independent work units executed by
//! `std::thread::scope` workers pulling from a shared queue.
//!
//! Correctness contract: results are **byte-identical** to the sequential
//! path. Each morsel covers a contiguous slice of a class segment (or of the
//! candidate list), morsels are enumerated in the order the sequential scan
//! would visit them, and per-worker partial tables are concatenated in that
//! enumeration order — never in completion order. Whole-table aggregates
//! merge per-worker partials through the Neumaier-compensated accumulator,
//! which keeps SUM/AVG order-insensitive to within one ulp (the same
//! property the cross-generation differential tests already rely on).
//!
//! Sharing model: one [`ExecContext`] is shared by all workers of a query —
//! it is `Sync` (storage handles are immutable, the buffer pool is
//! internally sharded, and [`crate::context::ExecStats`] counters are
//! relaxed atomics that sum naturally across workers).

use crate::agg::{
    accumulate_single_group, apply_modifiers, effective_select, finalize, new_agg_states,
    single_group_result, var_col_map, AggState, ResultSet,
};
use crate::context::{ExecContext, StorageRef};
use crate::expr::Expr;
use crate::plan::{LogicalPlan, PhysicalPlan, StarAccess};
use crate::planner::{execute_physical, execute_plan, StarEvalFn};
use crate::query::Query;
use crate::scan::{SRange, Source};
use crate::star::{
    default_scan_range, intersect_ranges, irregular_star_table, join_star_streams,
    prepare_star_scans, scan_chunk_pages, scan_row_range, scan_star_prop, subject_filter_range,
    ClassScanPrep, Star,
};
use crate::table::Table;
use parking_lot::Mutex;
use sordf_model::Oid;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads per query (1 = run the sequential path).
    pub workers: usize,
    /// Minimum pages per RDFscan morsel — below this, splitting a segment
    /// costs more in scheduling than it buys in parallelism.
    pub min_morsel_pages: usize,
    /// Minimum rows per RDFjoin / aggregation morsel.
    pub min_morsel_rows: usize,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            min_morsel_pages: 1,
            min_morsel_rows: 4096,
        }
    }
}

impl ParallelConfig {
    /// Default sizing with an explicit worker count.
    pub fn with_workers(workers: usize) -> ParallelConfig {
        ParallelConfig {
            workers: workers.max(1),
            ..ParallelConfig::default()
        }
    }
}

/// A unit of parallel work returning `T`.
type Task<'s, T> = Box<dyn Fn() -> T + Send + Sync + 's>;

/// A property stream task result: `(property index, (s, o) pairs)`.
type PropStream = (usize, Vec<(Oid, Oid)>);

/// Split `r` into at most `max_chunks` contiguous chunks of at least
/// `min_len` (the final chunk absorbs the remainder). Preserves order:
/// concatenating the chunks yields `r`.
fn split_range(r: Range<usize>, max_chunks: usize, min_len: usize) -> Vec<Range<usize>> {
    let len = r.end.saturating_sub(r.start);
    if len == 0 {
        return Vec::new();
    }
    let min_len = min_len.max(1);
    let n = (len / min_len).clamp(1, max_chunks.max(1));
    let chunk = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = r.start;
    for i in 0..n {
        let this = chunk + usize::from(i < rem);
        out.push(start..start + this);
        start += this;
    }
    out
}

/// Run boxed tasks on `workers` scoped threads pulling from a shared atomic
/// queue, returning results **in task order** (not completion order). With
/// one worker or one task, runs inline — no threads spawned.
///
/// A panicking task is caught on its worker and its original payload is
/// re-raised on the calling thread — `std::thread::scope` would otherwise
/// replace it with a generic "a scoped thread panicked", losing e.g. the
/// page number of a `ModelError::PageRead` that the facade's query-boundary
/// handler reports. The first panic also raises a shared failure flag that
/// every worker checks before pulling, so a failing query stops after the
/// in-flight morsels instead of draining the whole queue for a result that
/// will be discarded.
///
/// Cancellation rides the same machinery: `cancel` (when present) is polled
/// before each claimed task — the morsel boundary — and a tripped token
/// panics with the interrupt sentinel inside the per-task `catch_unwind`,
/// so the failure flag stops every worker and the sentinel is re-raised on
/// the caller for the facade to classify.
fn run_tasks<'s, T: Send + 's>(
    cancel: Option<&crate::cancel::CancellationToken>,
    workers: usize,
    tasks: &[Task<'s, T>],
) -> Vec<T> {
    if workers <= 1 || tasks.len() <= 1 {
        return tasks
            .iter()
            .map(|t| {
                if let Some(c) = cancel {
                    c.check();
                }
                t()
            })
            .collect();
    }
    type TaskResult<T> = Result<T, Box<dyn std::any::Any + Send>>;
    // ordering: Relaxed throughout this function — `next` needs only
    // fetch_add's atomicity (each index claimed once); `failed` is a pure
    // hint to stop early, and the task results themselves are published by
    // the per-slot mutexes plus the scope join, not by these flags.
    let next = AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let slots: Vec<Mutex<Option<TaskResult<T>>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(tasks.len()) {
            s.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(c) = cancel {
                        c.check();
                    }
                    tasks[i]()
                }));
                if out.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *slots[i].lock() = Some(out);
                if failed.load(Ordering::Relaxed) {
                    break;
                }
            });
        }
    });
    let mut out = Vec::with_capacity(tasks.len());
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for slot in slots {
        match slot.into_inner() {
            Some(Ok(v)) => out.push(v),
            Some(Err(payload)) if first_panic.is_none() => first_panic = Some(payload),
            Some(Err(_)) => {}
            // Unfilled slots happen when the failure flag stopped workers
            // before the queue drained; the first panic below explains why.
            None => {}
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    assert_eq!(out.len(), tasks.len(), "every task completed");
    out
}

/// Execute a query with morsel-parallel operators and a merging aggregation.
/// Non-aggregate results are byte-identical to [`crate::planner::execute`]
/// (same rows, same order); SUM/AVG aggregates merge per-worker partials
/// through the compensated accumulator and may differ from the sequential
/// value in the last ulp — canonical/rendered forms agree, raw aggregate
/// `f64`s must not be compared bitwise.
pub fn execute_parallel(cx: &ExecContext, query: &Query, par: &ParallelConfig) -> ResultSet {
    if par.workers <= 1 {
        return crate::planner::execute(cx, query);
    }
    let eval = |cx: &ExecContext,
                star: &Star,
                access: StarAccess,
                filters: &[&Expr],
                cands: Option<&[Oid]>,
                s_range: SRange| {
        eval_star_parallel(cx, star, access, filters, cands, s_range, par)
    };
    let (q, table) = execute_plan(cx, query, &eval as &StarEvalFn);
    finalize_parallel(cx, &q, &table, par)
}

/// Execute an already-optimized physical plan with the morsel-parallel
/// operators and a merging aggregation (the plan-cache fast path).
pub fn execute_physical_parallel(
    cx: &ExecContext,
    q: &Query,
    lp: &LogicalPlan,
    pp: &PhysicalPlan,
    par: &ParallelConfig,
) -> ResultSet {
    if par.workers <= 1 {
        return crate::planner::execute_physical_seq(cx, q, lp, pp);
    }
    let eval = |cx: &ExecContext,
                star: &Star,
                access: StarAccess,
                filters: &[&Expr],
                cands: Option<&[Oid]>,
                s_range: SRange| {
        eval_star_parallel(cx, star, access, filters, cands, s_range, par)
    };
    let table = execute_physical(cx, lp, pp, &eval as &StarEvalFn, None);
    finalize_parallel(cx, q, &table, par)
}

/// Evaluate one star with the parallel operator matching the plan's chosen
/// access path (the parallel counterpart of the planner's star evaluator).
pub fn eval_star_parallel(
    cx: &ExecContext,
    star: &Star,
    access: StarAccess,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    par: &ParallelConfig,
) -> Table {
    match (access, &cx.storage) {
        (StarAccess::RdfScan, StorageRef::Clustered { .. }) => {
            eval_star_rdfscan_parallel(cx, star, filters, candidates, s_range, par)
        }
        _ => eval_star_default_parallel(cx, star, filters, candidates, s_range, Source::Full, par),
    }
}

/// Default scheme, parallel: the per-property scans of a star are
/// independent — run one task per property, then join the streams
/// sequentially (the join pipeline is a small fraction of the work).
fn eval_star_default_parallel(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    source: Source,
    par: &ParallelConfig,
) -> Table {
    let s_range = default_scan_range(star, filters, s_range);
    let tasks: Vec<Task<PropStream>> = (0..star.props.len())
        .map(|i| {
            let task: Task<PropStream> = Box::new(move || {
                (
                    i,
                    scan_star_prop(cx, star, i, filters, candidates, s_range, source),
                )
            });
            task
        })
        .collect();
    let streams = run_tasks(cx.cancel_token(), par.workers, &tasks);
    join_star_streams(cx, star, filters, streams)
}

/// One unit of parallel RDFscan/RDFjoin work.
enum Morsel {
    /// A span of a prepared class scan: a page range (RDFscan) or a
    /// candidate-row range (RDFjoin).
    Class { prep: usize, span: Range<usize> },
    /// The irregular-store branch (one task; small, but unsplittable).
    Irregular,
}

/// RDFscan / RDFjoin, parallel: per-class preparation (class selection,
/// row-range narrowing, access resolution) happens once via the shared
/// [`prepare_star_scans`] — the same enumeration the sequential path
/// executes — then the page/row span of each class is split into morsels
/// executed by scoped workers, and partial tables are concatenated in
/// (class, span) order with the irregular branch last — exactly the
/// sequential row order.
fn eval_star_rdfscan_parallel(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    par: &ParallelConfig,
) -> Table {
    let StorageRef::Clustered { store, schema } = &cx.storage else {
        return eval_star_default_parallel(
            cx,
            star,
            filters,
            candidates,
            s_range,
            Source::Full,
            par,
        );
    };
    let s_range = intersect_ranges(subject_filter_range(star, filters), s_range);
    let out_vars = star.output_vars();

    let (covering_classes, preps) =
        prepare_star_scans(cx, star, filters, candidates, s_range, store, schema);

    // Morselize: aim for a few morsels per worker so a slow span (zone maps
    // prune unevenly) cannot straggle the whole query. The irregular branch
    // is queued FIRST — it is the one task that cannot be split, so it must
    // start early rather than after every class morsel has been claimed;
    // its partial is still merged last (placement, not execution order,
    // decides the result layout).
    let mut morsels: Vec<Morsel> = vec![Morsel::Irregular];
    for (pi, prep) in preps.iter().enumerate() {
        let spans = match prep {
            ClassScanPrep::Chunks(p) => {
                split_range(p.pages(), par.workers * 2, par.min_morsel_pages)
            }
            ClassScanPrep::Rows(p) => {
                split_range(0..p.n_rows(), par.workers * 2, par.min_morsel_rows)
            }
        };
        morsels.extend(
            spans
                .into_iter()
                .map(|span| Morsel::Class { prep: pi, span }),
        );
    }

    let preps = &preps;
    let covering = &covering_classes;
    let out_vars_ref = &out_vars;
    let tasks: Vec<Task<Table>> = morsels
        .iter()
        .map(|m| {
            let task: Task<Table> = match m {
                Morsel::Class { prep, span } => {
                    let (pi, span) = (*prep, span.clone());
                    Box::new(move || match &preps[pi] {
                        ClassScanPrep::Chunks(p) => scan_chunk_pages(cx, p, span.clone()),
                        ClassScanPrep::Rows(p) => scan_row_range(cx, p, span.clone()),
                    })
                }
                Morsel::Irregular => Box::new(move || {
                    irregular_star_table(
                        cx,
                        star,
                        filters,
                        candidates,
                        s_range,
                        schema,
                        covering,
                        out_vars_ref,
                    )
                }),
            };
            task
        })
        .collect();
    let mut partials = run_tasks(cx.cancel_token(), par.workers, &tasks).into_iter();
    // sordf-lint: allow(L3) — morsels[0] is Morsel::Irregular by
    // construction above and run_tasks returns one result per task.
    let irregular = partials.next().expect("irregular task present");

    // Order-stable merge: class morsels in enumeration order, irregular
    // last — identical to the sequential append order.
    let mut result = Table::empty(out_vars.clone());
    for t in partials {
        if !t.is_empty() {
            result.append(t);
        }
    }
    if !irregular.is_empty() {
        result.append(irregular);
    }
    result
}

/// Finalize with parallel whole-table aggregation when profitable: the
/// binding table's rows are split into per-worker ranges, each accumulated
/// into partial [`AggState`]s, merged in range order (Neumaier-compensated
/// SUM/AVG — order-insensitive to within one ulp), then rendered like the
/// sequential single-group fast path. Everything else (grouping, plain
/// projection) goes through the sequential [`finalize`] unchanged.
pub(crate) fn finalize_parallel(
    cx: &ExecContext,
    query: &Query,
    table: &Table,
    par: &ParallelConfig,
) -> ResultSet {
    let single_group = query.has_aggregates() && query.group_by.is_empty() && !table.is_empty();
    if !single_group || par.workers <= 1 || table.len() < 2 * par.min_morsel_rows.max(1) {
        return finalize(cx, query, table);
    }
    let select = effective_select(query);
    let var_col = var_col_map(table);
    let spans = split_range(0..table.len(), par.workers, par.min_morsel_rows);
    let select_ref = &select;
    let var_col_ref = &var_col;
    let tasks: Vec<Task<Vec<AggState>>> = spans
        .iter()
        .map(|span| {
            let span = span.clone();
            let task: Task<Vec<AggState>> = Box::new(move || {
                let mut states = new_agg_states(select_ref);
                accumulate_single_group(
                    cx,
                    select_ref,
                    table,
                    var_col_ref,
                    span.clone(),
                    &mut states,
                );
                states
            });
            task
        })
        .collect();
    let mut partials = run_tasks(cx.cancel_token(), par.workers, &tasks).into_iter();
    // sordf-lint: allow(L3) — split_range on a non-empty row range yields
    // at least one span, so there is always a first partial.
    let mut states = partials.next().expect("non-empty table has one partial");
    for partial in partials {
        for (s, o) in states.iter_mut().zip(partial) {
            s.merge(o, cx.dict);
        }
    }
    let mut rs = single_group_result(cx, query, &select, states);
    apply_modifiers(cx, query, &mut rs);
    rs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_covers_and_orders() {
        for (r, chunks, min_len) in [
            (0..100, 4, 1),
            (10..17, 3, 2),
            (0..1, 8, 1),
            (5..5, 4, 1),
            (0..10_000, 8, 4096),
        ] {
            let spans = split_range(r.clone(), chunks, min_len);
            if r.is_empty() {
                assert!(spans.is_empty());
                continue;
            }
            assert!(spans.len() <= chunks);
            assert_eq!(spans.first().unwrap().start, r.start);
            assert_eq!(spans.last().unwrap().end, r.end);
            for w in spans.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous in order");
            }
            if spans.len() > 1 {
                assert!(spans.iter().all(|s| s.len() >= min_len));
            }
        }
    }

    #[test]
    fn run_tasks_returns_in_task_order() {
        let tasks: Vec<Box<dyn Fn() -> usize + Send + Sync>> = (0..32usize)
            .map(|i| {
                let t: Box<dyn Fn() -> usize + Send + Sync> = Box::new(move || {
                    // Jitter completion order.
                    std::thread::sleep(std::time::Duration::from_micros(((i * 7) % 5) as u64));
                    i
                });
                t
            })
            .collect();
        assert_eq!(run_tasks(None, 4, &tasks), (0..32).collect::<Vec<_>>());
        assert_eq!(run_tasks(None, 1, &tasks), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn run_tasks_stops_on_cancelled_token() {
        use crate::cancel::{interrupted, CancellationToken, StopReason};
        let token = CancellationToken::new();
        token.cancel();
        let ran = std::sync::atomic::AtomicUsize::new(0);
        let tasks: Vec<Box<dyn Fn() -> usize + Send + Sync>> = (0..64usize)
            .map(|i| {
                let ran = &ran;
                let t: Box<dyn Fn() -> usize + Send + Sync> = Box::new(move || {
                    // ordering: Relaxed — test-only counter, read after join.
                    ran.fetch_add(1, Ordering::Relaxed);
                    i
                });
                t
            })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_tasks(Some(&token), 4, &tasks)
        }))
        .unwrap_err();
        assert_eq!(interrupted(err.as_ref()), Some(StopReason::Cancelled));
        // ordering: Relaxed — see above.
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no task body ran");
    }
}
