//! Value-at-a-time reference implementations of the hot scan paths.
//!
//! This module preserves the pre-vectorization execution strategy — every
//! stored value is fetched through [`Column::value`] (one buffer-pool
//! request per value) and binary searches probe the pool per comparison. It
//! exists for two reasons:
//!
//! * **Differential testing** — the vectorized operators in [`crate::scan`]
//!   and [`crate::star`] must return byte-identical tables to these
//!   originals on arbitrary data (see the engine's proptest suite).
//! * **Benchmarking** — `bench_vectorized` measures this path against the
//!   pinned-slice path to quantify the page-at-a-time win and to show the
//!   per-value `pool.get` traffic disappearing from the counters.
//!
//! Nothing in the planner calls into this module; it is reference code, kept
//! deliberately row-at-a-time. Do not "optimize" it.

use crate::context::{ExecContext, ExecStats, StorageRef};
use crate::expr::Expr;
use crate::scan::{ORestrict, SRange, Source};
use crate::star::{
    effective_subject_range, emit_combinations, extend_from_sorted, intersect_ranges,
    prop_restrict, residual_filters, subject_filter_range, Covered, Star,
};
use crate::table::Table;
use sordf_columnar::{BufferPool, Column, VALS_PER_PAGE};
use sordf_model::{Oid, Triple};
use sordf_storage::clustered::SubjectIds;
use sordf_storage::{BaselineStore, ClassSegment, Order, PermIndex};
use std::ops::Range;

/// Row-at-a-time partition point: one pool request per probed value.
fn pp_rowwise(
    col: &Column,
    pool: &BufferPool,
    range: Range<usize>,
    pred: impl Fn(u64) -> bool,
) -> usize {
    let (mut lo, mut hi) = (range.start, range.end.min(col.len()));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(col.value(pool, mid)) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn lower_bound_rw(col: &Column, pool: &BufferPool, range: Range<usize>, v: u64) -> usize {
    pp_rowwise(col, pool, range, |x| x < v)
}

fn upper_bound_rw(col: &Column, pool: &BufferPool, range: Range<usize>, v: u64) -> usize {
    pp_rowwise(col, pool, range, |x| x <= v)
}

/// Rows of a permutation index with key0 == `a`.
fn range1_rw(idx: &PermIndex, pool: &BufferPool, a: Oid) -> Range<usize> {
    let full = 0..idx.len();
    lower_bound_rw(idx.col(0), pool, full.clone(), a.raw())
        ..upper_bound_rw(idx.col(0), pool, full, a.raw())
}

fn range2_rw(idx: &PermIndex, pool: &BufferPool, a: Oid, b: Oid) -> Range<usize> {
    let r = range1_rw(idx, pool, a);
    lower_bound_rw(idx.col(1), pool, r.clone(), b.raw())
        ..upper_bound_rw(idx.col(1), pool, r, b.raw())
}

fn range2_between_rw(idx: &PermIndex, pool: &BufferPool, a: Oid, lo: Oid, hi: Oid) -> Range<usize> {
    let r = range1_rw(idx, pool, a);
    let start = lower_bound_rw(idx.col(1), pool, r.clone(), lo.raw());
    let end = upper_bound_rw(idx.col(1), pool, r, hi.raw());
    start..end.max(start)
}

/// Materialize `(key1, key2)` pairs one value at a time.
fn pairs_rw(idx: &PermIndex, pool: &BufferPool, range: Range<usize>) -> Vec<(Oid, Oid)> {
    range
        .map(|i| {
            (
                Oid::from_raw(idx.col(1).value(pool, i)),
                Oid::from_raw(idx.col(2).value(pool, i)),
            )
        })
        .collect()
}

fn subject_at_rw(seg: &ClassSegment, pool: &BufferPool, row: usize) -> Oid {
    match &seg.subjects {
        SubjectIds::Dense { base } => Oid::iri(base + row as u64),
        SubjectIds::Sparse { subjects } => Oid::from_raw(subjects.value(pool, row)),
    }
}

fn row_of_rw(seg: &ClassSegment, pool: &BufferPool, s: Oid) -> Option<usize> {
    if !s.is_iri() {
        return None;
    }
    match &seg.subjects {
        SubjectIds::Dense { base } => {
            let p = s.payload();
            (p >= *base && p < base + seg.n as u64).then(|| (p - *base) as usize)
        }
        SubjectIds::Sparse { subjects } => {
            let i = lower_bound_rw(subjects, pool, 0..subjects.len(), s.raw());
            (i < seg.n && subjects.value(pool, i) == s.raw()).then_some(i)
        }
    }
}

/// Value-at-a-time [`crate::scan::scan_property`].
pub fn scan_property_rowwise(
    cx: &ExecContext,
    p: Oid,
    restrict: &ORestrict,
    s_range: SRange,
    source: Source,
) -> Vec<(Oid, Oid)> {
    // Per-scan cancellation poll: the rowwise executor is the differential
    // oracle, but timeout tests drive it too.
    cx.check_cancelled();
    ExecStats::bump(&cx.stats.property_scans, 1);
    let mut out = match (&cx.storage, source) {
        (StorageRef::Baseline(store), _) => scan_baseline_rw(cx, store, p, restrict, s_range),
        (StorageRef::Clustered { store, .. }, Source::IrregularOnly) => {
            scan_baseline_rw(cx, &store.irregular, p, restrict, s_range)
        }
        (StorageRef::Clustered { store, schema }, Source::Full) => {
            let mut pairs = Vec::new();
            for (class, coli) in schema.classes_with_column(p) {
                scan_segment_column_rw(
                    cx,
                    store.segment(class),
                    coli,
                    restrict,
                    s_range,
                    &mut pairs,
                );
            }
            for (class, mi) in schema.classes_with_multi(p) {
                scan_multi_table_rw(cx, store.segment(class), mi, restrict, s_range, &mut pairs);
            }
            pairs.extend(scan_baseline_rw(cx, &store.irregular, p, restrict, s_range));
            pairs
        }
    };
    // Same merged-source contract as the vectorized scan: tombstones filter
    // base pairs, visible delta inserts are unioned in.
    crate::scan::apply_delta_pairs(cx, p, restrict, s_range, &mut out);
    out.sort_unstable();
    ExecStats::bump(&cx.stats.rows_scanned, out.len() as u64);
    out
}

fn scan_baseline_rw(
    cx: &ExecContext,
    store: &BaselineStore,
    p: Oid,
    restrict: &ORestrict,
    s_range: SRange,
) -> Vec<(Oid, Oid)> {
    let pool = cx.pool;
    if let Some(eq) = restrict.eq {
        let idx = store.perm(Order::Pos);
        let mut r = range2_rw(idx, pool, p, eq);
        if let Some((lo, hi)) = s_range {
            let start = lower_bound_rw(idx.col(2), pool, r.clone(), lo);
            let end = upper_bound_rw(idx.col(2), pool, r.clone(), hi);
            r = start..end.max(start);
        }
        return r
            .map(|i| (Oid::from_raw(idx.col(2).value(pool, i)), eq))
            .collect();
    }
    if let Some((lo, hi)) = restrict.range {
        let idx = store.perm(Order::Pos);
        let r = range2_between_rw(idx, pool, p, Oid::from_raw(lo), Oid::from_raw(hi));
        return r
            .map(|i| {
                (
                    Oid::from_raw(idx.col(2).value(pool, i)),
                    Oid::from_raw(idx.col(1).value(pool, i)),
                )
            })
            .filter(|&(s, _)| s_range.map_or(true, |(lo, hi)| s.raw() >= lo && s.raw() <= hi))
            .collect();
    }
    let idx = store.perm(Order::Pso);
    let mut r = range1_rw(idx, pool, p);
    if let Some((lo, hi)) = s_range {
        let start = lower_bound_rw(idx.col(1), pool, r.clone(), lo);
        let end = upper_bound_rw(idx.col(1), pool, r.clone(), hi);
        r = start..end.max(start);
    }
    pairs_rw(idx, pool, r)
}

fn scan_segment_column_rw(
    cx: &ExecContext,
    seg: &ClassSegment,
    coli: usize,
    restrict: &ORestrict,
    s_range: SRange,
    out: &mut Vec<(Oid, Oid)>,
) {
    let pool = cx.pool;
    let col = &seg.columns[coli];
    let mut rows = 0..seg.n;
    if let Some((lo, hi)) = s_range {
        match &seg.subjects {
            SubjectIds::Dense { base } => {
                let lo_oid = Oid::from_raw(lo);
                let hi_oid = Oid::from_raw(hi);
                if hi_oid < Oid::iri(0) || lo_oid > Oid::iri(sordf_model::oid::PAYLOAD_MASK) {
                    return;
                }
                let lo_p = if lo_oid < Oid::iri(0) {
                    0
                } else {
                    lo_oid.payload()
                }
                .max(*base);
                let hi_p = if hi_oid > Oid::iri(sordf_model::oid::PAYLOAD_MASK) {
                    sordf_model::oid::PAYLOAD_MASK
                } else {
                    hi_oid.payload()
                }
                .min(base + seg.n as u64 - 1);
                if lo_p > hi_p {
                    return;
                }
                rows = (lo_p - base) as usize..(hi_p - base + 1) as usize;
            }
            SubjectIds::Sparse { subjects } => {
                let start = lower_bound_rw(subjects, pool, 0..subjects.len(), lo);
                let end = upper_bound_rw(subjects, pool, 0..subjects.len(), hi);
                if start >= end {
                    return;
                }
                rows = start..end;
            }
        }
    }
    let (olo, ohi) = restrict.bounds();
    if !restrict.is_none() && seg.sorted_by == Some(coli) {
        let r = lower_bound_rw(col, pool, 0..col.len(), olo)
            ..upper_bound_rw(col, pool, 0..col.len(), ohi);
        rows = rows.start.max(r.start)..rows.end.min(r.end);
    }
    if rows.start >= rows.end {
        return;
    }
    let use_zonemaps = cx.config.zonemaps && !restrict.is_none();
    let mut row = rows.start;
    while row < rows.end {
        let page = row / VALS_PER_PAGE;
        if use_zonemaps && !col.zonemap().page(page).overlaps(olo, ohi) {
            ExecStats::bump(&cx.stats.zonemap_pages_skipped, 1);
            row = ((page + 1) * VALS_PER_PAGE).min(rows.end);
            continue;
        }
        let v = col.value(pool, row);
        if v != sordf_columnar::column::NULL_SENTINEL && restrict.accepts(v) {
            out.push((subject_at_rw(seg, pool, row), Oid::from_raw(v)));
        }
        row += 1;
    }
}

fn scan_multi_table_rw(
    cx: &ExecContext,
    seg: &ClassSegment,
    mi: usize,
    restrict: &ORestrict,
    s_range: SRange,
    out: &mut Vec<(Oid, Oid)>,
) {
    let pool = cx.pool;
    let table = &seg.multi[mi];
    let mut rows = 0..table.s.len();
    if let Some((lo, hi)) = s_range {
        let start = lower_bound_rw(&table.s, pool, 0..table.s.len(), lo);
        let end = upper_bound_rw(&table.s, pool, 0..table.s.len(), hi);
        rows = start..end.max(start);
    }
    for i in rows {
        let o = table.o.value(pool, i);
        if restrict.accepts(o) {
            out.push((Oid::from_raw(table.s.value(pool, i)), Oid::from_raw(o)));
        }
    }
}

/// Value-at-a-time star evaluator dispatching on the physical plan's
/// chosen access path — the rowwise counterpart of the planner's
/// `eval_one_star`, pluggable as a [`crate::planner::StarEvalFn`].
pub fn eval_star_rowwise(
    cx: &ExecContext,
    star: &Star,
    access: crate::plan::StarAccess,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
) -> Table {
    cx.check_cancelled();
    match access {
        crate::plan::StarAccess::PropMerge => {
            eval_star_default_rowwise(cx, star, filters, candidates, s_range, Source::Full)
        }
        crate::plan::StarAccess::RdfScan => {
            eval_star_rdfscan_rowwise(cx, star, filters, candidates, s_range)
        }
    }
}

/// Value-at-a-time [`crate::star::eval_star_default`].
pub fn eval_star_default_rowwise(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    source: Source,
) -> Table {
    let s_range = intersect_ranges(subject_filter_range(star, filters), s_range);
    let s_range = match star.subject_const {
        Some(c) => intersect_ranges(Some((c.raw(), c.raw())), s_range),
        None => s_range,
    };

    let mut streams: Vec<(usize, Vec<(Oid, Oid)>)> = star
        .props
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let restrict = prop_restrict(cx, p, filters);
            let mut pairs = scan_property_rowwise(cx, p.pred, &restrict, s_range, source);
            if let Some(c) = candidates {
                pairs = crate::join::semi_join_pairs(&pairs, c);
            }
            (i, pairs)
        })
        .collect();
    streams.sort_by_key(|(_, s)| s.len());
    if streams[0].1.is_empty() {
        return Table::empty(star.output_vars());
    }

    let mut vars = vec![star.subject_var];
    let (first_idx, first) = &streams[0];
    let first_is_var = matches!(star.props[*first_idx].o, crate::query::VarOrOid::Var(_));
    if let crate::query::VarOrOid::Var(v) = star.props[*first_idx].o {
        vars.push(v);
    }
    let mut table = Table::empty(vars);
    for &(s, o) in first {
        if first_is_var {
            table.push_row(&[s, o]);
        } else {
            table.push_row(&[s]);
        }
    }
    table.sorted_by = Some(0);

    for (idx, pairs) in streams.iter().skip(1) {
        match star.props[*idx].o {
            crate::query::VarOrOid::Var(v) => {
                table = crate::join::merge_join_pairs(cx, &table, 0, pairs, v);
            }
            crate::query::VarOrOid::Const(_) => {
                ExecStats::bump(&cx.stats.merge_joins, 1);
                let subjects: Vec<Oid> = pairs.iter().map(|&(s, _)| s).collect();
                let key = table.cols[0].clone();
                let mask: Vec<bool> = key
                    .iter()
                    .map(|s| subjects.binary_search(s).is_ok())
                    .collect();
                table.retain_rows(&mask);
            }
        }
        if table.is_empty() {
            break;
        }
    }
    let residual = residual_filters(cx, star, filters);
    crate::star::apply_filters(cx, &mut table, &residual);
    table
}

/// Value-at-a-time [`crate::star::eval_star_rdfscan`].
pub fn eval_star_rdfscan_rowwise(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
) -> Table {
    let StorageRef::Clustered { store, schema } = &cx.storage else {
        return eval_star_default_rowwise(cx, star, filters, candidates, s_range, Source::Full);
    };
    let s_range = intersect_ranges(subject_filter_range(star, filters), s_range);

    let out_vars = star.output_vars();
    let mut result = Table::empty(out_vars.clone());

    let mut covering_classes: Vec<bool> = vec![false; schema.classes.len()];
    for class in &schema.classes {
        let covered: Vec<Covered> = star
            .props
            .iter()
            .map(|p| {
                if let Some(i) = class.column_of(p.pred) {
                    Covered::Col(i)
                } else if let Some(i) = class.multi_of(p.pred) {
                    Covered::Multi(i)
                } else {
                    Covered::Uncovered
                }
            })
            .collect();
        let n_covered = covered
            .iter()
            .filter(|c| !matches!(c, Covered::Uncovered))
            .count();
        if n_covered == 0 {
            continue;
        }
        covering_classes[class.id.0 as usize] = true;
        let seg = store.segment(class.id);
        if seg.n == 0 {
            continue;
        }
        let t = scan_class_star_rw(cx, star, filters, candidates, s_range, seg, &covered);
        if !t.is_empty() {
            result.append(t);
        }
    }

    let mut irr = eval_star_default_rowwise(
        cx,
        star,
        filters,
        candidates,
        s_range,
        Source::IrregularOnly,
    );
    if !irr.is_empty() {
        // sordf-lint: allow(L3) — every irregular star table carries the star's subject var.
        let sc = irr.col_of(star.subject_var).expect("subject col");
        let mask: Vec<bool> = irr.cols[sc]
            .iter()
            .map(|&s| {
                schema
                    .class_of(s)
                    .map_or(true, |cid| !covering_classes[cid.0 as usize])
            })
            .collect();
        irr.retain_rows(&mask);
        if !irr.is_empty() {
            result.append(irr.project(&out_vars));
        }
    }
    result
}

/// Value-at-a-time RDFscan over one class segment (pre-vectorization code:
/// row-id materialization, per-row `Column::value` fetches, per-row
/// `subject_at`).
fn scan_class_star_rw(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    seg: &ClassSegment,
    covered: &[Covered],
) -> Table {
    let pool = cx.pool;
    if candidates.is_some() {
        ExecStats::bump(&cx.stats.rdf_joins, 1);
    } else {
        ExecStats::bump(&cx.stats.rdf_scans, 1);
    }

    let rows: Vec<usize> = match candidates {
        Some(cands) => {
            let mut rows: Vec<usize> = cands
                .iter()
                .filter(|&&s| s_range.map_or(true, |(lo, hi)| s.raw() >= lo && s.raw() <= hi))
                .filter_map(|&s| row_of_rw(seg, pool, s))
                .collect();
            rows.sort_unstable();
            rows.dedup();
            rows
        }
        None => {
            let mut range = 0..seg.n;
            if let Some((lo, hi)) = effective_subject_range(star, s_range) {
                match &seg.subjects {
                    SubjectIds::Dense { base } => {
                        let lo_p = Oid::from_raw(lo).payload().max(*base);
                        let hi_p = Oid::from_raw(hi).payload().min(base + seg.n as u64 - 1);
                        if lo_p > hi_p {
                            return Table::empty(star.output_vars());
                        }
                        range = (lo_p - base) as usize..(hi_p - base + 1) as usize;
                    }
                    SubjectIds::Sparse { subjects } => {
                        let start = lower_bound_rw(subjects, pool, 0..subjects.len(), lo);
                        let end = upper_bound_rw(subjects, pool, 0..subjects.len(), hi);
                        range = start..end.max(start);
                    }
                }
            }
            for (pi, cov) in covered.iter().enumerate() {
                let Covered::Col(ci) = cov else { continue };
                if seg.sorted_by != Some(*ci) {
                    continue;
                }
                let restrict = prop_restrict(cx, &star.props[pi], filters);
                // Pending delta inserts for the predicate forbid narrowing
                // on base values (see `star::delta_blocks_pruning`).
                if restrict.is_none() || crate::star::delta_blocks_pruning(cx, star.props[pi].pred)
                {
                    continue;
                }
                let (lo, hi) = restrict.bounds();
                let col = &seg.columns[*ci];
                let r = lower_bound_rw(col, pool, 0..col.len(), lo)
                    ..upper_bound_rw(col, pool, 0..col.len(), hi);
                range = range.start.max(r.start)..range.end.min(r.end);
            }
            if range.start >= range.end {
                return Table::empty(star.output_vars());
            }
            if cx.config.zonemaps {
                prune_rows_zm_rw(cx, star, filters, seg, covered, range)
            } else {
                range.collect()
            }
        }
    };
    if rows.is_empty() {
        return Table::empty(star.output_vars());
    }
    ExecStats::bump(&cx.stats.rows_scanned, rows.len() as u64);

    let (s_lo, s_hi) = (
        subject_at_rw(seg, pool, rows[0]).raw(),
        // sordf-lint: allow(L3) — callers pass a non-empty candidate row list (rows[0] read above).
        subject_at_rw(seg, pool, *rows.last().unwrap()).raw(),
    );

    enum Access {
        Col {
            vals: Vec<u64>,
            exceptions: Vec<(Oid, Oid)>,
            restrict: ORestrict,
        },
        Multi {
            pairs: Vec<(Oid, Oid)>,
            exceptions: Vec<(Oid, Oid)>,
        },
        Irr {
            pairs: Vec<(Oid, Oid)>,
        },
    }

    let accesses: Vec<Access> = star
        .props
        .iter()
        .zip(covered)
        .map(|(prop, cov)| {
            let restrict = prop_restrict(cx, prop, filters);
            let irr = || {
                scan_property_rowwise(
                    cx,
                    prop.pred,
                    &restrict,
                    Some((s_lo, s_hi)),
                    Source::IrregularOnly,
                )
            };
            match cov {
                Covered::Col(ci) => {
                    // Row-at-a-time gather: one pool request per row.
                    let mut vals: Vec<u64> = rows
                        .iter()
                        .map(|&r| seg.columns[*ci].value(pool, r))
                        .collect();
                    // Tombstoned column values behave exactly like NULLs.
                    if let Some(d) = cx.delta() {
                        if d.has_tombstones_for(prop.pred) {
                            for (ri, &row) in rows.iter().enumerate() {
                                let v = vals[ri];
                                if v != sordf_columnar::column::NULL_SENTINEL
                                    && d.is_deleted(Triple::new(
                                        subject_at_rw(seg, pool, row),
                                        prop.pred,
                                        Oid::from_raw(v),
                                    ))
                                {
                                    vals[ri] = sordf_columnar::column::NULL_SENTINEL;
                                }
                            }
                        }
                    }
                    Access::Col {
                        vals,
                        exceptions: irr(),
                        restrict,
                    }
                }
                Covered::Multi(mi) => {
                    let table = &seg.multi[*mi];
                    let lo = lower_bound_rw(&table.s, pool, 0..table.s.len(), s_lo);
                    let hi = upper_bound_rw(&table.s, pool, 0..table.s.len(), s_hi);
                    let pairs = (lo..hi)
                        .map(|i| {
                            (
                                Oid::from_raw(table.s.value(pool, i)),
                                Oid::from_raw(table.o.value(pool, i)),
                            )
                        })
                        .filter(|&(s, o)| {
                            restrict.accepts(o.raw())
                                && cx
                                    .delta()
                                    .map_or(true, |d| !d.is_deleted(Triple::new(s, prop.pred, o)))
                        })
                        .collect();
                    Access::Multi {
                        pairs,
                        exceptions: irr(),
                    }
                }
                Covered::Uncovered => Access::Irr { pairs: irr() },
            }
        })
        .collect();

    let out_vars = star.output_vars();
    let mut out = Table::empty(out_vars.clone());
    let star_filters = residual_filters(cx, star, filters);
    let out_pos: Vec<Option<usize>> = star
        .props
        .iter()
        .map(|p| match p.o {
            crate::query::VarOrOid::Var(v) => out_vars.iter().position(|&x| x == v),
            crate::query::VarOrOid::Const(_) => None,
        })
        .collect();

    let pure_columns = star_filters.is_empty()
        && accesses.iter().all(|a| match a {
            Access::Col { exceptions, .. } => exceptions.is_empty(),
            _ => false,
        });
    if pure_columns {
        let col_vals: Vec<(&Vec<u64>, &ORestrict, Option<usize>)> = accesses
            .iter()
            .zip(&out_pos)
            .map(|(a, &pos)| match a {
                Access::Col { vals, restrict, .. } => (vals, restrict, pos),
                _ => unreachable!(),
            })
            .collect();
        'fast: for (ri, &row) in rows.iter().enumerate() {
            for &(vals, restrict, _) in &col_vals {
                let v = vals[ri];
                if v == sordf_columnar::column::NULL_SENTINEL || !restrict.accepts(v) {
                    continue 'fast;
                }
            }
            out.cols[0].push(subject_at_rw(seg, pool, row));
            for &(vals, _, pos) in &col_vals {
                if let Some(pos) = pos {
                    out.cols[pos].push(Oid::from_raw(vals[ri]));
                }
            }
        }
        ExecStats::bump(&cx.stats.rows_emitted, out.len() as u64);
        return out;
    }

    let mut value_lists: Vec<Vec<Oid>> = vec![Vec::new(); star.props.len()];
    'rows: for (ri, &row) in rows.iter().enumerate() {
        let s = subject_at_rw(seg, pool, row);
        for (pi, access) in accesses.iter().enumerate() {
            let list = &mut value_lists[pi];
            list.clear();
            match access {
                Access::Col {
                    vals,
                    exceptions,
                    restrict,
                } => {
                    let v = vals[ri];
                    if v != sordf_columnar::column::NULL_SENTINEL && restrict.accepts(v) {
                        list.push(Oid::from_raw(v));
                    }
                    extend_from_sorted(list, exceptions, s);
                }
                Access::Multi { pairs, exceptions } => {
                    extend_from_sorted(list, pairs, s);
                    extend_from_sorted(list, exceptions, s);
                }
                Access::Irr { pairs } => {
                    extend_from_sorted(list, pairs, s);
                }
            }
            if list.is_empty() {
                continue 'rows;
            }
        }
        emit_combinations(cx, star, &star_filters, s, &value_lists, &mut out);
    }
    ExecStats::bump(&cx.stats.rows_emitted, out.len() as u64);
    out
}

/// Pre-vectorization zone-map pruning: first restricted covered column only,
/// rows materialized as indices.
fn prune_rows_zm_rw(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    seg: &ClassSegment,
    covered: &[Covered],
    range: Range<usize>,
) -> Vec<usize> {
    for (pi, cov) in covered.iter().enumerate() {
        let Covered::Col(ci) = cov else { continue };
        if seg.sorted_by == Some(*ci) {
            continue;
        }
        let restrict = prop_restrict(cx, &star.props[pi], filters);
        // Pending delta inserts for the predicate forbid pruning on base
        // values (see `star::delta_blocks_pruning`).
        if restrict.is_none() || crate::star::delta_blocks_pruning(cx, star.props[pi].pred) {
            continue;
        }
        let (lo, hi) = restrict.bounds();
        let zm = seg.columns[*ci].zonemap();
        let mut rows = Vec::new();
        let first_page = range.start / VALS_PER_PAGE;
        let last_page = (range.end - 1) / VALS_PER_PAGE;
        for page in first_page..=last_page {
            let st = zm.page(page);
            if !st.overlaps(lo, hi) {
                ExecStats::bump(&cx.stats.zonemap_pages_skipped, 1);
                continue;
            }
            let pstart = (page * VALS_PER_PAGE).max(range.start);
            let pend = ((page + 1) * VALS_PER_PAGE).min(range.end);
            rows.extend(pstart..pend);
        }
        return rows;
    }
    range.collect()
}
