//! Star-pattern evaluation: the Default self-join plan and RDFscan/RDFjoin.
//!
//! A *star* is the set of triple patterns sharing one subject. The Default
//! scheme evaluates it with one property scan per pattern and subject merge
//! joins (Fig. 4's left-hand plans). RDFscan answers the whole star from one
//! class segment's aligned columns — "eliminating all join effort when
//! producing a star that stems from a single CS" — consulting the irregular
//! store only for exceptions and uncovered properties. RDFjoin is RDFscan
//! driven by a stream of candidate subjects (Fig. 4b, cf. Pivot Index Scan).

use crate::context::{ExecContext, ExecStats, StorageRef};
use crate::expr::{CmpOp, Expr};
use crate::query::{Query, VarOrOid};
use crate::scan::{scan_property, ORestrict, SRange, Source};
use crate::table::{Table, VarId};
use sordf_model::{Oid, TypeTag};
use sordf_storage::clustered::SubjectIds;
use sordf_storage::ClassSegment;

/// One property of a star.
#[derive(Debug, Clone, Copy)]
pub struct StarProp {
    pub pred: Oid,
    pub o: VarOrOid,
}

/// A subject-grouped set of patterns.
#[derive(Debug, Clone)]
pub struct Star {
    /// Variable bound to the subject (a fresh hidden variable when the
    /// subject is a constant).
    pub subject_var: VarId,
    /// The constant subject, if any.
    pub subject_const: Option<Oid>,
    pub props: Vec<StarProp>,
}

impl Star {
    /// Variables this star binds (subject + object variables).
    pub fn bound_vars(&self) -> Vec<VarId> {
        let mut out = vec![self.subject_var];
        for p in &self.props {
            if let VarOrOid::Var(v) = p.o {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Canonical output layout: subject column first, then one column per
    /// variable-object property in pattern order.
    pub fn output_vars(&self) -> Vec<VarId> {
        let mut out = vec![self.subject_var];
        for p in &self.props {
            if let VarOrOid::Var(v) = p.o {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Group a query's patterns into stars. Repeated object variables within a
/// star (and objects equal to the subject variable) are rewritten to fresh
/// variables plus equality filters, so each star column is independent.
pub fn stars_of(query: &mut Query) -> (Vec<Star>, Vec<Expr>) {
    let mut stars: Vec<Star> = Vec::new();
    let mut key_of: Vec<(VarOrOid, usize)> = Vec::new();
    let mut extra_filters = Vec::new();
    let patterns = query.patterns.clone();
    for pat in &patterns {
        let star_idx = match key_of.iter().find(|(k, _)| *k == pat.s) {
            Some(&(_, i)) => i,
            None => {
                let subject_var = match pat.s {
                    VarOrOid::Var(v) => v,
                    VarOrOid::Const(_) => query.var(&format!("_s{}", stars.len())),
                };
                stars.push(Star {
                    subject_var,
                    subject_const: match pat.s {
                        VarOrOid::Const(c) => Some(c),
                        VarOrOid::Var(_) => None,
                    },
                    props: Vec::new(),
                });
                key_of.push((pat.s, stars.len() - 1));
                stars.len() - 1
            }
        };
        let star = &mut stars[star_idx];
        let o = match pat.o {
            VarOrOid::Var(v) => {
                let clash =
                    v == star.subject_var || star.props.iter().any(|p| p.o == VarOrOid::Var(v));
                if clash {
                    let fresh = query.var(&format!("_eq{}_{}", star_idx, star.props.len()));
                    extra_filters.push(Expr::cmp(Expr::Var(fresh), CmpOp::Eq, Expr::Var(v)));
                    VarOrOid::Var(fresh)
                } else {
                    VarOrOid::Var(v)
                }
            }
            c => c,
        };
        star.props.push(StarProp { pred: pat.p, o });
    }
    (stars, extra_filters)
}

/// Filters whose variables are all bound by `vars`.
pub fn filters_bound_by<'f>(filters: &'f [Expr], vars: &[VarId]) -> Vec<&'f Expr> {
    filters
        .iter()
        .filter(|f| {
            let mut fv = Vec::new();
            f.vars(&mut fv);
            fv.iter().all(|v| vars.contains(v))
        })
        .collect()
}

/// Derive a pushable object restriction for `v` from the filters.
pub fn restrict_for_var(filters: &[&Expr], v: VarId, strings_ordered: bool) -> ORestrict {
    let mut lo = 0u64;
    let mut hi = u64::MAX;
    let mut eq: Option<Oid> = None;
    for f in filters {
        let Some((fv, op, c)) = f.as_var_cmp() else {
            continue;
        };
        if fv != v || c.is_null() {
            continue;
        }
        // Ordered comparisons on parse-order string OIDs are not
        // OID-order-compatible; leave them to the post-filter.
        if c.tag() == TypeTag::Str && !strings_ordered && op != CmpOp::Eq {
            continue;
        }
        match op {
            CmpOp::Eq => eq = Some(eq.map_or(c, |prev| if prev == c { c } else { Oid::NULL })),
            CmpOp::Ge => lo = lo.max(c.raw()),
            CmpOp::Gt => lo = lo.max(c.raw().saturating_add(1)),
            CmpOp::Le => hi = hi.min(c.raw()),
            CmpOp::Lt => hi = hi.min(c.raw().saturating_sub(1)),
            CmpOp::Ne => {}
        }
    }
    if eq == Some(Oid::NULL) {
        // Conflicting equalities: empty restriction.
        return ORestrict {
            eq: None,
            range: Some((1, 0)),
        };
    }
    if let Some(c) = eq {
        if c.raw() < lo || c.raw() > hi {
            return ORestrict {
                eq: None,
                range: Some((1, 0)),
            };
        }
        return ORestrict::eq(c);
    }
    if lo == 0 && hi == u64::MAX {
        ORestrict::none()
    } else {
        ORestrict {
            eq: None,
            range: Some((lo, hi)),
        }
    }
}

/// The restriction to push into a property's scan.
pub(crate) fn prop_restrict(cx: &ExecContext, prop: &StarProp, filters: &[&Expr]) -> ORestrict {
    match prop.o {
        VarOrOid::Const(c) => ORestrict::eq(c),
        VarOrOid::Var(v) => restrict_for_var(filters, v, cx.strings_value_ordered()),
    }
}

/// Do pending delta inserts forbid base-value narrowing/pruning (sort-key
/// row ranges, zone-map page skips) for `pred`'s column? A pending insert
/// may supply the matching value for a subject whose base column value is
/// NULL or out of range; dropping that row on base evidence would drop the
/// exception bindings with it. Shared by the vectorized and rowwise star
/// paths — their byte-identity contract depends on pruning identically.
pub(crate) fn delta_blocks_pruning(cx: &ExecContext, pred: Oid) -> bool {
    cx.delta().is_some_and(|d| d.has_inserts_for(pred))
}

/// Apply filters to a table (post-filtering; always sound).
pub fn apply_filters(cx: &ExecContext, table: &mut Table, filters: &[&Expr]) {
    if filters.is_empty() || table.is_empty() {
        return;
    }
    let applicable = filters_bound_by_refs(filters, &table.vars);
    if applicable.is_empty() {
        return;
    }
    let n = table.len();
    let mut mask = vec![true; n];
    for (i, keep) in mask.iter_mut().enumerate() {
        let lookup = |v: VarId| {
            table
                .col_of(v)
                .map(|c| table.cols[c][i])
                .unwrap_or(Oid::NULL)
        };
        for f in &applicable {
            if !f.eval(&lookup, cx.dict).as_bool() {
                *keep = false;
                break;
            }
        }
    }
    table.retain_rows(&mask);
}

pub(crate) fn filters_bound_by_refs<'f>(filters: &[&'f Expr], vars: &[VarId]) -> Vec<&'f Expr> {
    filters
        .iter()
        .filter(|f| {
            let mut fv = Vec::new();
            f.vars(&mut fv);
            fv.iter().all(|v| vars.contains(v))
        })
        .copied()
        .collect()
}

/// Effective subject range of a Default-scheme star: constant subject,
/// caller-provided range, and any pushable range filters on the subject
/// variable (the SQL frontend restricts table scans to class segments this
/// way).
pub(crate) fn default_scan_range(star: &Star, filters: &[&Expr], s_range: SRange) -> SRange {
    let s_range = intersect_ranges(subject_filter_range(star, filters), s_range);
    match star.subject_const {
        Some(c) => intersect_ranges(Some((c.raw(), c.raw())), s_range),
        None => s_range,
    }
}

/// Scan one property's (subject, object) stream for a Default-scheme star —
/// pushes the property's restriction and semi-joins against candidates.
/// The unit of work the parallel executor fans out per property.
pub(crate) fn scan_star_prop(
    cx: &ExecContext,
    star: &Star,
    prop_idx: usize,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    source: Source,
) -> Vec<(Oid, Oid)> {
    let p = &star.props[prop_idx];
    let restrict = prop_restrict(cx, p, filters);
    let mut pairs = scan_property(cx, p.pred, &restrict, s_range, source);
    if let Some(c) = candidates {
        pairs = crate::join::semi_join_pairs(&pairs, c);
    }
    pairs
}

/// Join per-property streams into the star's binding table (the self-join
/// pipeline of the Default scheme) and apply residual filters. Streams must
/// be `(property index, (s, o)-sorted pairs)` in pattern order.
pub(crate) fn join_star_streams(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    mut streams: Vec<(usize, Vec<(Oid, Oid)>)>,
) -> Table {
    // Join smallest-first (classic heuristic).
    streams.sort_by_key(|(_, s)| s.len());
    if streams[0].1.is_empty() {
        // Nothing can match; skip the join pipeline entirely.
        let mut vars = vec![star.subject_var];
        for p in &star.props {
            if let VarOrOid::Var(v) = p.o {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        return Table::empty(vars);
    }

    // Seed table from the first stream, built column-at-a-time.
    let mut vars = vec![star.subject_var];
    let (first_idx, first) = &streams[0];
    let first_is_var = matches!(star.props[*first_idx].o, VarOrOid::Var(_));
    if let VarOrOid::Var(v) = star.props[*first_idx].o {
        vars.push(v);
    }
    let mut table = Table::empty(vars);
    table.cols[0] = first.iter().map(|&(s, _)| s).collect();
    if first_is_var {
        table.cols[1] = first.iter().map(|&(_, o)| o).collect();
    }
    table.sorted_by = Some(0);

    for (idx, pairs) in streams.iter().skip(1) {
        match star.props[*idx].o {
            VarOrOid::Var(v) => {
                table = crate::join::merge_join_pairs(cx, &table, 0, pairs, v);
            }
            VarOrOid::Const(_) => {
                // Semi-join: keep rows whose subject appears in the stream.
                // Both sides are subject-sorted, so one merge pass replaces
                // the per-row binary search.
                ExecStats::bump(&cx.stats.merge_joins, 1);
                let key = &table.cols[0];
                let mut mask = vec![false; key.len()];
                let mut j = 0usize;
                for (i, s) in key.iter().enumerate() {
                    while j < pairs.len() && pairs[j].0 < *s {
                        j += 1;
                    }
                    mask[i] = j < pairs.len() && pairs[j].0 == *s;
                }
                table.retain_rows(&mask);
            }
        }
        if table.is_empty() {
            break;
        }
    }
    // Skip re-evaluating filters the pushed restricts already enforced.
    let residual = residual_filters(cx, star, filters);
    apply_filters(cx, &mut table, &residual);
    table
}

/// Evaluate a star with the **Default** scheme: one property scan per
/// pattern, subject merge self-joins, post-filtering.
pub fn eval_star_default(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    source: Source,
) -> Table {
    let s_range = default_scan_range(star, filters, s_range);
    let streams: Vec<(usize, Vec<(Oid, Oid)>)> = (0..star.props.len())
        .map(|i| {
            (
                i,
                scan_star_prop(cx, star, i, filters, candidates, s_range, source),
            )
        })
        .collect();
    join_star_streams(cx, star, filters, streams)
}

/// How a star property maps onto one class.
pub(crate) enum Covered {
    Col(usize),
    Multi(usize),
    Uncovered,
}

/// How each star property maps onto `class`, plus how many properties the
/// class covers at all. Shared by the sequential and parallel RDFscan paths.
pub(crate) fn class_coverage(class: &sordf_schema::ClassDef, star: &Star) -> (Vec<Covered>, usize) {
    let covered: Vec<Covered> = star
        .props
        .iter()
        .map(|p| {
            if let Some(i) = class.column_of(p.pred) {
                Covered::Col(i)
            } else if let Some(i) = class.multi_of(p.pred) {
                Covered::Multi(i)
            } else {
                Covered::Uncovered
            }
        })
        .collect();
    let n_covered = covered
        .iter()
        .filter(|c| !matches!(c, Covered::Uncovered))
        .count();
    (covered, n_covered)
}

/// The irregular branch of RDFscan: subjects in no covering class, star fully
/// answered from the irregular store, projected onto the star layout.
#[allow(clippy::too_many_arguments)]
pub(crate) fn irregular_star_table(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    schema: &sordf_schema::EmergentSchema,
    covering_classes: &[bool],
    out_vars: &[VarId],
) -> Table {
    let mut irr = eval_star_default(
        cx,
        star,
        filters,
        candidates,
        s_range,
        Source::IrregularOnly,
    );
    if irr.is_empty() {
        return Table::empty(out_vars.to_vec());
    }
    // sordf-lint: allow(L3) — every irregular star table carries the star's subject var.
    let sc = irr.col_of(star.subject_var).expect("subject col");
    let mask: Vec<bool> = irr.cols[sc]
        .iter()
        .map(|&s| {
            schema
                .class_of(s)
                .map_or(true, |cid| !covering_classes[cid.0 as usize])
        })
        .collect();
    irr.retain_rows(&mask);
    if irr.is_empty() {
        return Table::empty(out_vars.to_vec());
    }
    irr.project(out_vars)
}

/// A prepared scan over one class segment: page-at-a-time (RDFscan) or
/// candidate-driven (RDFjoin). Produced by [`prepare_star_scans`]; the
/// sequential path executes each over its full span, the parallel path
/// splits the span into morsels.
pub(crate) enum ClassScanPrep<'a> {
    Chunks(ChunkScanPrep<'a>),
    Rows(RowScanPrep<'a>),
}

impl ClassScanPrep<'_> {
    /// Execute this prepared scan over its entire span.
    pub(crate) fn scan_all(&self, cx: &ExecContext) -> Table {
        match self {
            ClassScanPrep::Chunks(p) => scan_chunk_pages(cx, p, p.pages()),
            ClassScanPrep::Rows(p) => scan_row_range(cx, p, 0..p.n_rows()),
        }
    }
}

/// Select the classes covering at least one star property and prepare one
/// scan per non-empty segment, **in schema class order**. Returns the
/// covering-class mask (for the irregular branch) and the preps. This is
/// the single source of segment enumeration shared by the sequential and
/// parallel RDFscan paths — their byte-identity contract depends on both
/// visiting exactly these segments in exactly this order.
pub(crate) fn prepare_star_scans<'a>(
    cx: &ExecContext,
    star: &'a Star,
    filters: &[&'a Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
    store: &'a sordf_storage::ClusteredStore,
    schema: &sordf_schema::EmergentSchema,
) -> (Vec<bool>, Vec<ClassScanPrep<'a>>) {
    let mut covering_classes: Vec<bool> = vec![false; schema.classes.len()];
    let mut preps: Vec<ClassScanPrep<'a>> = Vec::new();
    for class in &schema.classes {
        let (covered, n_covered) = class_coverage(class, star);
        if n_covered == 0 {
            continue;
        }
        covering_classes[class.id.0 as usize] = true;
        let seg = store.segment(class.id);
        if seg.n == 0 {
            continue;
        }
        match candidates {
            Some(cands) => {
                if let Some(p) = prepare_row_scan(cx, star, filters, cands, s_range, seg, &covered)
                {
                    preps.push(ClassScanPrep::Rows(p));
                }
            }
            None => {
                if let Some(p) = prepare_chunk_scan(cx, star, filters, s_range, seg, &covered) {
                    preps.push(ClassScanPrep::Chunks(p));
                }
            }
        }
    }
    (covering_classes, preps)
}

/// Evaluate a star with **RDFscan** (or **RDFjoin** when `candidates` is
/// given). Falls back to the Default scheme on baseline storage.
pub fn eval_star_rdfscan(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
) -> Table {
    let StorageRef::Clustered { store, schema } = &cx.storage else {
        return eval_star_default(cx, star, filters, candidates, s_range, Source::Full);
    };
    let s_range = intersect_ranges(subject_filter_range(star, filters), s_range);

    let out_vars = star.output_vars();
    let mut result = Table::empty(out_vars.clone());

    let (covering_classes, preps) =
        prepare_star_scans(cx, star, filters, candidates, s_range, store, schema);
    for prep in &preps {
        let t = prep.scan_all(cx);
        if !t.is_empty() {
            result.append(t);
        }
    }

    // Irregular branch: subjects in no covering class, star fully answered
    // from the irregular store.
    let irr = irregular_star_table(
        cx,
        star,
        filters,
        candidates,
        s_range,
        schema,
        &covering_classes,
        &out_vars,
    );
    if !irr.is_empty() {
        result.append(irr);
    }
    result
}

/// Per-property access resolved against one class segment. Column values are
/// *not* materialized here — the chunk path reads them straight from pinned
/// pages; only side-table pairs and irregular exceptions (small, subject-
/// sorted lists) are collected up front. Pending writes surface here too:
/// delta inserts arrive through the exception lists (they are scanned with
/// `Source::IrregularOnly`, which unions the delta runs), and `deleted`
/// carries the tombstoned (s, o) pairs the kernels must filter out of the
/// aligned column values.
pub(crate) enum Access {
    /// Aligned column + sorted exceptions + tombstoned pairs.
    Col {
        ci: usize,
        exceptions: Vec<(Oid, Oid)>,
        deleted: Vec<(Oid, Oid)>,
        restrict: ORestrict,
    },
    /// Multi table pairs in subject range (sorted by s) + exceptions.
    Multi {
        pairs: Vec<(Oid, Oid)>,
        exceptions: Vec<(Oid, Oid)>,
    },
    /// Only irregular pairs (uncovered property).
    Irr { pairs: Vec<(Oid, Oid)> },
}

/// Is `(s, v)` in the sorted tombstoned-pair list?
#[inline]
pub(crate) fn pair_deleted(deleted: &[(Oid, Oid)], s: Oid, v: u64) -> bool {
    !deleted.is_empty() && deleted.binary_search(&(s, Oid::from_raw(v))).is_ok()
}

/// Build the per-property accesses for subjects in `[s_lo, s_hi]`.
fn build_accesses(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    seg: &ClassSegment,
    covered: &[Covered],
    s_lo: u64,
    s_hi: u64,
) -> Vec<Access> {
    let pool = cx.pool;
    star.props
        .iter()
        .zip(covered)
        .map(|(prop, cov)| {
            let restrict = prop_restrict(cx, prop, filters);
            let irr = || {
                scan_property(
                    cx,
                    prop.pred,
                    &restrict,
                    Some((s_lo, s_hi)),
                    Source::IrregularOnly,
                )
            };
            // Tombstoned (s, o) pairs for this predicate in the subject
            // range — the kernels filter these out of base column values.
            let deleted = || match cx.delta() {
                Some(d) if d.has_tombstones_for(prop.pred) => {
                    d.deleted_pairs_for(prop.pred, s_lo, s_hi)
                }
                _ => Vec::new(),
            };
            match cov {
                Covered::Col(ci) => Access::Col {
                    ci: *ci,
                    exceptions: irr(),
                    deleted: deleted(),
                    restrict,
                },
                Covered::Multi(mi) => {
                    let table = &seg.multi[*mi];
                    let lo = table.s.lower_bound(pool, s_lo);
                    let hi = table.s.upper_bound(pool, s_hi);
                    let del = deleted();
                    let mut pairs = Vec::new();
                    sordf_columnar::Column::for_each_chunk_pair(
                        &table.s,
                        &table.o,
                        pool,
                        lo..hi,
                        |sc, oc| {
                            pairs.extend(
                                sc.values()
                                    .iter()
                                    .zip(oc.values())
                                    .filter(|&(&s, &o)| {
                                        restrict.accepts(o)
                                            && !pair_deleted(&del, Oid::from_raw(s), o)
                                    })
                                    .map(|(&s, &o)| (Oid::from_raw(s), Oid::from_raw(o))),
                            );
                        },
                    );
                    Access::Multi {
                        pairs,
                        exceptions: irr(),
                    }
                }
                Covered::Uncovered => Access::Irr { pairs: irr() },
            }
        })
        .collect()
}

/// Prepared state for a candidate-driven (RDFjoin) class scan: resolved row
/// ids, their subjects, and the per-property accesses. [`scan_row_range`]
/// executes any contiguous sub-range of `rows` independently — the morsel
/// unit of the parallel executor.
pub(crate) struct RowScanPrep<'a> {
    star: &'a Star,
    seg: &'a ClassSegment,
    rows: Vec<usize>,
    subjects: Vec<Oid>,
    accesses: Vec<Access>,
    out_vars: Vec<VarId>,
    out_pos: Vec<Option<usize>>,
    star_filters: Vec<&'a Expr>,
    pure_columns: bool,
}

impl RowScanPrep<'_> {
    /// Number of candidate rows to evaluate.
    pub(crate) fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Resolve candidates to segment rows and build the shared scan state.
/// Returns `None` when no candidate falls into this segment.
pub(crate) fn prepare_row_scan<'a>(
    cx: &ExecContext,
    star: &'a Star,
    filters: &[&'a Expr],
    cands: &[Oid],
    s_range: SRange,
    seg: &'a ClassSegment,
    covered: &[Covered],
) -> Option<RowScanPrep<'a>> {
    let pool = cx.pool;
    ExecStats::bump(&cx.stats.rdf_joins, 1);

    let mut rows: Vec<usize> = cands
        .iter()
        .filter(|&&s| s_range.map_or(true, |(lo, hi)| s.raw() >= lo && s.raw() <= hi))
        .filter_map(|&s| seg.row_of(pool, s))
        .collect();
    rows.sort_unstable();
    rows.dedup();
    if rows.is_empty() {
        return None;
    }
    ExecStats::bump(&cx.stats.rows_scanned, rows.len() as u64);

    // Batched subject materialization (one pin per subject page on sparse
    // segments — previously one pool request per row).
    let subjects = seg.subjects_at(pool, &rows);
    // sordf-lint: allow(L3) — `rows` is non-empty on this path, so `subjects` is too.
    let (s_lo, s_hi) = (subjects[0].raw(), subjects.last().unwrap().raw());
    let accesses = build_accesses(cx, star, filters, seg, covered, s_lo, s_hi);

    let out_vars = star.output_vars();
    let star_filters = residual_filters(cx, star, filters);
    let out_pos = out_positions(star, &out_vars);
    let pure_columns = star_filters.is_empty()
        && accesses.iter().all(|a| match a {
            Access::Col {
                exceptions,
                deleted,
                ..
            } => exceptions.is_empty() && deleted.is_empty(),
            _ => false,
        });
    Some(RowScanPrep {
        star,
        seg,
        rows,
        subjects,
        accesses,
        out_vars,
        out_pos,
        star_filters,
        pure_columns,
    })
}

/// Evaluate the star for the candidate rows in `rr` (indices into the
/// prepared row list). Column values are gathered batch-wise (one pin per
/// touched page). Concatenating the outputs of consecutive ranges yields
/// exactly the full-range table — the order-stability contract morsels
/// rely on.
pub(crate) fn scan_row_range(
    cx: &ExecContext,
    prep: &RowScanPrep,
    rr: std::ops::Range<usize>,
) -> Table {
    let pool = cx.pool;
    let star = prep.star;
    let seg = prep.seg;
    let rows = &prep.rows[rr.clone()];
    let subjects = &prep.subjects[rr];
    let accesses = &prep.accesses;
    let out_pos = &prep.out_pos;
    let star_filters = &prep.star_filters;
    let mut out = Table::empty(prep.out_vars.clone());
    if rows.is_empty() {
        return out;
    }
    // Per-morsel cancellation poll (morsels bound this range's size).
    cx.check_cancelled();
    // Gather each column once, aligned with this range's `rows`.
    let gathered: Vec<Option<Vec<u64>>> = accesses
        .iter()
        .map(|a| match a {
            Access::Col { ci, .. } => Some(seg.columns[*ci].gather(pool, rows)),
            _ => None,
        })
        .collect();

    if prep.pure_columns {
        let col_vals: Vec<(&Vec<u64>, &ORestrict, Option<usize>)> = accesses
            .iter()
            .zip(&gathered)
            .zip(out_pos)
            .map(|((a, g), &pos)| match a {
                // sordf-lint: allow(L3) — gather always fills the slot of a Col access (same match arms).
                Access::Col { restrict, .. } => (g.as_ref().unwrap(), restrict, pos),
                _ => unreachable!(),
            })
            .collect();
        'fast: for (ri, &s) in subjects.iter().enumerate() {
            for &(vals, restrict, _) in &col_vals {
                let v = vals[ri];
                if v == sordf_columnar::column::NULL_SENTINEL || !restrict.accepts(v) {
                    continue 'fast;
                }
            }
            out.cols[0].push(s);
            for &(vals, _, pos) in &col_vals {
                if let Some(pos) = pos {
                    out.cols[pos].push(Oid::from_raw(vals[ri]));
                }
            }
        }
        ExecStats::bump(&cx.stats.rows_emitted, out.len() as u64);
        return out;
    }

    let mut value_lists: Vec<Vec<Oid>> = vec![Vec::new(); star.props.len()];
    'rows: for (ri, &s) in subjects.iter().enumerate() {
        for (pi, access) in accesses.iter().enumerate() {
            let list = &mut value_lists[pi];
            list.clear();
            match access {
                Access::Col {
                    exceptions,
                    deleted,
                    restrict,
                    ..
                } => {
                    // sordf-lint: allow(L3) — gather always fills the slot of a Col access (same match arms).
                    let v = gathered[pi].as_ref().unwrap()[ri];
                    if v != sordf_columnar::column::NULL_SENTINEL
                        && restrict.accepts(v)
                        && !pair_deleted(deleted, s, v)
                    {
                        list.push(Oid::from_raw(v));
                    }
                    extend_from_sorted(list, exceptions, s);
                }
                Access::Multi { pairs, exceptions } => {
                    extend_from_sorted(list, pairs, s);
                    extend_from_sorted(list, exceptions, s);
                }
                Access::Irr { pairs } => {
                    extend_from_sorted(list, pairs, s);
                }
            }
            if list.is_empty() {
                continue 'rows; // pattern requires presence
            }
        }
        emit_combinations(cx, star, star_filters, s, &value_lists, &mut out);
    }
    ExecStats::bump(&cx.stats.rows_emitted, out.len() as u64);
    out
}

/// Prepared state for a page-at-a-time (RDFscan) class scan: the narrowed
/// row range, per-property accesses, and zone-map pruning plan.
/// [`scan_chunk_pages`] executes any page sub-range independently — the
/// morsel unit of the parallel executor.
pub(crate) struct ChunkScanPrep<'a> {
    star: &'a Star,
    seg: &'a ClassSegment,
    range: std::ops::Range<usize>,
    accesses: Vec<Access>,
    out_vars: Vec<VarId>,
    out_pos: Vec<Option<usize>>,
    star_filters: Vec<&'a Expr>,
    pure_columns: bool,
    prune_cols: Vec<(usize, u64, u64)>,
    first_page: usize,
    last_page: usize,
}

impl ChunkScanPrep<'_> {
    /// The touched pages as a half-open range (for morsel splitting).
    pub(crate) fn pages(&self) -> std::ops::Range<usize> {
        self.first_page..self.last_page + 1
    }
}

/// Narrow the row range and build the shared scan state for one segment.
/// Returns `None` when the subject/sort-key restrictions leave no rows.
pub(crate) fn prepare_chunk_scan<'a>(
    cx: &ExecContext,
    star: &'a Star,
    filters: &[&'a Expr],
    s_range: SRange,
    seg: &'a ClassSegment,
    covered: &[Covered],
) -> Option<ChunkScanPrep<'a>> {
    use sordf_columnar::VALS_PER_PAGE;
    let pool = cx.pool;
    ExecStats::bump(&cx.stats.rdf_scans, 1);

    // ---- Row range -------------------------------------------------------
    let mut range = 0..seg.n;
    if let Some((lo, hi)) = effective_subject_range(star, s_range) {
        match &seg.subjects {
            SubjectIds::Dense { base } => {
                let lo_p = Oid::from_raw(lo).payload().max(*base);
                let hi_p = Oid::from_raw(hi).payload().min(base + seg.n as u64 - 1);
                if lo_p > hi_p {
                    return None;
                }
                range = (lo_p - base) as usize..(hi_p - base + 1) as usize;
            }
            SubjectIds::Sparse { subjects } => {
                let start = subjects.lower_bound(pool, lo);
                let end = subjects.upper_bound(pool, hi);
                range = start..end.max(start);
            }
        }
    }
    // Sort-key narrowing: if the segment is sub-ordered by a column this
    // star restricts, binary-search the row range. Unsound while the delta
    // holds inserts for the predicate — a pending insert can supply the
    // matching value for a row whose *base* value is NULL or out of range,
    // and narrowing would drop that row's exception bindings — so those
    // predicates scan the full range until a reorganization folds them in.
    // (The rowwise reference applies the identical rule; byte-identity.)
    for (pi, cov) in covered.iter().enumerate() {
        let Covered::Col(ci) = cov else { continue };
        if seg.sorted_by != Some(*ci) {
            continue;
        }
        let restrict = prop_restrict(cx, &star.props[pi], filters);
        if restrict.is_none() || delta_blocks_pruning(cx, star.props[pi].pred) {
            continue;
        }
        let (lo, hi) = restrict.bounds();
        if let Some(r) = seg.sorted_row_range(pool, *ci, lo, hi) {
            range = range.start.max(r.start)..range.end.min(r.end);
        }
    }
    if range.start >= range.end {
        return None;
    }

    // ---- Accesses --------------------------------------------------------
    let (s_lo, s_hi) = (
        seg.subject_at(pool, range.start).raw(),
        seg.subject_at(pool, range.end - 1).raw(),
    );
    let accesses = build_accesses(cx, star, filters, seg, covered, s_lo, s_hi);

    let out_vars = star.output_vars();
    // Filters of the form `var CMP const` on this star's single-bound
    // variables are already enforced by the pushed restricts (column checks,
    // exception scans, s_range); only the rest needs per-row evaluation.
    let star_filters = residual_filters(cx, star, filters);
    let out_pos = out_positions(star, &out_vars);

    // Fast path: pure aligned columns, no exceptions / side tables /
    // uncovered props, no residual filters — the common case on regular
    // data, and the code path that makes RDFscan "CPU efficient".
    let pure_columns = star_filters.is_empty()
        && accesses.iter().all(|a| match a {
            Access::Col {
                exceptions,
                deleted,
                ..
            } => exceptions.is_empty() && deleted.is_empty(),
            _ => false,
        });

    // Zone-map pruning setup. The pure path may prune on *every* restricted
    // column (each row must pass every column check anyway); the general
    // path must prune exactly like the value-at-a-time original — on the
    // first restricted covered non-sort-key column only — because a pruned
    // page also suppresses that page's exception/side-table bindings.
    let zm_on = cx.config.zonemaps;
    let prune_cols: Vec<(usize, u64, u64)> = if !zm_on {
        Vec::new()
    } else {
        // A pruned page suppresses that page's exception bindings too, so a
        // column whose predicate has pending delta inserts must not prune
        // (same rule as sort-key narrowing above; mirrored in the rowwise
        // reference).
        let mut cols: Vec<(usize, u64, u64)> = accesses
            .iter()
            .enumerate()
            .filter_map(|(pi, a)| match a {
                Access::Col { ci, restrict, .. }
                    if !restrict.is_none()
                        && seg.sorted_by != Some(*ci)
                        && !delta_blocks_pruning(cx, star.props[pi].pred) =>
                {
                    let (lo, hi) = restrict.bounds();
                    Some((*ci, lo, hi))
                }
                _ => None,
            })
            .collect();
        if !pure_columns {
            cols.truncate(1);
        }
        cols
    };

    let first_page = range.start / VALS_PER_PAGE;
    let last_page = (range.end - 1) / VALS_PER_PAGE;
    Some(ChunkScanPrep {
        star,
        seg,
        range,
        accesses,
        out_vars,
        out_pos,
        star_filters,
        pure_columns,
        prune_cols,
        first_page,
        last_page,
    })
}

/// RDFscan kernel: evaluate the star page-at-a-time over the pages in
/// `pages` (clamped to the prepared range). Every covered column's page is
/// pinned exactly once per touched page (subject pages of sparse segments in
/// lockstep); zone-map pruning and the all-NULL fast path run *before* pages
/// are pinned, so skipped pages cost no pool traffic; values are read from
/// contiguous slices, with no row-id or column materialization.
/// Concatenating the outputs of consecutive page ranges yields exactly the
/// full-range table — the order-stability contract morsels rely on.
pub(crate) fn scan_chunk_pages(
    cx: &ExecContext,
    prep: &ChunkScanPrep,
    pages: std::ops::Range<usize>,
) -> Table {
    use sordf_columnar::VALS_PER_PAGE;
    let pool = cx.pool;
    let star = prep.star;
    let seg = prep.seg;
    let range = &prep.range;
    let accesses = &prep.accesses;
    let out_pos = &prep.out_pos;
    let star_filters = &prep.star_filters;
    let pure_columns = prep.pure_columns;
    let prune_cols = &prep.prune_cols;

    let mut out = Table::empty(prep.out_vars.clone());
    let first_page = pages.start.max(prep.first_page);
    let last_page = (pages.end.saturating_sub(1)).min(prep.last_page);
    if first_page > last_page {
        return out;
    }
    let mut rows_scanned = 0u64;
    let mut value_lists: Vec<Vec<Oid>> = vec![Vec::new(); star.props.len()];

    'pages: for p in first_page..=last_page {
        // Per-page cancellation poll — the bounded-work boundary of the
        // RDFscan kernel.
        cx.check_cancelled();
        // Pre-pin pruning: zone-map misses and (on the pure path) pages
        // where a required column is entirely NULL.
        for &(ci, lo, hi) in prune_cols {
            if !seg.columns[ci].zonemap().page(p).overlaps(lo, hi) {
                ExecStats::bump(&cx.stats.zonemap_pages_skipped, 1);
                continue 'pages;
            }
        }
        if pure_columns {
            let all_present = accesses.iter().all(|a| match a {
                Access::Col { ci, .. } => seg.columns[*ci].zonemap().page(p).n_nonnull > 0,
                _ => true,
            });
            if !all_present {
                // A required column is all-NULL on this page: no row can
                // match, and the page is skipped without being pinned.
                continue;
            }
        }

        // Pin this page of every covered column (and the subject column of a
        // sparse segment) in lockstep.
        let chunks: Vec<Option<sordf_columnar::Chunk>> = accesses
            .iter()
            .map(|a| match a {
                Access::Col { ci, .. } => {
                    Some(seg.columns[*ci].pin_page_in(pool, p, range.clone()))
                }
                _ => None,
            })
            .collect();
        let chunk_start = range.start.max(p * VALS_PER_PAGE);
        let chunk_len = range.end.min((p + 1) * VALS_PER_PAGE) - chunk_start;
        rows_scanned += chunk_len as u64;
        ExecStats::bump(&cx.stats.pages_scanned, 1);
        let subj_chunk = match &seg.subjects {
            SubjectIds::Dense { .. } => None,
            SubjectIds::Sparse { subjects } => Some(subjects.pin_page_in(pool, p, range.clone())),
        };
        let subject_of = |i: usize| -> Oid {
            match (&seg.subjects, &subj_chunk) {
                (SubjectIds::Dense { base }, _) => Oid::iri(base + (chunk_start + i) as u64),
                (SubjectIds::Sparse { .. }, Some(c)) => Oid::from_raw(c.values()[i]),
                (SubjectIds::Sparse { .. }, None) => unreachable!(),
            }
        };

        if pure_columns {
            let col_slices: Vec<(&[u64], &ORestrict, Option<usize>)> = accesses
                .iter()
                .zip(&chunks)
                .zip(out_pos)
                .map(|((a, c), &pos)| match a {
                    // sordf-lint: allow(L3) — a chunk is fetched for every Col access (same match arms).
                    Access::Col { restrict, .. } => (c.as_ref().unwrap().values(), restrict, pos),
                    _ => unreachable!(),
                })
                .collect();
            'fast: for i in 0..chunk_len {
                for &(vals, restrict, _) in &col_slices {
                    let v = vals[i];
                    if v == sordf_columnar::column::NULL_SENTINEL || !restrict.accepts(v) {
                        continue 'fast;
                    }
                }
                out.cols[0].push(subject_of(i));
                for &(vals, _, pos) in &col_slices {
                    if let Some(pos) = pos {
                        out.cols[pos].push(Oid::from_raw(vals[i]));
                    }
                }
            }
            continue;
        }

        // General path: per-row value lists over the pinned slices (hoisted
        // out of the row loop once per page).
        let col_slices: Vec<Option<&[u64]>> = chunks
            .iter()
            .map(|c| c.as_ref().map(|c| c.values()))
            .collect();
        'rows: for i in 0..chunk_len {
            let s = subject_of(i);
            for (pi, access) in accesses.iter().enumerate() {
                let list = &mut value_lists[pi];
                list.clear();
                match access {
                    Access::Col {
                        exceptions,
                        deleted,
                        restrict,
                        ..
                    } => {
                        // sordf-lint: allow(L3) — a slice is built for every Col access (same match arms).
                        let v = col_slices[pi].unwrap()[i];
                        if v != sordf_columnar::column::NULL_SENTINEL
                            && restrict.accepts(v)
                            && !pair_deleted(deleted, s, v)
                        {
                            list.push(Oid::from_raw(v));
                        }
                        extend_from_sorted(list, exceptions, s);
                    }
                    Access::Multi { pairs, exceptions } => {
                        extend_from_sorted(list, pairs, s);
                        extend_from_sorted(list, exceptions, s);
                    }
                    Access::Irr { pairs } => {
                        extend_from_sorted(list, pairs, s);
                    }
                }
                if list.is_empty() {
                    continue 'rows; // pattern requires presence
                }
            }
            emit_combinations(cx, star, star_filters, s, &value_lists, &mut out);
        }
    }
    ExecStats::bump(&cx.stats.rows_scanned, rows_scanned);
    ExecStats::bump(&cx.stats.rows_emitted, out.len() as u64);
    out
}

/// Position of each property's output column (subject is column 0).
fn out_positions(star: &Star, out_vars: &[VarId]) -> Vec<Option<usize>> {
    star.props
        .iter()
        .map(|p| match p.o {
            VarOrOid::Var(v) => out_vars.iter().position(|&x| x == v),
            VarOrOid::Const(_) => None,
        })
        .collect()
}

/// Append the objects of all pairs with subject `s` (pairs sorted by s).
pub(crate) fn extend_from_sorted(list: &mut Vec<Oid>, pairs: &[(Oid, Oid)], s: Oid) {
    let start = pairs.partition_point(|&(ps, _)| ps < s);
    for &(ps, o) in &pairs[start..] {
        if ps != s {
            break;
        }
        list.push(o);
    }
}

/// Emit the cross product of per-property value lists for one subject,
/// filtered by the star-local filters.
pub(crate) fn emit_combinations(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    s: Oid,
    lists: &[Vec<Oid>],
    out: &mut Table,
) {
    // Common case: all singletons.
    let mut row: Vec<Oid> = Vec::with_capacity(out.vars.len());
    let mut idx = vec![0usize; lists.len()];
    loop {
        row.clear();
        row.push(s);
        for (pi, p) in star.props.iter().enumerate() {
            let v = lists[pi][idx[pi]];
            match p.o {
                VarOrOid::Var(var) => {
                    // Respect the canonical layout (vars may repeat... they
                    // don't — stars_of rewrites duplicates).
                    // sordf-lint: allow(L3) — stars_of rewrites duplicate vars, so the var appears in out.vars.
                    let pos = out.vars.iter().position(|&x| x == var).unwrap();
                    if pos == row.len() {
                        row.push(v);
                    } else if pos < row.len() {
                        row[pos] = v;
                    } else {
                        while row.len() < pos {
                            row.push(Oid::NULL);
                        }
                        row.push(v);
                    }
                }
                VarOrOid::Const(c) => {
                    if v != c {
                        // restrict already filtered; defensive.
                        row.clear();
                        break;
                    }
                }
            }
        }
        if !row.is_empty() {
            while row.len() < out.vars.len() {
                row.push(Oid::NULL);
            }
            let passes = filters.iter().all(|f| {
                let lookup = |v: VarId| {
                    out.vars
                        .iter()
                        .position(|&x| x == v)
                        .map(|i| row[i])
                        .unwrap_or(Oid::NULL)
                };
                f.eval(&lookup, cx.dict).as_bool()
            });
            if passes {
                out.push_row(&row);
            }
        }
        // Advance the mixed-radix counter.
        let mut k = lists.len();
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < lists[k].len() {
                break;
            }
            idx[k] = 0;
        }
    }
}

/// Star-local filters minus those fully enforced by pushed restricts:
/// `var CMP const` (non-`!=`, and not an ordered comparison on unsorted
/// string OIDs) on a variable bound by exactly one property — the scan layer
/// already applied these via [`ORestrict`] / subject ranges.
pub(crate) fn residual_filters<'f>(
    cx: &ExecContext,
    star: &Star,
    filters: &[&'f Expr],
) -> Vec<&'f Expr> {
    filters_bound_by_refs(filters, &star.bound_vars())
        .into_iter()
        .filter(|f| match f.as_var_cmp() {
            Some((v, op, c)) => {
                let enforced_cmp = !(c.is_null()
                    || (c.tag() == TypeTag::Str && !cx.strings_value_ordered() && op != CmpOp::Eq))
                    && op != CmpOp::Ne;
                let single_binding = v == star.subject_var
                    || star
                        .props
                        .iter()
                        .filter(|p| p.o == VarOrOid::Var(v))
                        .count()
                        == 1;
                !(enforced_cmp && single_binding)
            }
            None => true,
        })
        .collect()
}

/// Range filters on the subject variable itself (OID-range form).
pub(crate) fn subject_filter_range(star: &Star, filters: &[&Expr]) -> SRange {
    // Subject OIDs are IRIs; IRI "ordering" is only meaningful as raw OID
    // ranges (used by the SQL frontend for class-segment restriction), so
    // push them unconditionally.
    let r = restrict_for_var(filters, star.subject_var, true);
    if r.is_none() {
        None
    } else {
        Some(r.bounds())
    }
}

pub(crate) fn effective_subject_range(star: &Star, s_range: SRange) -> SRange {
    match star.subject_const {
        Some(c) => intersect_ranges(Some((c.raw(), c.raw())), s_range),
        None => s_range,
    }
}

pub(crate) fn intersect_ranges(a: SRange, b: SRange) -> SRange {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some((al, ah)), Some((bl, bh))) => Some((al.max(bl), ah.min(bh))),
    }
}
