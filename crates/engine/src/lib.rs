//! # sordf-engine
//!
//! The query engine: vectorized, materialized ("BAT-algebra style", like the
//! MonetDB kernel the paper targets) operators over both storage
//! generations, with the paper's two plan schemes:
//!
//! * **Default** — every triple pattern becomes a per-property scan; star
//!   patterns are assembled with merge self-joins on the subject, exactly
//!   the "bad query plans" of §I.
//! * **RDFscan / RDFjoin** — star patterns over CS storage are answered by
//!   aligned multi-column scans ([`star`]) "without wasting effort in
//!   self-joins"; RDFjoin is the candidate-driven variant used when a star
//!   is probed through a foreign-key link.
//!
//! Zone maps (when enabled) prune scan ranges and push range restrictions
//! across foreign-key links between clustered segments (§II-D's
//! shipdate/orderdate trick). [`cardest`] implements characteristic-set
//! cardinality estimation next to the classic independence assumption.

pub mod agg;
pub mod cancel;
pub mod cardest;
pub mod context;
pub mod expr;
pub mod join;
pub mod optimizer;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod query;
pub mod rowwise;
pub mod scan;
pub mod star;
pub mod table;

pub use cancel::{CancellationToken, QueryInterrupted, StopReason};
pub use context::{ExecConfig, ExecContext, ExecStats, PlanScheme, StorageRef};
pub use expr::{AggFunc, CmpOp, Expr};
pub use optimizer::{optimize, optimize_with_order};
pub use parallel::{execute_parallel, execute_physical_parallel, ParallelConfig};
pub use plan::{prepare, JoinStrategy, LogicalOp, LogicalPlan, PhysicalPlan, StarAccess};
pub use planner::{
    execute, execute_physical, execute_physical_seq, execute_with, explain, explain_analyze,
    StarEvalFn,
};
pub use query::{Query, SelectItem, TriplePattern, VarOrOid};
pub use table::{Table, VarId};
