//! Join operators: merge joins on sorted subject streams (the self-joins of
//! the Default scheme) and hash joins for linking stars.

use crate::context::{ExecContext, ExecStats};
use crate::table::{Table, VarId};
use sordf_model::{FxHashMap, Oid};

/// Merge-join a table (sorted by column `jc`) with an (s, o)-sorted pair
/// stream, appending the pair's object as a new column. Duplicate keys on
/// either side produce the full cross product, as SPARQL semantics require.
pub fn merge_join_pairs(
    cx: &ExecContext,
    left: &Table,
    jc: usize,
    pairs: &[(Oid, Oid)],
    new_var: VarId,
) -> Table {
    debug_assert_eq!(
        left.sorted_by,
        Some(jc),
        "left side must be sorted by the join column"
    );
    ExecStats::bump(&cx.stats.merge_joins, 1);
    let mut out_vars = left.vars.clone();
    out_vars.push(new_var);
    let mut out = Table::empty(out_vars);
    let key = &left.cols[jc];
    let (mut i, mut j) = (0usize, 0usize);
    while i < key.len() && j < pairs.len() {
        match key[i].cmp(&pairs[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let k = key[i];
                let i_end = (i..key.len()).find(|&x| key[x] != k).unwrap_or(key.len());
                let j_end = (j..pairs.len())
                    .find(|&x| pairs[x].0 != k)
                    .unwrap_or(pairs.len());
                // Emit the run's cross product column-at-a-time: each left
                // value is repeated run-length times in one resize, the pair
                // objects appended as one batched extend per left row. Runs
                // of one pair (unique keys, the common case) keep the cheap
                // per-value push.
                let run = &pairs[j..j_end];
                let last = out.cols.len() - 1;
                if run.len() == 1 {
                    let pv = run[0].1;
                    for li in i..i_end {
                        for (c, lc) in out.cols.iter_mut().zip(&left.cols) {
                            c.push(lc[li]);
                        }
                        out.cols[last].push(pv);
                    }
                } else {
                    for li in i..i_end {
                        for (c, lc) in out.cols.iter_mut().zip(&left.cols) {
                            let v = lc[li];
                            c.resize(c.len() + run.len(), v);
                        }
                        out.cols[last].extend(run.iter().map(|&(_, pv)| pv));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out.sorted_by = Some(jc);
    ExecStats::bump(&cx.stats.rows_emitted, out.len() as u64);
    out
}

/// Semi-join an (s, o)-sorted pair stream against a sorted candidate list.
pub fn semi_join_pairs(pairs: &[(Oid, Oid)], candidates: &[Oid]) -> Vec<(Oid, Oid)> {
    debug_assert!(candidates.windows(2).all(|w| w[0] <= w[1]));
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < pairs.len() && j < candidates.len() {
        match pairs[i].0.cmp(&candidates[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(pairs[i]);
                i += 1;
            }
        }
    }
    out
}

/// Hash-join two tables on `left[lc] == right[rc]`. Output binds all of
/// left's variables plus right's (minus right's join column, which would
/// duplicate the left one). Builds on the smaller side.
pub fn hash_join(cx: &ExecContext, left: &Table, lc: usize, right: &Table, rc: usize) -> Table {
    ExecStats::bump(&cx.stats.hash_joins, 1);
    // Normalize: build on the smaller input, probe the bigger.
    let (build, bc, probe, pc, build_is_left) = if left.len() <= right.len() {
        (left, lc, right, rc, true)
    } else {
        (right, rc, left, lc, false)
    };
    let mut index: FxHashMap<Oid, Vec<usize>> = FxHashMap::default();
    for (i, &k) in build.cols[bc].iter().enumerate() {
        index.entry(k).or_default().push(i);
    }

    // Output layout: left vars, then right vars except rc.
    let right_keep: Vec<usize> = (0..right.cols.len()).filter(|&i| i != rc).collect();
    let mut out_vars = left.vars.clone();
    out_vars.extend(right_keep.iter().map(|&i| right.vars[i]));
    let mut out = Table::empty(out_vars);

    for (pi, &k) in probe.cols[pc].iter().enumerate() {
        let Some(matches) = index.get(&k) else {
            continue;
        };
        for &bi in matches {
            let (li, ri) = if build_is_left { (bi, pi) } else { (pi, bi) };
            for (oc, lcid) in out.cols.iter_mut().take(left.cols.len()).zip(0..) {
                oc.push(left.cols[lcid][li]);
            }
            for (slot, &rcid) in right_keep.iter().enumerate() {
                out.cols[left.cols.len() + slot].push(right.cols[rcid][ri]);
            }
        }
    }
    ExecStats::bump(&cx.stats.rows_emitted, out.len() as u64);
    out
}

/// Hash-join two tables on equality of **every** variable in `keys` (each
/// must be bound by both sides). Output binds all of left's variables plus
/// right's minus the key columns (which would duplicate left's). Builds on
/// the smaller side. Joining on all shared variables — not just a primary
/// link — is what keeps stars that share several variables consistent.
pub fn hash_join_on(cx: &ExecContext, left: &Table, right: &Table, keys: &[VarId]) -> Table {
    debug_assert!(!keys.is_empty(), "use cross_join for keyless joins");
    if keys.len() == 1 {
        // sordf-lint: allow(L3) — callers pass keys bound by both sides.
        let lc = left.col_of(keys[0]).unwrap();
        // sordf-lint: allow(L3) — callers pass keys bound by both sides.
        let rc = right.col_of(keys[0]).unwrap();
        return hash_join(cx, left, lc, right, rc);
    }
    ExecStats::bump(&cx.stats.hash_joins, 1);
    let lks: Vec<usize> = keys
        .iter()
        // sordf-lint: allow(L3) — callers pass keys bound by both sides.
        .map(|&v| left.col_of(v).unwrap())
        .collect();
    let rks: Vec<usize> = keys
        .iter()
        // sordf-lint: allow(L3) — callers pass keys bound by both sides.
        .map(|&v| right.col_of(v).unwrap())
        .collect();
    // Normalize: build on the smaller input, probe the bigger.
    let (build, bks, probe, pks, build_is_left) = if left.len() <= right.len() {
        (left, &lks, right, &rks, true)
    } else {
        (right, &rks, left, &lks, false)
    };
    let mut index: FxHashMap<Vec<Oid>, Vec<usize>> = FxHashMap::default();
    for i in 0..build.len() {
        let key: Vec<Oid> = bks.iter().map(|&c| build.cols[c][i]).collect();
        index.entry(key).or_default().push(i);
    }

    // Output layout: left vars, then right vars except the key columns.
    let right_keep: Vec<usize> = (0..right.cols.len()).filter(|i| !rks.contains(i)).collect();
    let mut out_vars = left.vars.clone();
    out_vars.extend(right_keep.iter().map(|&i| right.vars[i]));
    let mut out = Table::empty(out_vars);

    let mut probe_key = Vec::with_capacity(pks.len());
    for pi in 0..probe.len() {
        probe_key.clear();
        probe_key.extend(pks.iter().map(|&c| probe.cols[c][pi]));
        let Some(matches) = index.get(&probe_key) else {
            continue;
        };
        for &bi in matches {
            let (li, ri) = if build_is_left { (bi, pi) } else { (pi, bi) };
            for (oc, lcid) in out.cols.iter_mut().take(left.cols.len()).zip(0..) {
                oc.push(left.cols[lcid][li]);
            }
            for (slot, &rcid) in right_keep.iter().enumerate() {
                out.cols[left.cols.len() + slot].push(right.cols[rcid][ri]);
            }
        }
    }
    ExecStats::bump(&cx.stats.rows_emitted, out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ExecConfig, ExecContext, StorageRef};
    use sordf_columnar::{BufferPool, DiskManager};
    use sordf_model::Dictionary;
    use std::sync::Arc;

    fn test_cx() -> (
        Arc<DiskManager>,
        &'static BufferPool,
        &'static Dictionary,
        sordf_storage::BaselineStore,
    ) {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let store = sordf_storage::BaselineStore::build(&dm, &[]);
        let pool = Box::leak(Box::new(BufferPool::new(Arc::clone(&dm), 16)));
        let dict = Box::leak(Box::new(Dictionary::new()));
        (dm, pool, dict, store)
    }

    fn table(vars: &[u16], rows: &[&[u64]]) -> Table {
        let mut t = Table::empty(vars.iter().map(|&v| VarId(v)).collect());
        for r in rows {
            let row: Vec<Oid> = r.iter().map(|&x| Oid::iri(x)).collect();
            t.push_row(&row);
        }
        t
    }

    #[test]
    fn merge_join_basic() {
        let (_dm, pool, dict, store) = test_cx();
        let cx = ExecContext::new(
            pool,
            dict,
            StorageRef::Baseline(&store),
            ExecConfig::default(),
        );
        let mut left = table(&[0], &[&[1], &[2], &[4]]);
        left.sorted_by = Some(0);
        let pairs = vec![
            (Oid::iri(1), Oid::iri(10)),
            (Oid::iri(3), Oid::iri(30)),
            (Oid::iri(4), Oid::iri(40)),
        ];
        let out = merge_join_pairs(&cx, &left, 0, &pairs, VarId(1));
        assert_eq!(out.len(), 2);
        assert_eq!(out.cols[0], vec![Oid::iri(1), Oid::iri(4)]);
        assert_eq!(out.cols[1], vec![Oid::iri(10), Oid::iri(40)]);
        assert_eq!(ExecStats::get(&cx.stats.merge_joins), 1);
    }

    #[test]
    fn merge_join_duplicates_cross_product() {
        let (_dm, pool, dict, store) = test_cx();
        let cx = ExecContext::new(
            pool,
            dict,
            StorageRef::Baseline(&store),
            ExecConfig::default(),
        );
        let mut left = table(&[0], &[&[1], &[1]]);
        left.sorted_by = Some(0);
        let pairs = vec![(Oid::iri(1), Oid::iri(10)), (Oid::iri(1), Oid::iri(11))];
        let out = merge_join_pairs(&cx, &left, 0, &pairs, VarId(1));
        assert_eq!(out.len(), 4, "2 left x 2 right");
    }

    #[test]
    fn semi_join() {
        let pairs = vec![
            (Oid::iri(1), Oid::iri(10)),
            (Oid::iri(2), Oid::iri(20)),
            (Oid::iri(5), Oid::iri(50)),
        ];
        let cands = vec![Oid::iri(2), Oid::iri(3), Oid::iri(5)];
        let out = semi_join_pairs(&pairs, &cands);
        assert_eq!(
            out,
            vec![(Oid::iri(2), Oid::iri(20)), (Oid::iri(5), Oid::iri(50))]
        );
    }

    #[test]
    fn hash_join_drops_duplicate_join_col() {
        let (_dm, pool, dict, store) = test_cx();
        let cx = ExecContext::new(
            pool,
            dict,
            StorageRef::Baseline(&store),
            ExecConfig::default(),
        );
        let left = table(&[0, 1], &[&[1, 100], &[2, 200], &[3, 300]]);
        let right = table(&[2, 3], &[&[100, 7], &[300, 9]]);
        let out = hash_join(&cx, &left, 1, &right, 0);
        assert_eq!(out.vars, vec![VarId(0), VarId(1), VarId(3)]);
        assert_eq!(out.len(), 2);
        let mut rows: Vec<Vec<Oid>> = (0..out.len()).map(|i| out.row(i)).collect();
        rows.sort();
        assert_eq!(rows[0], vec![Oid::iri(1), Oid::iri(100), Oid::iri(7)]);
        assert_eq!(rows[1], vec![Oid::iri(3), Oid::iri(300), Oid::iri(9)]);
    }

    #[test]
    fn hash_join_on_all_shared_vars() {
        let (_dm, pool, dict, store) = test_cx();
        let cx = ExecContext::new(
            pool,
            dict,
            StorageRef::Baseline(&store),
            ExecConfig::default(),
        );
        // Two tables sharing vars 0 and 2: a single-key join on var 0 would
        // accept rows that disagree on var 2.
        let left = table(&[0, 1, 2], &[&[1, 10, 5], &[2, 20, 6], &[3, 30, 7]]);
        let right = table(&[0, 2, 3], &[&[1, 5, 100], &[2, 9, 200], &[3, 7, 300]]);
        let out = hash_join_on(&cx, &left, &right, &[VarId(0), VarId(2)]);
        assert_eq!(out.vars, vec![VarId(0), VarId(1), VarId(2), VarId(3)]);
        let mut rows: Vec<Vec<Oid>> = (0..out.len()).map(|i| out.row(i)).collect();
        rows.sort();
        // (2, _, 6) vs (2, 9, _) disagrees on var 2 and must be dropped.
        assert_eq!(
            rows,
            vec![
                vec![Oid::iri(1), Oid::iri(10), Oid::iri(5), Oid::iri(100)],
                vec![Oid::iri(3), Oid::iri(30), Oid::iri(7), Oid::iri(300)],
            ]
        );
    }

    #[test]
    fn hash_join_builds_on_smaller_side_either_way() {
        let (_dm, pool, dict, store) = test_cx();
        let cx = ExecContext::new(
            pool,
            dict,
            StorageRef::Baseline(&store),
            ExecConfig::default(),
        );
        let big = table(&[0], &[&[1], &[2], &[3], &[4], &[5]]);
        let small = table(&[1], &[&[2], &[4]]);
        let a = hash_join(&cx, &big, 0, &small, 0);
        let b = hash_join(&cx, &small, 0, &big, 0);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }
}
