//! Materialized intermediate results (column-major, like MonetDB BATs).

use sordf_model::Oid;

/// A query variable, an index into the query's variable registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u16);

/// A materialized binding table: one column of OIDs per bound variable.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Which variable each column binds.
    pub vars: Vec<VarId>,
    /// Column-major storage; all columns have equal length.
    pub cols: Vec<Vec<Oid>>,
    /// Index of a column the rows are sorted by, if known (enables merge
    /// joins without re-sorting).
    pub sorted_by: Option<usize>,
}

impl Table {
    /// An empty table binding the given variables.
    pub fn empty(vars: Vec<VarId>) -> Table {
        let cols = vars.iter().map(|_| Vec::new()).collect();
        Table {
            vars,
            cols,
            sorted_by: None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cols.first().map(|c| c.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column index binding `v`, if present.
    pub fn col_of(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Append one row (must match the column count).
    pub fn push_row(&mut self, row: &[Oid]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (c, &v) in self.cols.iter_mut().zip(row) {
            c.push(v);
        }
    }

    /// One row as a Vec (for tests and small outputs).
    pub fn row(&self, i: usize) -> Vec<Oid> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Sort rows by the given column (stable), updating `sorted_by`.
    pub fn sort_by_col(&mut self, col: usize) {
        if self.sorted_by == Some(col) || self.len() <= 1 {
            self.sorted_by = Some(col);
            return;
        }
        let mut perm: Vec<usize> = (0..self.len()).collect();
        let key = &self.cols[col];
        perm.sort_by_key(|&i| key[i]);
        self.apply_perm(&perm);
        self.sorted_by = Some(col);
    }

    /// Reorder all columns by `perm` (row `i` of the result is old row
    /// `perm[i]`).
    pub fn apply_perm(&mut self, perm: &[usize]) {
        for c in self.cols.iter_mut() {
            let reordered: Vec<Oid> = perm.iter().map(|&i| c[i]).collect();
            *c = reordered;
        }
    }

    /// Keep only rows where `mask[i]` is true.
    pub fn retain_rows(&mut self, mask: &[bool]) {
        debug_assert_eq!(mask.len(), self.len());
        for c in self.cols.iter_mut() {
            let mut keep = mask.iter();
            // sordf-lint: allow(L3) — debug-asserted above: mask has one entry per row.
            c.retain(|_| *keep.next().unwrap());
        }
    }

    /// Project to a subset of variables (must exist).
    pub fn project(&self, vars: &[VarId]) -> Table {
        let idx: Vec<usize> = vars
            .iter()
            // sordf-lint: allow(L3) — the documented contract: projection vars must exist in the table.
            .map(|&v| self.col_of(v).expect("projection var missing"))
            .collect();
        Table {
            vars: vars.to_vec(),
            cols: idx.iter().map(|&i| self.cols[i].clone()).collect(),
            sorted_by: None,
        }
    }

    /// Sorted, deduplicated values of one column.
    pub fn distinct_col(&self, col: usize) -> Vec<Oid> {
        let mut v = self.cols[col].clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Remove duplicate rows (sorts internally).
    pub fn dedup_rows(&mut self) {
        let n = self.len();
        if n <= 1 {
            return;
        }
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_by(|&a, &b| {
            for c in &self.cols {
                match c[a].cmp(&c[b]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut keep_rows: Vec<usize> = Vec::with_capacity(n);
        for (k, &i) in perm.iter().enumerate() {
            let dup = k > 0 && {
                let j = perm[k - 1];
                self.cols.iter().all(|c| c[i] == c[j])
            };
            if !dup {
                keep_rows.push(i);
            }
        }
        self.apply_perm(&keep_rows);
        self.sorted_by = None;
    }

    /// Concatenate another table with the same variable layout.
    pub fn append(&mut self, other: Table) {
        assert_eq!(self.vars, other.vars, "appending incompatible tables");
        for (c, oc) in self.cols.iter_mut().zip(other.cols) {
            c.extend(oc);
        }
        self.sorted_by = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3() -> Table {
        let mut t = Table::empty(vec![VarId(0), VarId(1)]);
        t.push_row(&[Oid::iri(3), Oid::iri(30)]);
        t.push_row(&[Oid::iri(1), Oid::iri(10)]);
        t.push_row(&[Oid::iri(2), Oid::iri(20)]);
        t
    }

    #[test]
    fn sort_and_project() {
        let mut t = t3();
        t.sort_by_col(0);
        assert_eq!(t.cols[0], vec![Oid::iri(1), Oid::iri(2), Oid::iri(3)]);
        assert_eq!(t.cols[1], vec![Oid::iri(10), Oid::iri(20), Oid::iri(30)]);
        let p = t.project(&[VarId(1)]);
        assert_eq!(p.cols[0], vec![Oid::iri(10), Oid::iri(20), Oid::iri(30)]);
    }

    #[test]
    fn retain_and_distinct() {
        let mut t = t3();
        t.retain_rows(&[true, false, true]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.distinct_col(0), vec![Oid::iri(2), Oid::iri(3)]);
    }

    #[test]
    fn dedup_rows_removes_duplicates() {
        let mut t = Table::empty(vec![VarId(0)]);
        for x in [3u64, 1, 3, 2, 1] {
            t.push_row(&[Oid::iri(x)]);
        }
        t.dedup_rows();
        assert_eq!(t.len(), 3);
        let mut vals = t.cols[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, vec![Oid::iri(1), Oid::iri(2), Oid::iri(3)]);
    }

    #[test]
    fn append_tables() {
        let mut a = t3();
        let b = t3();
        a.append(b);
        assert_eq!(a.len(), 6);
    }
}
