//! The logical query representation shared by the SPARQL and SQL frontends.

use crate::expr::{AggFunc, Expr};
use crate::table::VarId;
use sordf_model::Oid;

/// A subject or object position: variable or constant term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarOrOid {
    Var(VarId),
    Const(Oid),
}

impl VarOrOid {
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            VarOrOid::Var(v) => Some(*v),
            VarOrOid::Const(_) => None,
        }
    }
}

/// One triple pattern. The predicate must be a constant — variable
/// predicates are rare in analytical SPARQL and are out of scope for this
/// reproduction (the paper's plans all have bound predicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriplePattern {
    pub s: VarOrOid,
    pub p: Oid,
    pub o: VarOrOid,
}

/// One SELECT output.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// A plain variable.
    Var(VarId),
    /// A scalar expression with an output name.
    Expr { expr: Expr, name: String },
    /// An aggregate over the group.
    Agg {
        func: AggFunc,
        expr: Expr,
        name: String,
    },
}

impl SelectItem {
    /// The output column name.
    pub fn name<'a>(&'a self, vars: &'a [String]) -> &'a str {
        match self {
            SelectItem::Var(v) => &vars[v.0 as usize],
            SelectItem::Expr { name, .. } | SelectItem::Agg { name, .. } => name,
        }
    }
}

/// A sort key of the final result.
#[derive(Debug, Clone)]
pub struct OrderKey {
    /// Index into `Query::select`.
    pub output: usize,
    pub ascending: bool,
}

/// The logical query: a basic graph pattern with filters, grouping,
/// aggregation and result modifiers. Produced by the SPARQL and SQL parsers,
/// consumed by [`crate::planner::execute`].
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Variable registry; `VarId(i)` names `vars[i]`.
    pub vars: Vec<String>,
    /// The BGP.
    pub patterns: Vec<TriplePattern>,
    /// Conjunctive FILTER expressions.
    pub filters: Vec<Expr>,
    /// SELECT list (empty = all variables in first-use order).
    pub select: Vec<SelectItem>,
    /// GROUP BY variables (empty with aggregates = one global group).
    pub group_by: Vec<VarId>,
    /// ORDER BY over output columns.
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    pub distinct: bool,
}

impl Query {
    /// Intern a variable name, returning its id.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(i) = self.vars.iter().position(|v| v == name) {
            return VarId(i as u16);
        }
        self.vars.push(name.to_string());
        VarId((self.vars.len() - 1) as u16)
    }

    /// Does the SELECT list contain aggregates?
    pub fn has_aggregates(&self) -> bool {
        self.select
            .iter()
            .any(|s| matches!(s, SelectItem::Agg { .. }))
    }

    /// All variables appearing in patterns, in first-use order.
    pub fn pattern_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut push = |v: VarOrOid| {
            if let VarOrOid::Var(v) = v {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        };
        for p in &self.patterns {
            push(p.s);
            push(p.o);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_interning() {
        let mut q = Query::default();
        let a = q.var("a");
        let b = q.var("b");
        assert_eq!(q.var("a"), a);
        assert_ne!(a, b);
        assert_eq!(q.vars, vec!["a", "b"]);
    }

    #[test]
    fn pattern_vars_in_first_use_order() {
        let mut q = Query::default();
        let s = q.var("s");
        let x = q.var("x");
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(s),
            p: Oid::iri(1),
            o: VarOrOid::Var(x),
        });
        q.patterns.push(TriplePattern {
            s: VarOrOid::Var(x),
            p: Oid::iri(2),
            o: VarOrOid::Const(Oid::iri(9)),
        });
        assert_eq!(q.pattern_vars(), vec![s, x]);
    }
}
