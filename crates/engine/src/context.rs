//! Execution context: storage handles, configuration, runtime counters.

use sordf_columnar::BufferPool;
use sordf_model::Dictionary;
use sordf_schema::EmergentSchema;
use sordf_storage::{BaselineStore, ClusteredStore};
use std::cell::Cell;

/// Which plan scheme the planner uses for star patterns — the "Query Plan"
/// axis of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanScheme {
    /// Per-property index scans + merge self-joins (triple-store classic).
    Default,
    /// RDFscan for base stars, RDFjoin for candidate-driven stars.
    RdfScanJoin,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    pub scheme: PlanScheme,
    /// Use zone maps: page skipping within scans and min/max restriction
    /// pushdown across star joins (the "ZoneMaps" axis of Table I).
    pub zonemaps: bool,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig { scheme: PlanScheme::RdfScanJoin, zonemaps: true }
    }
}

/// The storage generation a query runs against.
pub enum StorageRef<'a> {
    /// Exhaustive permutation indexes over all triples (ParseOrder).
    Baseline(&'a BaselineStore),
    /// CS segments + irregular remainder (ParseOrder-sparse or Clustered).
    Clustered { store: &'a ClusteredStore, schema: &'a EmergentSchema },
}

impl<'a> StorageRef<'a> {
    pub fn is_clustered(&self) -> bool {
        matches!(self, StorageRef::Clustered { .. })
    }

    pub fn schema(&self) -> Option<&'a EmergentSchema> {
        match self {
            StorageRef::Baseline(_) => None,
            StorageRef::Clustered { schema, .. } => Some(schema),
        }
    }
}

/// Runtime operator counters — the numbers behind the paper's Fig. 4
/// (join-effort reduction) and the locality reporting of the harnesses.
#[derive(Debug, Default)]
pub struct ExecStats {
    pub merge_joins: Cell<u64>,
    pub hash_joins: Cell<u64>,
    pub rdf_scans: Cell<u64>,
    pub rdf_joins: Cell<u64>,
    pub property_scans: Cell<u64>,
    pub rows_scanned: Cell<u64>,
    pub rows_emitted: Cell<u64>,
    pub zonemap_pages_skipped: Cell<u64>,
}

impl ExecStats {
    pub fn bump(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get() + by);
    }

    /// Total join operators executed.
    pub fn total_joins(&self) -> u64 {
        self.merge_joins.get() + self.hash_joins.get() + self.rdf_joins.get()
    }

    pub fn reset(&self) {
        self.merge_joins.set(0);
        self.hash_joins.set(0);
        self.rdf_scans.set(0);
        self.rdf_joins.set(0);
        self.property_scans.set(0);
        self.rows_scanned.set(0);
        self.rows_emitted.set(0);
        self.zonemap_pages_skipped.set(0);
    }

    /// A plain-old-data copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            merge_joins: self.merge_joins.get(),
            hash_joins: self.hash_joins.get(),
            rdf_scans: self.rdf_scans.get(),
            rdf_joins: self.rdf_joins.get(),
            property_scans: self.property_scans.get(),
            rows_scanned: self.rows_scanned.get(),
            rows_emitted: self.rows_emitted.get(),
            zonemap_pages_skipped: self.zonemap_pages_skipped.get(),
        }
    }
}

/// Copyable snapshot of [`ExecStats`], reported by the facade and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub merge_joins: u64,
    pub hash_joins: u64,
    pub rdf_scans: u64,
    pub rdf_joins: u64,
    pub property_scans: u64,
    pub rows_scanned: u64,
    pub rows_emitted: u64,
    pub zonemap_pages_skipped: u64,
}

impl StatsSnapshot {
    /// Total join operators executed.
    pub fn total_joins(&self) -> u64 {
        self.merge_joins + self.hash_joins + self.rdf_joins
    }
}

/// Everything an operator needs at runtime.
pub struct ExecContext<'a> {
    pub pool: &'a BufferPool,
    pub dict: &'a Dictionary,
    pub storage: StorageRef<'a>,
    pub config: ExecConfig,
    pub stats: ExecStats,
}

impl<'a> ExecContext<'a> {
    pub fn new(
        pool: &'a BufferPool,
        dict: &'a Dictionary,
        storage: StorageRef<'a>,
        config: ExecConfig,
    ) -> ExecContext<'a> {
        ExecContext { pool, dict, storage, config, stats: ExecStats::default() }
    }

    /// Are string OIDs ordered by value? True after clustering (the string
    /// pool is sorted), false on parse-order storage — ordered string
    /// comparisons must decode in that case.
    pub fn strings_value_ordered(&self) -> bool {
        // Sparse clustered stores keep parse-order string OIDs too; only the
        // reorganized (dense) store sorts the pool. We detect via segments.
        match &self.storage {
            StorageRef::Baseline(_) => false,
            StorageRef::Clustered { store, .. } => store
                .segments
                .iter()
                .all(|s| matches!(s.subjects, sordf_storage::clustered::SubjectIds::Dense { .. })),
        }
    }
}
